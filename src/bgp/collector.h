// fenrir::bgp — a RouteViews/RIS-style route collector.
//
// A collector holds passive BGP sessions with a set of peer ASes; each
// peer advertises its current best route to the monitored prefix. This
// module turns the simulator's routing state into exactly the artifact a
// real collector archives: a stream of wire-format UPDATE messages per
// peer — announcements when a peer's path changes, withdrawals when it
// loses the route. Consecutive poll() calls diff against the previous
// routing state, so a site drain produces the burst of updates a real
// event produces at RouteViews.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/graph.h"
#include "bgp/routing.h"
#include "bgp/update_codec.h"

namespace fenrir::bgp {

struct CollectedUpdate {
  AsIndex peer = kNoAs;
  std::vector<std::uint8_t> wire;  // one encoded UPDATE
};

class RouteCollector {
 public:
  /// @p graph must outlive the collector. @p peers are the ASes holding
  /// sessions with the collector; @p prefix is the monitored prefix.
  RouteCollector(const AsGraph* graph, std::vector<AsIndex> peers,
                 netbase::Prefix prefix);

  const std::vector<AsIndex>& peers() const noexcept { return peers_; }

  /// Diffs each peer's best path against the previous poll and returns
  /// the UPDATE stream (empty when routing did not change for any peer).
  /// The first poll announces every reachable peer's path.
  std::vector<CollectedUpdate> poll(const RoutingTable& routing);

  /// The collector's current RIB view: ASN path per peer (empty optional
  /// = peer currently has no route).
  const std::unordered_map<AsIndex, std::vector<std::uint32_t>>& rib()
      const noexcept {
    return rib_;
  }

 private:
  std::vector<std::uint32_t> asn_path_of(const RoutingTable& routing,
                                         AsIndex peer) const;

  const AsGraph* graph_;
  std::vector<AsIndex> peers_;
  netbase::Prefix prefix_;
  std::unordered_map<AsIndex, std::vector<std::uint32_t>> rib_;
};

}  // namespace fenrir::bgp
