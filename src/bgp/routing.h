// fenrir::bgp — policy route computation (Gao–Rexford model).
//
// Computes, for one destination prefix originated at one or more ASes
// (unicast: one origin; anycast: one origin per site), the route every AS
// in the graph selects. Propagation follows the standard valley-free
// export rules:
//
//   * routes learned from a CUSTOMER are exported to everyone;
//   * routes learned from a PEER or PROVIDER are exported only to
//     customers.
//
// Selection order matches BGP decision logic restricted to the attributes
// the model carries: highest local preference (customer 300 / peer 200 /
// provider 100, plus the per-link adjustment clamped within ±99 so class
// order is absolute), then shortest AS path, then lowest neighbor ASN.
//
// The implementation is a three-stage monotone worklist fixpoint
// (customer routes climb provider edges; peer routes cross one peer edge;
// then routes descend customer edges). For Gao–Rexford-compliant policies
// this converges to the unique stable routing, and each stage is
// near-linear in the edge count.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "bgp/graph.h"

namespace fenrir::bgp {

/// Identifies an anycast origin: the AS announcing the prefix and the
/// service site label index it stands for (site semantics belong to the
/// caller; unicast destinations use site = 0).
struct Origin {
  AsIndex as = kNoAs;
  std::uint32_t site = 0;
  /// AS-path prepending applied at this origin (a classic TE knob): the
  /// origin's advertisement starts with path length 1 + prepend.
  std::uint8_t prepend = 0;
  /// Cone-scoped announcement (NO_EXPORT-style community): the route is
  /// announced to the origin's direct upstream(s) and propagates only
  /// DOWN their customer cones — never to peers or further providers.
  /// This models the paper's "local-only sites [that] serve only a single
  /// AS and its customers" and the strongest real-world anycast TE knob
  /// (scoping a site's announcement).
  bool cone_only = false;
};

/// Relationship class of a selected route (origin counts as customer —
/// self-originated routes export everywhere, like customer routes).
enum class RouteClass : std::uint8_t { kNone, kCustomerOrOrigin, kPeer,
                                       kProvider };

/// One AS's route toward the destination.
struct Route {
  bool reachable = false;
  std::uint32_t site = 0;        // origin site (anycast catchment)
  AsIndex origin_as = kNoAs;     // originating AS
  AsIndex from = kNoAs;          // neighbor the route was learned from
  RouteClass klass = RouteClass::kNone;
  std::int32_t pref = std::numeric_limits<std::int32_t>::min();
  std::uint16_t path_len = 0;    // AS-path length incl. origin
  /// True when `from`'s exported route was its customer-stage route
  /// (phases 1–2); false when it was the final selection (phase 3).
  /// Needed to reconstruct AS paths exactly.
  bool via_customer_stage = false;
  /// Propagated from a cone-scoped origin; limits further export.
  bool cone_only = false;
};

/// The result of route computation: one Route per AS.
class RoutingTable {
 public:
  explicit RoutingTable(std::vector<Route> routes,
                        std::vector<Route> customer_stage)
      : routes_(std::move(routes)), customer_stage_(std::move(customer_stage)) {}

  const Route& at(AsIndex as) const { return routes_.at(as); }
  std::size_t size() const noexcept { return routes_.size(); }

  /// Anycast catchment of @p as: the origin site of its selected route.
  /// Unreachable ASes report no site (caller maps to "unknown"/"err").
  std::optional<std::uint32_t> catchment(AsIndex as) const {
    const Route& r = routes_.at(as);
    if (!r.reachable) return std::nullopt;
    return r.site;
  }

  /// Reconstructs the AS path from @p as to the origin (inclusive on both
  /// ends, origin last). Empty if unreachable. Throws std::logic_error if
  /// internal state is inconsistent (should not happen at fixpoint).
  std::vector<AsIndex> as_path(AsIndex as) const;

 private:
  std::vector<Route> routes_;          // final selection
  std::vector<Route> customer_stage_;  // best customer/origin-class route
};

/// Computes routing for @p origins over @p graph. Origins on the same AS
/// are rejected (one announcement per AS); an empty origin list yields an
/// all-unreachable table.
RoutingTable compute_routes(const AsGraph& graph,
                            const std::vector<Origin>& origins);

}  // namespace fenrir::bgp
