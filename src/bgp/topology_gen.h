// fenrir::bgp — synthetic Internet topology generation.
//
// Builds a three-tier AS hierarchy of the kind policy-routing studies use:
// a full mesh of tier-1 transit providers, regional tier-2 networks homed
// to geographically-near tier-1s (with some tier-2 peering), and stub/edge
// ASes homed to near tier-2s, a fraction multi-homed. Stubs originate /24
// blocks (the measurement unit of every dataset in the paper). All
// randomness derives from the seed, so a topology is a pure function of
// its parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/graph.h"
#include "rng/rng.h"

namespace fenrir::bgp {

struct TopologyParams {
  std::size_t tier1_count = 8;
  std::size_t tier2_count = 64;
  std::size_t stub_count = 1200;

  /// Probability a tier-2 has a second tier-1 provider.
  double tier2_multihome_prob = 0.5;
  /// Probability of a peer link between two geographically-close tier-2s.
  double tier2_peer_prob = 0.25;
  /// Probability a stub has a second (tier-2) provider.
  double stub_multihome_prob = 0.3;
  /// Candidate pool size when picking geographically-near providers.
  std::size_t provider_candidates = 5;

  /// Mean /24 blocks originated per stub (Zipf-skewed: a few big stubs).
  double blocks_per_stub_mean = 6.0;
  std::size_t max_blocks_per_stub = 64;

  /// Base of the synthetic address space blocks are carved from.
  std::uint32_t first_block24 = (1u << 16);  // 1.0.0.0/24 onward

  std::uint64_t seed = 1;
};

struct Topology {
  AsGraph graph;
  std::vector<AsIndex> tier1;
  std::vector<AsIndex> tier2;
  std::vector<AsIndex> stubs;
  /// All /24 block indices announced by stubs, in address order.
  std::vector<std::uint32_t> blocks;
};

/// Generates a topology from @p params. The result always satisfies:
/// every AS reaches every tier-1 through provider chains (no partitions),
/// tier-1s form a full peer mesh, and each block maps to exactly one stub.
Topology generate_topology(const TopologyParams& params);

}  // namespace fenrir::bgp
