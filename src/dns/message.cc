#include "dns/message.h"

namespace fenrir::dns {

namespace {

std::uint16_t flags_of(const Header& h) {
  std::uint16_t f = 0;
  if (h.qr) f |= 0x8000;
  f |= static_cast<std::uint16_t>((h.opcode & 0xf) << 11);
  if (h.aa) f |= 0x0400;
  if (h.tc) f |= 0x0200;
  if (h.rd) f |= 0x0100;
  if (h.ra) f |= 0x0080;
  f |= static_cast<std::uint16_t>(h.rcode) & 0xf;
  return f;
}

Header header_from(std::uint16_t id, std::uint16_t flags) {
  Header h;
  h.id = id;
  h.qr = flags & 0x8000;
  h.opcode = static_cast<std::uint8_t>((flags >> 11) & 0xf);
  h.aa = flags & 0x0400;
  h.tc = flags & 0x0200;
  h.rd = flags & 0x0100;
  h.ra = flags & 0x0080;
  h.rcode = static_cast<Rcode>(flags & 0xf);
  return h;
}

void encode_rr(Writer& w, NameCompressor& names,
               const ResourceRecord& rr) {
  names.encode(w, rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(rr.klass);
  w.u32(rr.ttl);
  if (rr.rdata.size() > 0xffff) throw DnsError("rdata too long");
  w.u16(static_cast<std::uint16_t>(rr.rdata.size()));
  w.raw(rr.rdata);
}

ResourceRecord decode_rr(Reader& r) {
  ResourceRecord rr;
  rr.name = decode_name(r);
  rr.type = static_cast<RecordType>(r.u16());
  rr.klass = r.u16();
  rr.ttl = r.u32();
  const std::uint16_t rdlength = r.u16();
  const auto data = r.raw(rdlength);
  rr.rdata.assign(data.begin(), data.end());
  return rr;
}

}  // namespace

std::optional<std::string> ResourceRecord::txt() const {
  if (type != RecordType::kTxt) return std::nullopt;
  std::string out;
  std::size_t i = 0;
  while (i < rdata.size()) {
    const std::size_t len = rdata[i++];
    if (i + len > rdata.size()) return std::nullopt;  // malformed
    out.append(reinterpret_cast<const char*>(&rdata[i]), len);
    i += len;
  }
  return out;
}

std::optional<std::uint32_t> ResourceRecord::a_addr() const {
  if (type != RecordType::kA || rdata.size() != 4) return std::nullopt;
  return (std::uint32_t{rdata[0]} << 24) | (std::uint32_t{rdata[1]} << 16) |
         (std::uint32_t{rdata[2]} << 8) | std::uint32_t{rdata[3]};
}

std::vector<std::uint8_t> make_txt_rdata(std::string_view text) {
  std::vector<std::uint8_t> out;
  do {
    const std::size_t chunk = std::min<std::size_t>(text.size(), 255);
    out.push_back(static_cast<std::uint8_t>(chunk));
    out.insert(out.end(), text.begin(), text.begin() + chunk);
    text.remove_prefix(chunk);
  } while (!text.empty());
  return out;
}

std::vector<std::uint8_t> make_a_rdata(std::uint32_t addr) {
  return {static_cast<std::uint8_t>(addr >> 24),
          static_cast<std::uint8_t>(addr >> 16),
          static_cast<std::uint8_t>(addr >> 8),
          static_cast<std::uint8_t>(addr)};
}

std::vector<std::uint8_t> Message::encode() const {
  Writer w;
  NameCompressor names;  // per-message suffix table (RFC 1035 §4.1.4)
  w.u16(header.id);
  w.u16(flags_of(header));
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authority.size()));
  w.u16(static_cast<std::uint16_t>(additional.size()));
  for (const auto& q : questions) {
    names.encode(w, q.name);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(static_cast<std::uint16_t>(q.klass));
  }
  for (const auto& rr : answers) encode_rr(w, names, rr);
  for (const auto& rr : authority) encode_rr(w, names, rr);
  for (const auto& rr : additional) encode_rr(w, names, rr);
  return std::move(w).take();
}

Message Message::decode(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  Message m;
  const std::uint16_t id = r.u16();
  const std::uint16_t flags = r.u16();
  m.header = header_from(id, flags);
  m.header.qdcount = r.u16();
  m.header.ancount = r.u16();
  m.header.nscount = r.u16();
  m.header.arcount = r.u16();
  for (std::uint16_t i = 0; i < m.header.qdcount; ++i) {
    Question q;
    q.name = decode_name(r);
    q.type = static_cast<RecordType>(r.u16());
    q.klass = static_cast<RecordClass>(r.u16());
    m.questions.push_back(std::move(q));
  }
  for (std::uint16_t i = 0; i < m.header.ancount; ++i) {
    m.answers.push_back(decode_rr(r));
  }
  for (std::uint16_t i = 0; i < m.header.nscount; ++i) {
    m.authority.push_back(decode_rr(r));
  }
  for (std::uint16_t i = 0; i < m.header.arcount; ++i) {
    m.additional.push_back(decode_rr(r));
  }
  return m;
}

Message make_query(std::uint16_t id, Question q) {
  Message m;
  m.header.id = id;
  m.header.qr = false;
  m.header.rd = true;
  m.questions.push_back(std::move(q));
  return m;
}

}  // namespace fenrir::dns
