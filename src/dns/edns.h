// fenrir::dns — EDNS0 (RFC 6891) with the two options Fenrir's probes use:
//
//  * NSID (RFC 5001, option code 3): per-server identity string, the
//    mechanism RIPE Atlas uses to learn which anycast instance answered.
//  * Client Subnet (RFC 7871, option code 8): lets one vantage point ask
//    "what would a client in prefix P get?" — the Calder et al. technique
//    behind the Google/Wikipedia front-end mapping.
//
// The OPT pseudo-record overloads the RR class field as the UDP payload
// size and the TTL as extended-rcode/version/flags; this module hides that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "netbase/ipv4.h"

namespace fenrir::dns {

inline constexpr std::uint16_t kOptionNsid = 3;
inline constexpr std::uint16_t kOptionClientSubnet = 8;

struct EdnsOption {
  std::uint16_t code = 0;
  std::vector<std::uint8_t> data;
};

/// Decoded form of the OPT pseudo-record.
struct EdnsRecord {
  std::uint16_t udp_payload_size = 1232;
  std::uint8_t extended_rcode = 0;  // high 8 bits of the 12-bit rcode
  std::uint8_t version = 0;
  bool dnssec_ok = false;
  std::vector<EdnsOption> options;

  /// Renders as an OPT ResourceRecord for the additional section.
  ResourceRecord to_rr() const;

  /// Parses an OPT RR. Throws DnsError if it is not OPT or is malformed.
  static EdnsRecord from_rr(const ResourceRecord& rr);

  /// First option with the given code, if present.
  const EdnsOption* find(std::uint16_t code) const;
};

/// EDNS Client Subnet option payload (IPv4 family only, which is all the
/// paper's measurements use).
struct ClientSubnet {
  netbase::Prefix prefix;       // the client prefix being asked about
  std::uint8_t scope_len = 0;   // response scope (0 in queries)

  std::vector<std::uint8_t> encode() const;
  static ClientSubnet decode(std::span<const std::uint8_t> data);
};

/// Attaches an EDNS record (building the OPT RR) to a message's
/// additional section, replacing any existing OPT.
void set_edns(Message& m, const EdnsRecord& edns);

/// Extracts the EDNS record from a message, if present and well-formed.
std::optional<EdnsRecord> get_edns(const Message& m);

/// Convenience builders used by the probes.
EdnsRecord make_nsid_request();
EdnsRecord make_client_subnet_request(netbase::Prefix prefix);

}  // namespace fenrir::dns
