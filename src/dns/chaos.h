// fenrir::dns — CHAOS-class identity queries (hostname.bind / id.server).
//
// RIPE Atlas determines which anycast instance served it by sending a
// CHAOS TXT query for "hostname.bind" (BIND convention) or the
// standardized NSID option (RFC 5001). Both are built/parsed here; the
// Atlas probe uses them against the simulated DNS servers.
#pragma once

#include <optional>
#include <string>

#include "dns/edns.h"
#include "dns/message.h"

namespace fenrir::dns {

/// Builds the classic `dig CH TXT hostname.bind` query, with an NSID
/// request attached so servers that prefer NSID can answer that way too.
Message make_hostname_bind_query(std::uint16_t id);

/// Builds a server-side response to a hostname.bind query carrying
/// @p server_identity both as the TXT answer and as the NSID option.
Message make_hostname_bind_response(const Message& query,
                                    const std::string& server_identity);

/// Extracts the server identity from a response: prefers the TXT answer,
/// falls back to NSID. Returns nullopt if neither is present/parseable or
/// the response signals an error rcode.
std::optional<std::string> extract_server_identity(const Message& response);

}  // namespace fenrir::dns
