// fenrir::dns — bounds-checked wire-format buffer primitives.
//
// DNS messages are built and parsed through these little codecs. Writer
// appends big-endian fields to a growable byte vector; Reader consumes a
// fixed byte span and throws DnsError on truncation, which parse code
// translates into "malformed message" (the paper's data-cleaning stage
// discards such responses).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fenrir::dns {

class DnsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Big-endian append-only byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  void raw(std::string_view data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Patches a previously written u16 at @p offset (used for RDLENGTH).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    bytes_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    bytes_.at(offset + 1) = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const noexcept { return bytes_.size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Big-endian bounds-checked reader over a full message. Keeps the whole
/// message visible (needed to chase name-compression pointers) plus a
/// cursor.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::span<const std::uint8_t> raw(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t pos() const noexcept { return pos_; }
  void seek(std::size_t pos) {
    if (pos > data_.size()) throw DnsError("seek past end");
    pos_ = pos;
  }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::span<const std::uint8_t> whole() const noexcept { return data_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw DnsError("truncated message");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace fenrir::dns
