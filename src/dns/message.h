// fenrir::dns — DNS messages (RFC 1035) with the records Fenrir's
// measurement probes need: A, TXT (CHAOS hostname.bind), and OPT (EDNS0).
//
// This is a full encode/decode round-trip codec, not a pretty-printer:
// AtlasProbe and EdnsCsProbe exchange real wire bytes with the simulated
// servers, so malformed-message handling is exercised exactly where the
// paper's cleaning stage needs it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/wire.h"

namespace fenrir::dns {

enum class RecordType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kTxt = 16,
  kAaaa = 28,
  kOpt = 41,
};

enum class RecordClass : std::uint16_t {
  kIn = 1,
  kChaos = 3,
};

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response?
  std::uint8_t opcode = 0;
  bool aa = false;
  bool tc = false;
  bool rd = true;
  bool ra = false;
  Rcode rcode = Rcode::kNoError;

  std::uint16_t qdcount = 0;
  std::uint16_t ancount = 0;
  std::uint16_t nscount = 0;
  std::uint16_t arcount = 0;
};

struct Question {
  std::string name;
  RecordType type = RecordType::kA;
  RecordClass klass = RecordClass::kIn;
};

/// A resource record with raw RDATA. Typed accessors interpret the bytes.
struct ResourceRecord {
  std::string name;
  RecordType type = RecordType::kA;
  std::uint16_t klass = 1;  // raw: OPT overloads this field
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;

  /// For TXT records: concatenation of the character-strings.
  std::optional<std::string> txt() const;
  /// For A records: the 4 address bytes as host-order u32.
  std::optional<std::uint32_t> a_addr() const;
};

/// Builds TXT RDATA from a single character-string (<=255 bytes per chunk;
/// longer strings are split into multiple chunks).
std::vector<std::uint8_t> make_txt_rdata(std::string_view text);
/// Builds A RDATA.
std::vector<std::uint8_t> make_a_rdata(std::uint32_t addr);

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  /// Serializes to wire bytes. Counts in the header are recomputed from
  /// the section sizes (the stored qd/an/ns/ar counts are ignored).
  std::vector<std::uint8_t> encode() const;

  /// Parses wire bytes. Throws DnsError on malformed input.
  static Message decode(std::span<const std::uint8_t> bytes);
};

/// Convenience: standard query with one question.
Message make_query(std::uint16_t id, Question q);

}  // namespace fenrir::dns
