#include "dns/chaos.h"

namespace fenrir::dns {

Message make_hostname_bind_query(std::uint16_t id) {
  Message q = make_query(
      id, Question{"hostname.bind", RecordType::kTxt, RecordClass::kChaos});
  set_edns(q, make_nsid_request());
  return q;
}

Message make_hostname_bind_response(const Message& query,
                                    const std::string& server_identity) {
  Message resp;
  resp.header = query.header;
  resp.header.qr = true;
  resp.header.aa = true;
  resp.header.rcode = Rcode::kNoError;
  resp.questions = query.questions;

  ResourceRecord txt;
  txt.name = "hostname.bind";
  txt.type = RecordType::kTxt;
  txt.klass = static_cast<std::uint16_t>(RecordClass::kChaos);
  txt.ttl = 0;
  txt.rdata = make_txt_rdata(server_identity);
  resp.answers.push_back(std::move(txt));

  // Echo NSID if the client asked for it (RFC 5001 §2.1).
  if (const auto edns = get_edns(query); edns && edns->find(kOptionNsid)) {
    EdnsRecord out_edns;
    EdnsOption nsid;
    nsid.code = kOptionNsid;
    nsid.data.assign(server_identity.begin(), server_identity.end());
    out_edns.options.push_back(std::move(nsid));
    set_edns(resp, out_edns);
  }
  return resp;
}

std::optional<std::string> extract_server_identity(const Message& response) {
  if (!response.header.qr || response.header.rcode != Rcode::kNoError) {
    return std::nullopt;
  }
  for (const auto& rr : response.answers) {
    if (rr.type == RecordType::kTxt) {
      if (auto text = rr.txt(); text && !text->empty()) return text;
    }
  }
  if (const auto edns = get_edns(response)) {
    if (const auto* nsid = edns->find(kOptionNsid);
        nsid && !nsid->data.empty()) {
      return std::string(nsid->data.begin(), nsid->data.end());
    }
  }
  return std::nullopt;
}

}  // namespace fenrir::dns
