// fenrir::dns — domain names on the wire.
//
// Encoding writes uncompressed label sequences (what a stub resolver
// emits); decoding additionally follows RFC 1035 §4.1.4 compression
// pointers with loop protection, since servers compress.
#pragma once

#include <string>
#include <unordered_map>
#include <string_view>

#include "dns/wire.h"

namespace fenrir::dns {

/// Maximum total encoded name length per RFC 1035.
inline constexpr std::size_t kMaxNameLen = 255;
/// Maximum single label length.
inline constexpr std::size_t kMaxLabelLen = 63;

/// Normalizes a presentation-form name: lowercases and strips one trailing
/// dot ("Hostname.Bind." -> "hostname.bind"). The root is "".
std::string normalize_name(std::string_view name);

/// Appends the wire encoding of @p name (presentation form, e.g.
/// "hostname.bind"). Throws DnsError on over-long labels/names or empty
/// labels ("a..b").
void encode_name(Writer& w, std::string_view name);

/// Decodes a (possibly compressed) name at the reader's cursor, returning
/// presentation form without the trailing dot (root decodes to "").
/// The cursor advances past the name as stored (pointers are not
/// re-entered). Throws DnsError on malformed input or pointer loops.
std::string decode_name(Reader& r);

/// RFC 1035 §4.1.4 name compression for the encode path. One compressor
/// lives per message being built; each encoded name's suffixes are
/// remembered, and later names reuse them via 2-octet pointers — the way
/// every production server shrinks responses ("hostname.bind" appears in
/// the question and again as the answer's owner name; the second costs
/// two bytes).
class NameCompressor {
 public:
  /// Encodes @p name into @p w, pointing into previously written names
  /// where a suffix matches. The writer must hold the whole message so
  /// far (offsets are message offsets). Throws like encode_name.
  void encode(Writer& w, std::string_view name);

 private:
  /// Offset of each suffix already on the wire ("example.com", "com").
  std::unordered_map<std::string, std::size_t> offsets_;
};

}  // namespace fenrir::dns
