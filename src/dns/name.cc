#include "dns/name.h"

#include <cctype>

namespace fenrir::dns {

std::string normalize_name(std::string_view name) {
  if (!name.empty() && name.back() == '.') name.remove_suffix(1);
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

void encode_name(Writer& w, std::string_view name) {
  const std::string norm = normalize_name(name);
  std::size_t total = 1;  // terminating root label
  std::string_view rest = norm;
  while (!rest.empty()) {
    const auto dot = rest.find('.');
    const std::string_view label =
        dot == std::string_view::npos ? rest : rest.substr(0, dot);
    if (label.empty()) throw DnsError("empty label in name: " + norm);
    if (label.size() > kMaxLabelLen) throw DnsError("label too long: " + norm);
    total += 1 + label.size();
    if (total > kMaxNameLen) throw DnsError("name too long: " + norm);
    w.u8(static_cast<std::uint8_t>(label.size()));
    w.raw(label);
    rest = dot == std::string_view::npos ? std::string_view{}
                                         : rest.substr(dot + 1);
  }
  w.u8(0);
}

void NameCompressor::encode(Writer& w, std::string_view name) {
  const std::string norm = normalize_name(name);
  if (norm.empty()) {
    w.u8(0);
    return;
  }

  // Walk suffixes left to right: "a.b.c" -> "a.b.c", "b.c", "c".
  std::string_view rest = norm;
  std::size_t total = 0;
  while (!rest.empty()) {
    // Emit a pointer if this exact suffix is already on the wire within
    // pointer range.
    const auto it = offsets_.find(std::string(rest));
    if (it != offsets_.end() && it->second <= 0x3fff) {
      w.u8(static_cast<std::uint8_t>(0xc0 | (it->second >> 8)));
      w.u8(static_cast<std::uint8_t>(it->second));
      return;
    }

    const auto dot = rest.find('.');
    const std::string_view label =
        dot == std::string_view::npos ? rest : rest.substr(0, dot);
    if (label.empty()) throw DnsError("empty label in name: " + norm);
    if (label.size() > kMaxLabelLen) throw DnsError("label too long: " + norm);
    total += 1 + label.size();
    if (total + 1 > kMaxNameLen) throw DnsError("name too long: " + norm);

    // Remember where this suffix starts, for later names.
    if (w.size() <= 0x3fff) {
      offsets_.emplace(std::string(rest), w.size());
    }
    w.u8(static_cast<std::uint8_t>(label.size()));
    w.raw(label);
    rest = dot == std::string_view::npos ? std::string_view{}
                                         : rest.substr(dot + 1);
  }
  w.u8(0);
}

std::string decode_name(Reader& r) {
  std::string out;
  std::size_t jumps = 0;
  std::size_t resume = 0;  // cursor to restore after following pointers
  bool jumped = false;
  // A pointer may appear at most once per byte of message; 128 jumps is
  // far beyond any legal message and guards against loops.
  constexpr std::size_t kMaxJumps = 128;

  for (;;) {
    const std::uint8_t len = r.u8();
    if ((len & 0xc0) == 0xc0) {
      const std::uint16_t lo = r.u8();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | lo;
      if (!jumped) {
        resume = r.pos();
        jumped = true;
      }
      if (++jumps > kMaxJumps) throw DnsError("compression pointer loop");
      r.seek(target);
      continue;
    }
    if ((len & 0xc0) != 0) throw DnsError("reserved label type");
    if (len == 0) break;
    const auto label = r.raw(len);
    if (!out.empty()) out.push_back('.');
    out.append(reinterpret_cast<const char*>(label.data()), label.size());
    if (out.size() > kMaxNameLen) throw DnsError("decoded name too long");
  }
  if (jumped) r.seek(resume);
  return normalize_name(out);
}

}  // namespace fenrir::dns
