#include "dns/edns.h"

namespace fenrir::dns {

ResourceRecord EdnsRecord::to_rr() const {
  ResourceRecord rr;
  rr.name = "";  // root
  rr.type = RecordType::kOpt;
  rr.klass = udp_payload_size;
  rr.ttl = (std::uint32_t{extended_rcode} << 24) |
           (std::uint32_t{version} << 16) | (dnssec_ok ? 0x8000u : 0u);
  Writer w;
  for (const auto& opt : options) {
    w.u16(opt.code);
    if (opt.data.size() > 0xffff) throw DnsError("EDNS option too long");
    w.u16(static_cast<std::uint16_t>(opt.data.size()));
    w.raw(opt.data);
  }
  rr.rdata = std::move(w).take();
  return rr;
}

EdnsRecord EdnsRecord::from_rr(const ResourceRecord& rr) {
  if (rr.type != RecordType::kOpt) throw DnsError("not an OPT record");
  EdnsRecord out;
  out.udp_payload_size = rr.klass;
  out.extended_rcode = static_cast<std::uint8_t>(rr.ttl >> 24);
  out.version = static_cast<std::uint8_t>(rr.ttl >> 16);
  out.dnssec_ok = (rr.ttl & 0x8000u) != 0;
  Reader r(rr.rdata);
  while (r.remaining() > 0) {
    EdnsOption opt;
    opt.code = r.u16();
    const std::uint16_t len = r.u16();
    const auto data = r.raw(len);
    opt.data.assign(data.begin(), data.end());
    out.options.push_back(std::move(opt));
  }
  return out;
}

const EdnsOption* EdnsRecord::find(std::uint16_t code) const {
  for (const auto& opt : options) {
    if (opt.code == code) return &opt;
  }
  return nullptr;
}

std::vector<std::uint8_t> ClientSubnet::encode() const {
  Writer w;
  w.u16(1);  // FAMILY: IPv4
  w.u8(static_cast<std::uint8_t>(prefix.length()));
  w.u8(scope_len);
  // Address truncated to the bytes covered by the source prefix length.
  const int addr_bytes = (prefix.length() + 7) / 8;
  const std::uint32_t base = prefix.base().value();
  for (int i = 0; i < addr_bytes; ++i) {
    w.u8(static_cast<std::uint8_t>(base >> (8 * (3 - i))));
  }
  return std::move(w).take();
}

ClientSubnet ClientSubnet::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  const std::uint16_t family = r.u16();
  if (family != 1) throw DnsError("client-subnet: unsupported family");
  const std::uint8_t source_len = r.u8();
  const std::uint8_t scope_len = r.u8();
  if (source_len > 32) throw DnsError("client-subnet: bad source length");
  const std::size_t addr_bytes = (std::size_t{source_len} + 7) / 8;
  if (r.remaining() != addr_bytes) {
    throw DnsError("client-subnet: address length mismatch");
  }
  std::uint32_t base = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    base <<= 8;
    if (i < addr_bytes) base |= r.u8();
  }
  // RFC 7871 §6: bits beyond SOURCE PREFIX-LENGTH MUST be zero.
  if ((base & ~netbase::Prefix::mask_for(source_len)) != 0) {
    throw DnsError("client-subnet: nonzero host bits");
  }
  ClientSubnet out;
  out.prefix = netbase::Prefix(netbase::Ipv4Addr(base), source_len);
  out.scope_len = scope_len;
  return out;
}

void set_edns(Message& m, const EdnsRecord& edns) {
  std::erase_if(m.additional, [](const ResourceRecord& rr) {
    return rr.type == RecordType::kOpt;
  });
  m.additional.push_back(edns.to_rr());
}

std::optional<EdnsRecord> get_edns(const Message& m) {
  for (const auto& rr : m.additional) {
    if (rr.type == RecordType::kOpt) {
      try {
        return EdnsRecord::from_rr(rr);
      } catch (const DnsError&) {
        return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

EdnsRecord make_nsid_request() {
  EdnsRecord edns;
  edns.options.push_back(EdnsOption{kOptionNsid, {}});
  return edns;
}

EdnsRecord make_client_subnet_request(netbase::Prefix prefix) {
  EdnsRecord edns;
  ClientSubnet cs;
  cs.prefix = prefix;
  cs.scope_len = 0;
  edns.options.push_back(EdnsOption{kOptionClientSubnet, cs.encode()});
  return edns;
}

}  // namespace fenrir::dns
