#include "netbase/ipv4.h"

#include <charconv>

namespace fenrir::netbase {

namespace {

// Parses a decimal integer in [0, max] from the front of `text`, advancing
// it past the digits. Returns nullopt on empty/overflow/leading-garbage.
std::optional<std::uint32_t> parse_uint_prefix(std::string_view& text,
                                               std::uint32_t max) {
  std::uint32_t out = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr == begin || out > max) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return out;
}

}  // namespace

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    const auto octet = parse_uint_prefix(text, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto base = Ipv4Addr::parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  auto rest = text.substr(slash + 1);
  const auto length = parse_uint_prefix(rest, 32);
  if (!length || !rest.empty()) return std::nullopt;
  // Reject non-canonical bases: host bits must be zero.
  if ((base->value() & ~Prefix::mask_for(static_cast<int>(*length))) != 0) {
    return std::nullopt;
  }
  return Prefix(*base, static_cast<int>(*length));
}

std::string Asn::to_string() const { return "AS" + std::to_string(value_); }

}  // namespace fenrir::netbase
