// fenrir::netbase — binary prefix trie with longest-prefix match.
//
// Maps CIDR prefixes to values of type V; lookup(addr) returns the value of
// the most-specific covering prefix. Used for routable-prefix tables (the
// simulated RouteViews table the USC traceroute scan is seeded from) and
// for prefix→AS origin mapping inside the BGP simulator.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/ipv4.h"

namespace fenrir::netbase {

template <typename V>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Inserts or overwrites the value at @p prefix. Returns true if a new
  /// entry was created, false if an existing one was replaced.
  bool insert(const Prefix& prefix, V value) {
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.base().value() >> (31 - depth)) & 1;
      std::size_t& child = nodes_[node].child[bit];
      if (child == 0) {
        child = nodes_.size();
        // Note: `child` may dangle after push_back; re-fetch through index.
        const std::size_t parent = node;
        nodes_.push_back(Node{});
        node = nodes_[parent].child[bit];
      } else {
        node = child;
      }
    }
    const bool fresh = !nodes_[node].value.has_value();
    nodes_[node].value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Longest-prefix match: value of the most-specific prefix covering
  /// @p addr, or nullopt if none.
  std::optional<V> lookup(Ipv4Addr addr) const {
    std::optional<V> best;
    std::size_t node = 0;
    if (nodes_[0].value) best = nodes_[0].value;
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (addr.value() >> (31 - depth)) & 1;
      const std::size_t child = nodes_[node].child[bit];
      if (child == 0) break;
      node = child;
      if (nodes_[node].value) best = nodes_[node].value;
    }
    return best;
  }

  /// Exact-prefix lookup (no LPM).
  std::optional<V> find(const Prefix& prefix) const {
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.base().value() >> (31 - depth)) & 1;
      const std::size_t child = nodes_[node].child[bit];
      if (child == 0) return std::nullopt;
      node = child;
    }
    return nodes_[node].value;
  }

  /// True if some entry (at any length) covers @p addr.
  bool covers(Ipv4Addr addr) const { return lookup(addr).has_value(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Visits every (prefix, value) pair in lexicographic prefix order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(0, 0u, 0, fn);
  }

 private:
  struct Node {
    std::size_t child[2] = {0, 0};  // 0 = absent (root is never a child)
    std::optional<V> value;
  };

  template <typename Fn>
  void walk(std::size_t node, std::uint32_t bits, int depth, Fn& fn) const {
    if (nodes_[node].value) {
      fn(Prefix(Ipv4Addr(bits), depth), *nodes_[node].value);
    }
    for (int bit = 0; bit < 2; ++bit) {
      const std::size_t child = nodes_[node].child[bit];
      if (child != 0) {
        const std::uint32_t child_bits =
            bits | (bit ? (std::uint32_t{1} << (31 - depth)) : 0u);
        walk(child, child_bits, depth + 1, fn);
      }
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace fenrir::netbase
