// fenrir::netbase — IPv4 addresses and prefixes.
//
// Value types for IPv4 addresses and CIDR prefixes, with parsing,
// formatting, and the block arithmetic Fenrir's measurement pipeline
// relies on (every dataset in the paper is keyed by /24 blocks).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fenrir::netbase {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// RFC 1918 private space (10/8, 172.16/12, 192.168/16).
  constexpr bool is_private() const noexcept {
    return (value_ >> 24) == 10 || (value_ >> 20) == 0xac1 ||
           (value_ >> 16) == 0xc0a8;
  }

  /// 127/8.
  constexpr bool is_loopback() const noexcept { return (value_ >> 24) == 127; }

  /// Dotted-quad form, e.g. "192.0.2.1".
  std::string to_string() const;

  /// Parses dotted-quad; rejects anything else (no shorthand forms).
  static std::optional<Ipv4Addr> parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix: base address plus length in [0, 32]. The base is always
/// stored canonically (host bits zeroed).
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(Ipv4Addr base, int length) noexcept
      : base_(Ipv4Addr(base.value() & mask_for(length))),
        length_(static_cast<std::uint8_t>(length)) {}

  constexpr Ipv4Addr base() const noexcept { return base_; }
  constexpr int length() const noexcept { return length_; }

  static constexpr std::uint32_t mask_for(int length) noexcept {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }
  constexpr std::uint32_t mask() const noexcept { return mask_for(length_); }

  constexpr bool contains(Ipv4Addr addr) const noexcept {
    return (addr.value() & mask()) == base_.value();
  }
  constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.base_);
  }

  /// Number of addresses covered (as 64-bit to hold 2^32 for /0).
  constexpr std::uint64_t address_count() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  /// Number of /24 blocks covered; 1 for prefixes longer than /24.
  constexpr std::uint64_t block24_count() const noexcept {
    return length_ >= 24 ? 1 : (std::uint64_t{1} << (24 - length_));
  }

  /// The /24 block containing this prefix's base address.
  constexpr Prefix block24() const noexcept { return Prefix(base_, 24); }

  /// "192.0.2.0/24".
  std::string to_string() const;

  /// Parses "a.b.c.d/len". Rejects out-of-range lengths and non-canonical
  /// bases (host bits set), which in Fenrir's inputs indicate corrupt rows.
  static std::optional<Prefix> parse(std::string_view text);

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept =
      default;

 private:
  Ipv4Addr base_;
  std::uint8_t length_ = 0;
};

/// Dense index of a /24 block: the top 24 bits of its base address.
/// Verfploeter-style datasets identify targets by /24, so this is the
/// natural network key throughout Fenrir.
constexpr std::uint32_t block24_index(Ipv4Addr addr) noexcept {
  return addr.value() >> 8;
}
constexpr Prefix block24_from_index(std::uint32_t index) noexcept {
  return Prefix(Ipv4Addr(index << 8), 24);
}

/// An autonomous-system number.
class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t value) noexcept : value_(value) {}
  constexpr std::uint32_t value() const noexcept { return value_; }
  /// "AS2152".
  std::string to_string() const;
  friend constexpr auto operator<=>(Asn, Asn) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace fenrir::netbase

template <>
struct std::hash<fenrir::netbase::Ipv4Addr> {
  std::size_t operator()(fenrir::netbase::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<fenrir::netbase::Prefix> {
  std::size_t operator()(const fenrir::netbase::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.base().value()} << 8) |
        static_cast<std::uint64_t>(p.length()));
  }
};

template <>
struct std::hash<fenrir::netbase::Asn> {
  std::size_t operator()(fenrir::netbase::Asn a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
