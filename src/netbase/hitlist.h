// fenrir::netbase — probing hitlists.
//
// A Hitlist selects one representative target address per /24 block, the
// way the ISI hitlist (Fan et al. 2013) seeds Verfploeter and the USC
// traceroute scans. Representatives are chosen deterministically from a
// seed so repeated scans probe the same addresses, and refresh() models the
// quarterly hitlist updates the paper describes for Trinocular.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ipv4.h"
#include "rng/rng.h"

namespace fenrir::netbase {

class Hitlist {
 public:
  /// Builds a hitlist covering @p blocks (each entry a /24 block index,
  /// see block24_index). One target per block, host byte drawn from seed.
  Hitlist(std::vector<std::uint32_t> blocks, std::uint64_t seed)
      : blocks_(std::move(blocks)), seed_(seed), epoch_(0) {}

  std::size_t size() const noexcept { return blocks_.size(); }

  /// The /24 block index at position i.
  std::uint32_t block(std::size_t i) const noexcept { return blocks_[i]; }

  /// The representative target address for position i in the current epoch.
  Ipv4Addr target(std::size_t i) const noexcept {
    // Host bytes 1..254 (avoid network and broadcast addresses).
    const std::uint64_t h = rng::mix(seed_, blocks_[i], epoch_);
    const std::uint32_t host = 1 + static_cast<std::uint32_t>(h % 254);
    return Ipv4Addr((blocks_[i] << 8) | host);
  }

  /// Advances to the next epoch (models the quarterly refresh): every
  /// block gets a fresh pseudorandom representative.
  void refresh() noexcept { ++epoch_; }

  std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  std::vector<std::uint32_t> blocks_;
  std::uint64_t seed_;
  std::uint64_t epoch_;
};

}  // namespace fenrir::netbase
