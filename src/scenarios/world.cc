#include "scenarios/world.h"

#include <algorithm>
#include <stdexcept>

namespace fenrir::scenarios {

World make_world(const WorldConfig& config) {
  return World{bgp::generate_topology(config.topo), bgp::RouteCache{}, {}};
}

double catchment_shift_fraction(const bgp::Topology& topo,
                                const bgp::RoutingTable& before,
                                const bgp::RoutingTable& after) {
  if (topo.stubs.empty()) return 0.0;
  std::size_t changed = 0;
  for (const bgp::AsIndex as : topo.stubs) {
    if (before.catchment(as) != after.catchment(as)) ++changed;
  }
  return static_cast<double>(changed) /
         static_cast<double>(topo.stubs.size());
}

std::optional<PolicyFlip> find_effective_flip(
    bgp::AsGraph& graph, const bgp::Topology& topo,
    const std::vector<bgp::Origin>& origins, bgp::RouteCache& cache,
    double min_shift, double max_shift, rng::Rng& rng,
    std::size_t max_candidates, const ShiftMetric& metric) {
  // Candidates: ASes with at least two providers — only they can re-prefer.
  std::vector<bgp::AsIndex> candidates;
  for (bgp::AsIndex as = 0; as < graph.as_count(); ++as) {
    std::size_t providers = 0;
    for (const auto& l : graph.node(as).links) {
      providers += (l.relation == bgp::Relation::kProvider && l.up);
    }
    if (providers >= 2) candidates.push_back(as);
  }
  rng.shuffle(candidates);
  if (candidates.size() > max_candidates) candidates.resize(max_candidates);

  const bgp::RoutingTable before = bgp::compute_routes(graph, origins);

  for (const bgp::AsIndex as : candidates) {
    const auto& route = before.at(as);
    if (!route.reachable) continue;
    for (const auto& l : graph.node(as).links) {
      if (l.relation != bgp::Relation::kProvider || !l.up) continue;
      if (l.neighbor == route.from) continue;  // already preferred
      PolicyFlip flip{as, l.neighbor, 90, l.local_pref_adjust};
      flip.apply(graph);
      const bgp::RoutingTable& after = cache.get(graph, origins);
      const double shift = metric
                               ? metric(before, after)
                               : catchment_shift_fraction(topo, before, after);
      flip.revert(graph);
      if (shift >= min_shift && shift <= max_shift) return flip;
    }
  }
  return std::nullopt;
}

std::vector<PolicyFlip> find_effective_flips(
    bgp::AsGraph& graph, const bgp::Topology& topo,
    const std::vector<bgp::Origin>& origins, bgp::RouteCache& cache,
    double min_shift, double max_shift, rng::Rng& rng, std::size_t count,
    std::size_t max_candidates) {
  std::vector<bgp::AsIndex> candidates;
  for (bgp::AsIndex as = 0; as < graph.as_count(); ++as) {
    std::size_t providers = 0;
    for (const auto& l : graph.node(as).links) {
      providers += (l.relation == bgp::Relation::kProvider && l.up);
    }
    if (providers >= 2) candidates.push_back(as);
  }
  rng.shuffle(candidates);
  if (candidates.size() > max_candidates) candidates.resize(max_candidates);

  const bgp::RoutingTable before = bgp::compute_routes(graph, origins);
  std::vector<PolicyFlip> out;
  for (const bgp::AsIndex as : candidates) {
    if (out.size() >= count) break;
    const auto& route = before.at(as);
    if (!route.reachable) continue;
    for (const auto& l : graph.node(as).links) {
      if (l.relation != bgp::Relation::kProvider || !l.up) continue;
      if (l.neighbor == route.from) continue;
      PolicyFlip flip{as, l.neighbor, 90, l.local_pref_adjust};
      flip.apply(graph);
      const bgp::RoutingTable& after = cache.get(graph, origins);
      const double shift = catchment_shift_fraction(topo, before, after);
      flip.revert(graph);
      if (shift >= min_shift && shift <= max_shift) {
        out.push_back(flip);
        break;  // one flip per owner
      }
    }
  }
  return out;
}

namespace {

bgp::AsIndex first_provider(const bgp::AsGraph& graph, bgp::AsIndex as) {
  for (const auto& l : graph.node(as).links) {
    if (l.relation == bgp::Relation::kProvider && l.up) return l.neighbor;
  }
  throw std::invalid_argument("add_shiftable_cone: origin has no provider");
}

}  // namespace

std::optional<ShiftableCone> add_shiftable_cone(
    World& world, bgp::AsIndex origin_a, bgp::AsIndex origin_b,
    double stub_fraction, std::uint32_t asn, rng::Rng& rng,
    const std::vector<bgp::Origin>* verify_origins) {
  bgp::AsGraph& graph = world.topo.graph;
  const bgp::AsIndex pa = first_provider(graph, origin_a);
  const bgp::AsIndex pb = first_provider(graph, origin_b);
  if (pa == pb) {
    throw std::invalid_argument(
        "add_shiftable_cone: origins share their first provider");
  }

  // Aggregator placed near origin A's provider.
  const bgp::AsIndex agg = graph.add_as(
      netbase::Asn(asn), bgp::AsTier::kTier2, graph.node(pa).location,
      "agg-" + std::to_string(asn));
  graph.add_link(pa, agg, bgp::Relation::kCustomer);
  graph.add_link(pb, agg, bgp::Relation::kCustomer);
  // Initially prefer the A side.
  graph.set_local_pref_adjust(agg, pa, 10);

  ShiftableCone out;
  out.aggregator = agg;
  out.flip = PolicyFlip{agg, pb, 90, 0};

  // Never re-home a service origin: it would hand the aggregator a
  // customer route to that site, which outranks both provider routes and
  // freezes the flip.
  std::unordered_set<bgp::AsIndex> skip{origin_a, origin_b};
  if (verify_origins != nullptr) {
    for (const bgp::Origin& o : *verify_origins) skip.insert(o.as);
  }

  if (verify_origins != nullptr) {
    const bgp::RoutingTable base = bgp::compute_routes(graph, *verify_origins);
    out.flip.apply(graph);
    const bgp::RoutingTable flipped =
        bgp::compute_routes(graph, *verify_origins);
    out.flip.revert(graph);
    if (base.catchment(agg) == flipped.catchment(agg)) {
      return std::nullopt;  // flip would be a routing no-op
    }
  }

  // Re-home a random slice of stubs: add the aggregator as a strongly
  // preferred additional provider.
  std::vector<bgp::AsIndex> stubs = world.topo.stubs;
  rng.shuffle(stubs);
  const std::size_t want = static_cast<std::size_t>(
      stub_fraction * static_cast<double>(world.topo.stubs.size()));
  for (const bgp::AsIndex s : stubs) {
    if (out.cone_stubs.size() >= want) break;
    if (skip.contains(s) || world.cone_claimed.contains(s)) continue;
    graph.add_link(agg, s, bgp::Relation::kCustomer);
    graph.set_local_pref_adjust(s, agg, 60);
    world.cone_claimed.insert(s);
    out.cone_stubs.push_back(s);
  }
  return out;
}

namespace {

std::vector<bgp::AsIndex> tier_members(const bgp::Topology& topo,
                                       bgp::AsTier tier) {
  switch (tier) {
    case bgp::AsTier::kTier1: return topo.tier1;
    case bgp::AsTier::kTier2: return topo.tier2;
    case bgp::AsTier::kStub: return topo.stubs;
  }
  return {};
}

}  // namespace

bgp::AsIndex nearest_as(const bgp::Topology& topo, const geo::Coord& where,
                        bgp::AsTier tier) {
  const auto out = nearest_ases(topo, where, tier, 1);
  if (out.empty()) throw std::invalid_argument("nearest_as: no ASes in tier");
  return out.front();
}

std::vector<bgp::AsIndex> nearest_ases(const bgp::Topology& topo,
                                       const geo::Coord& where,
                                       bgp::AsTier tier, std::size_t n) {
  std::vector<bgp::AsIndex> members = tier_members(topo, tier);
  std::sort(members.begin(), members.end(),
            [&](bgp::AsIndex a, bgp::AsIndex b) {
              return geo::haversine_km(where, topo.graph.node(a).location) <
                     geo::haversine_km(where, topo.graph.node(b).location);
            });
  if (members.size() > n) members.resize(n);
  return members;
}

std::vector<core::SiteId> make_site_mapping(
    core::SiteTable& sites, const std::vector<std::string>& site_names) {
  std::vector<core::SiteId> out;
  out.reserve(site_names.size());
  for (const std::string& name : site_names) {
    out.push_back(sites.intern(name));
  }
  return out;
}

}  // namespace fenrir::scenarios
