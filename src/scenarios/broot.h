// fenrir::scenarios — five years of B-Root (paper §4.2, Figures 3 and 4).
//
// A root-DNS anycast service observed weekly with Verfploeter over
// 2019-09 .. 2024-12. The timeline reproduces the paper's mode structure:
//
//   mode (i)    2019-09 ..          LAX dominant, with MIA and ARI
//   mode (ii)   2020-02 ..          SIN, IAD, AMS added
//   mode (iii)  2020-04 ..          TE moves most LAX clients to the new
//                                   sites (the paper's "70% of clients
//                                   that used to go to LAX")
//   mode (iv)   2021-03 .. 2023-07  longest mode; inside it the small
//                                   third-party boundaries (iv.a)..(iv.d)
//                                   at 2022-09-16 / 2023-02-12 / 2023-04-13,
//                                   plus ARI shutdown 2023-03-06 and the
//                                   brief SCL experiments in 2023-05 before
//                                   SCL resumes 2023-06-29
//   (outage)    2023-07-05 .. 2023-12-01  collection gap (invalid vectors)
//   mode (v)    2023-12 ..          TE reverted: LAX dominant again, so
//                                   (v) resembles (i) more than (iv)/(vi)
//   mode (vi)   2024-10 ..          a further large change
//
// RTT series for the Figure 4 window (2022-01 .. 2023-12) come from the
// geo latency model: ARI shows >200 ms p90 because a tail of distant
// networks routes to it, and drops out when the site shuts down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vector.h"
#include "geo/geo.h"
#include "scenarios/world.h"

namespace fenrir::scenarios {

struct BrootConfig {
  core::TimePoint cadence = 7 * core::kDay;
  std::size_t topo_stubs = 2000;  // more stubs -> more /24 blocks (~12k)
  std::uint64_t seed = 0xb007;
};

struct BrootScenario {
  std::vector<std::string> site_names;  // service order: LAX MIA ARI SIN IAD AMS SCL
  std::vector<geo::Coord> site_coords;
  core::Dataset dataset;  // weekly Verfploeter vectors

  /// RTT per network for observations inside the Figure 4 window
  /// (negative = no measurement). rtt[k] belongs to series index
  /// rtt_first_index + k.
  std::vector<std::vector<double>> rtt;
  std::size_t rtt_first_index = 0;

  /// Location of each dataset network (the originating stub, jittered) —
  /// input to latency and polarization analysis.
  std::vector<geo::Coord> network_coords;

  /// Series indices where timeline events take effect.
  std::vector<std::size_t> event_indices;
  std::size_t third_party_flips_found = 0;
};

BrootScenario make_broot(const BrootConfig& config = {});

}  // namespace fenrir::scenarios
