// fenrir::scenarios — the shared synthetic Internet every experiment
// runs on, plus the tooling that makes scenarios faithful to the paper.
//
// Each dataset in the paper (Table 2) becomes a scenario: a topology, a
// service, a timeline of operational and third-party events, and a probe
// sweep producing a core::Dataset. This header provides:
//
//   * make_world()           — a standard three-tier topology + route cache;
//   * PolicyFlip             — a third-party local-pref change at some AS,
//                              revertible;
//   * find_effective_flip()  — searches the topology for a flip that
//                              actually moves a target share of networks
//                              between catchments. The paper's third-party
//                              events are exactly such changes: made by an
//                              AS multiple hops upstream, invisible to the
//                              service operator, visible in catchments.
//   * make_site_mapping()    — interns service site names into a dataset's
//                              SiteTable and returns service-site -> SiteId.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "bgp/service.h"
#include "bgp/topology_gen.h"
#include "core/tables.h"
#include "rng/rng.h"

namespace fenrir::scenarios {

struct WorldConfig {
  bgp::TopologyParams topo;
  WorldConfig() {
    topo.tier1_count = 8;
    topo.tier2_count = 64;
    topo.stub_count = 1200;
    topo.seed = 0xfe11;
  }
};

struct World {
  bgp::Topology topo;
  bgp::RouteCache cache;
  /// Stubs already re-homed onto some shiftable cone; cones claim
  /// disjoint sets so every flip moves its full advertised share.
  std::unordered_set<bgp::AsIndex> cone_claimed;
};

World make_world(const WorldConfig& config = {});

/// A revertible local-pref change applied by one AS to one neighbor.
struct PolicyFlip {
  bgp::AsIndex owner = bgp::kNoAs;
  bgp::AsIndex neighbor = bgp::kNoAs;
  std::int16_t flipped = 0;
  std::int16_t original = 0;

  void apply(bgp::AsGraph& graph) const {
    graph.set_local_pref_adjust(owner, neighbor, flipped);
  }
  void revert(bgp::AsGraph& graph) const {
    graph.set_local_pref_adjust(owner, neighbor, original);
  }
};

/// Fraction of stub ASes whose catchment differs between two tables.
double catchment_shift_fraction(const bgp::Topology& topo,
                                const bgp::RoutingTable& before,
                                const bgp::RoutingTable& after);

/// Scores the effect of a candidate change: given routing before and
/// after, returns the "effective shift" compared against the search
/// bounds. The default metric is catchment_shift_fraction over stubs.
using ShiftMetric = std::function<double(const bgp::RoutingTable& before,
                                         const bgp::RoutingTable& after)>;

/// Searches multi-provider ASes for a local-pref flip whose application
/// moves a fraction of stub catchments within [min_shift, max_shift] for
/// the given anycast origins. The graph is left UNCHANGED (candidates are
/// applied and reverted during the search); apply the returned flip when
/// the event should take effect. Returns nullopt if no candidate works.
/// A custom @p metric redefines what counts as shift (e.g. "fraction of
/// stubs moving specifically from CMH to SAT").
std::optional<PolicyFlip> find_effective_flip(
    bgp::AsGraph& graph, const bgp::Topology& topo,
    const std::vector<bgp::Origin>& origins, bgp::RouteCache& cache,
    double min_shift, double max_shift, rng::Rng& rng,
    std::size_t max_candidates = 200, const ShiftMetric& metric = {});

/// Collects up to @p count flips with distinct owner ASes, each with an
/// effective shift in [min_shift, max_shift]. May return fewer if the
/// topology does not offer enough; the graph is left unchanged.
std::vector<PolicyFlip> find_effective_flips(
    bgp::AsGraph& graph, const bgp::Topology& topo,
    const std::vector<bgp::Origin>& origins, bgp::RouteCache& cache,
    double min_shift, double max_shift, rng::Rng& rng, std::size_t count,
    std::size_t max_candidates = 600);

/// A constructed third-party change with a guaranteed effect: a transit
/// ("aggregator") AS multihomed to the first providers of two service
/// origins, carrying a cone of re-homed stubs. Because a provider of an
/// origin always selects that origin's customer route, the aggregator's
/// catchment is site A or site B depending purely on its own local
/// preference — several hops away from, and invisible to, the service
/// operator. Toggling the flip moves the whole cone between the sites.
struct ShiftableCone {
  bgp::AsIndex aggregator = bgp::kNoAs;
  /// Applying prefers the B-side provider; reverting restores the A-side.
  PolicyFlip flip;
  /// The stubs whose catchment follows the aggregator.
  std::vector<bgp::AsIndex> cone_stubs;
};

/// Builds a shiftable cone between the sites hosted at @p origin_a and
/// @p origin_b, re-homing ~@p stub_fraction of the topology's stubs onto
/// the aggregator (they keep their existing providers; the new link is
/// preferred). @p asn must be unused. Throws if an origin has no provider.
///
/// When @p verify_origins is given, the cone is checked for effectiveness
/// first: the aggregator's catchment under those anycast origins must
/// actually differ between the two provider preferences (origins placed
/// at nearby metros can share upstream routing, making a flip a no-op).
/// An ineffective cone is abandoned — no stubs re-homed, nullopt
/// returned, the inert aggregator left behind.
std::optional<ShiftableCone> add_shiftable_cone(
    World& world, bgp::AsIndex origin_a, bgp::AsIndex origin_b,
    double stub_fraction, std::uint32_t asn, rng::Rng& rng,
    const std::vector<bgp::Origin>* verify_origins = nullptr);

/// The AS of the given tier nearest to @p where (throws if none exist).
bgp::AsIndex nearest_as(const bgp::Topology& topo, const geo::Coord& where,
                        bgp::AsTier tier);

/// The @p n ASes of the given tier nearest to @p where.
std::vector<bgp::AsIndex> nearest_ases(const bgp::Topology& topo,
                                       const geo::Coord& where,
                                       bgp::AsTier tier, std::size_t n);

/// Interns @p site_names into @p sites; returns service-site-index ->
/// core::SiteId (service sites are 0..names-1 in order).
std::vector<core::SiteId> make_site_mapping(
    core::SiteTable& sites, const std::vector<std::string>& site_names);

}  // namespace fenrir::scenarios
