#include "scenarios/groot.h"

#include <algorithm>
#include <cctype>
#include <functional>

#include "geo/geo.h"
#include "measure/atlas.h"
#include "netbase/ipv4.h"

namespace fenrir::scenarios {

namespace {

constexpr std::uint32_t kSiteCmh = 0;
constexpr std::uint32_t kSiteNap = 1;
constexpr std::uint32_t kSiteStr = 2;
constexpr std::uint32_t kSiteNrt = 3;
constexpr std::uint32_t kSiteSat = 4;
constexpr std::uint32_t kSiteHnl = 5;

}  // namespace

GrootScenario make_groot(const GrootConfig& config) {
  GrootScenario out;
  out.site_names = {"CMH", "NAP", "STR", "NRT", "SAT", "HNL"};

  WorldConfig wc;
  wc.topo.seed = config.seed;
  World world = make_world(wc);
  bgp::AsGraph& graph = world.topo.graph;
  rng::Rng rng(config.seed);

  // Anycast origins near the paper's six metros.
  const std::vector<std::pair<std::uint32_t, geo::Coord>> placements = {
      {kSiteCmh, geo::city::CMH}, {kSiteNap, geo::city::NAP},
      {kSiteStr, geo::city::STR}, {kSiteNrt, geo::city::NRT},
      {kSiteSat, geo::city::SAT}, {kSiteHnl, geo::city::HNL},
  };
  bgp::AnycastService service(
      *netbase::Prefix::parse("192.0.32.0/24"));
  std::vector<bgp::AsIndex> origin_of_site(placements.size(), bgp::kNoAs);
  {
    // Each site gets its own origin AS: distinct nearest stubs.
    std::vector<bgp::AsIndex> used;
    for (const auto& [site, where] : placements) {
      for (const bgp::AsIndex as :
           nearest_ases(world.topo, where, bgp::AsTier::kStub, 8)) {
        if (std::find(used.begin(), used.end(), as) == used.end()) {
          service.add_site(site, as);
          origin_of_site[site] = as;
          used.push_back(as);
          break;
        }
      }
    }
    // HNL is a local-only site (paper §2.4: "local-only sites serve only
    // a single AS and its customers"): its announcement is cone-scoped,
    // so its catchment is a handful of VPs — the micro-catchment the
    // cleaning stage exists to fold (Table 3 shows HNL at 12 of ~9k).
    service.set_scoped(kSiteHnl, true);
  }
  // The paper's drain behaviour: STR's users fall over to NAP. We give
  // NAP a second announcement point under STR's first upstream, so when
  // STR withdraws, that provider's best route — and therefore everything
  // that reached STR through it — moves to NAP. (Operators of real
  // anycast services arrange exactly this kind of fallback adjacency.)
  {
    bgp::AsIndex str_provider = bgp::kNoAs;
    for (const auto& l : graph.node(origin_of_site[kSiteStr]).links) {
      if (l.relation == bgp::Relation::kProvider) {
        str_provider = l.neighbor;
        break;
      }
    }
    // NAP announces from a second adjacency: a fresh stub homed solely to
    // STR's provider, in addition to its own Naples-side origin.
    const bgp::AsIndex nap_fallback = graph.add_as(
        netbase::Asn(64512), bgp::AsTier::kStub, geo::city::NAP,
        "nap-fallback");
    graph.add_link(str_provider, nap_fallback, bgp::Relation::kCustomer);
    // While STR is active it wins the shared provider's preference.
    graph.set_local_pref_adjust(str_provider, origin_of_site[kSiteStr], 10);
    service.add_site(kSiteNap, nap_fallback);
  }

  // Probe and server.
  measure::AtlasConfig ac;
  ac.vp_count = config.vp_count;
  ac.seed = rng::mix(config.seed, 0xa71a5ULL);
  const measure::AtlasProbe probe(graph, ac);

  std::vector<std::string> tokens;
  for (const auto& name : out.site_names) {
    std::string t = name;
    for (char& c : t) c = static_cast<char>(std::tolower(c));
    tokens.push_back(t);
  }
  measure::AnycastDnsServer server(tokens, config.seed);
  // A sliver of responses carries middlebox-mangled identities that map
  // to no site — the paper's "oth" state in Table 3 (46 of ~9k VPs) and
  // fodder for the remove-incorrect cleaning stage.
  server.set_bogus_identity_fraction(0.005);
  measure::ServerIdentityMap identity_map;
  for (std::uint32_t s = 0; s < tokens.size(); ++s) {
    identity_map.add(tokens[s], s);
  }

  // §2.5 weighting inputs: blocks represented per VP.
  {
    std::unordered_map<bgp::AsIndex, std::uint32_t> blocks_of;
    for (const std::uint32_t b : world.topo.blocks) {
      if (const auto as =
              graph.origin_of(netbase::block24_from_index(b).base())) {
        ++blocks_of[*as];
      }
    }
    out.vp_represented_blocks = probe.represented_blocks(blocks_of);
  }

  // Dataset skeletons.
  const auto init_dataset = [&](core::Dataset& ds, const std::string& name) {
    ds.name = name;
    for (std::uint32_t v = 0; v < probe.vantage_points().size(); ++v) {
      ds.networks.intern(v);
    }
  };
  init_dataset(out.figure1, "G-Root/Atlas (fig 1)");
  init_dataset(out.transition, "G-Root/Atlas (table 3)");
  const std::vector<core::SiteId> site_to_core =
      make_site_mapping(out.figure1.sites, out.site_names);
  make_site_mapping(out.transition.sites, out.site_names);

  // The third-party event: a distant transit AS whose preference change
  // moves a slice of CMH's users to SAT (the paper's smaller secondary
  // shift, possibly caused by "some third-party network's routing
  // policy").
  const std::vector<bgp::Origin> verify = service.active_origins();
  const std::optional<ShiftableCone> cone =
      add_shiftable_cone(world, origin_of_site[kSiteCmh],
                         origin_of_site[kSiteSat], 0.05, 64600, rng, &verify);
  out.third_party_flip_found = cone.has_value();

  // --- Figure 1 timeline. ---
  const core::TimePoint t0 = core::from_date(2020, 3, 1);
  const core::TimePoint t_end = core::from_date(2020, 3, 9);
  struct TimelineEvent {
    core::TimePoint time;
    std::function<void()> apply;
  };
  std::vector<TimelineEvent> events;
  const auto drain = [&](int m, int d, int h, int min, bool down) {
    events.push_back(TimelineEvent{
        core::from_date(2020, m, d) + h * core::kHour + min * core::kMinute,
        [&, down] { service.set_drained(kSiteStr, down); }});
  };
  drain(3, 3, 0, 0, true);
  drain(3, 3, 4, 30, false);
  drain(3, 5, 0, 0, true);
  drain(3, 5, 4, 30, false);
  drain(3, 7, 12, 0, true);
  if (cone) {
    events.push_back(TimelineEvent{core::from_date(2020, 3, 6),
                                   [&, f = cone->flip] { f.apply(graph); }});
    events.push_back(TimelineEvent{core::from_date(2020, 3, 8),
                                   [&, f = cone->flip] { f.revert(graph); }});
  }
  std::sort(events.begin(), events.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.time < b.time;
            });

  std::size_t next_event = 0;
  for (core::TimePoint t = t0; t < t_end; t += config.cadence) {
    bool event_fired = false;
    while (next_event < events.size() && events[next_event].time <= t) {
      events[next_event].apply();
      ++next_event;
      event_fired = true;
    }
    if (event_fired) out.event_indices.push_back(out.figure1.series.size());
    const bgp::RoutingTable& routing =
        world.cache.get(graph, service.active_origins());
    core::RoutingVector v;
    v.time = t;
    v.assignment =
        probe.measure(t, routing, server, identity_map, site_to_core);
    out.figure1.series.push_back(std::move(v));
  }
  out.figure1.check_consistent();

  // --- Table 3: drain mid-convergence at 4-minute spacing. ---
  // Reset to all-sites-up.
  service.set_drained(kSiteStr, false);
  const core::TimePoint tt0 = core::from_date(2024, 3, 4) +
                              21 * core::kHour + 56 * core::kMinute;
  const bgp::RoutingTable& before =
      world.cache.get(graph, service.active_origins());
  service.set_drained(kSiteStr, true);
  const bgp::RoutingTable& after =
      world.cache.get(graph, service.active_origins());

  const auto measure_at = [&](core::TimePoint t,
                              const bgp::RoutingTable& routing) {
    core::RoutingVector v;
    v.time = t;
    v.assignment =
        probe.measure(t, routing, server, identity_map, site_to_core);
    return v;
  };

  core::RoutingVector obs1 = measure_at(tt0, before);
  core::RoutingVector obs3 = measure_at(tt0 + 8 * core::kMinute, after);
  // Mid-convergence: each former STR VP has either converged to its
  // post-drain site, still reaches the draining instance, or blackholes.
  core::RoutingVector obs2 = measure_at(tt0 + 4 * core::kMinute, after);
  const core::SiteId str_core = site_to_core[kSiteStr];
  for (std::size_t n = 0; n < obs1.assignment.size(); ++n) {
    if (obs1.assignment[n] != str_core) continue;
    const std::uint64_t h = rng::mix(config.seed, 0xc07fULL, n);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < 0.12) {
      obs2.assignment[n] = str_core;  // not yet withdrawn here
    } else if (u < 0.42) {
      obs2.assignment[n] = core::kErrorSite;  // transient blackhole
    }
    // else: already converged (keep the post-drain catchment)
  }
  out.transition.series = {std::move(obs1), std::move(obs2), std::move(obs3)};
  out.transition.check_consistent();

  return out;
}

}  // namespace fenrir::scenarios
