// fenrir::scenarios — the B-Root validation study (paper §3, Table 4).
//
// Reconstructs the experiment that validates Fenrir against operator
// ground truth: an anycast service watched by Atlas-style VPs at
// minute-scale cadence over several weeks, an operator maintenance log,
// and a population of events:
//
//   * site drains (external, logged)         — the paper's 17;
//   * traffic engineering via AS-path prepend (external, logged) — 2;
//   * internal-only maintenance (logged, no routing effect) — 37 groups,
//     8 of which coincide in time with third-party changes (the paper's
//     hypothesis for its 8 apparent false positives);
//   * third-party local-pref flips several hops upstream (NOT logged) —
//     the changes Fenrir exists to surface.
//
// Raw log entries are over-fragmented the way real logs are (~98 entries
// for 56 activities) so that the grouping stage has real work to do.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vector.h"
#include "scenarios/world.h"
#include "validation/ground_truth.h"

namespace fenrir::scenarios {

struct ValidationConfig {
  std::size_t vp_count = 900;
  core::TimePoint cadence = 8 * core::kMinute;
  std::size_t weeks = 6;

  std::size_t drain_groups = 17;
  std::size_t te_groups = 2;
  std::size_t internal_groups = 37;       // 8 of these overlap third-party
  std::size_t internal_overlapping = 8;
  std::size_t third_party_free = 5;       // produce unmatched detections

  std::uint64_t seed = 0x7ab1e4;
};

struct ValidationScenario {
  core::Dataset dataset;
  std::vector<validation::LogEntry> log_entries;  // raw, ungrouped
  /// Times when third-party flips were applied/reverted (for analysis).
  std::vector<core::TimePoint> third_party_times;
  /// How many third-party flips the topology search actually found.
  std::size_t third_party_events = 0;
};

ValidationScenario make_validation(const ValidationConfig& config = {});

}  // namespace fenrir::scenarios
