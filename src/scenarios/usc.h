// fenrir::scenarios — the multi-homed enterprise (paper §4.1, Figures
// 2, 7, 8).
//
// An enterprise ("the university") in Los Angeles is multi-homed:
//
//   before 2025-01-16:  transit via ARN-A (a regional academic network,
//                       full-table provider) plus settlement-free peering
//                       with ANN (a national academic network whose
//                       customer cone covers part of the Internet) — so
//                       hop-3 catchments are almost entirely ARN-A / ANN;
//   at 2025-01-16:      a border reconfiguration drops both academic
//                       connections and brings up LosNettos (regional
//                       peer), HE (large peering cone) and NTT (full-table
//                       provider) — hop-3 catchments change almost
//                       completely, the paper's "at most 90% of
//                       catchments changed".
//
// Each observation is a scamper-style traceroute sweep to every /24; the
// dataset's catchment labels are the AS names seen at the focus hop.
// Sankey paths at hops 1–4 are exported for the before/after flow
// diagrams (Figures 7/8).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/vector.h"
#include "scenarios/world.h"

namespace fenrir::scenarios {

struct UscConfig {
  core::TimePoint cadence = 2 * core::kDay;
  int focus_hop = 3;
  /// Destination /24 count (sampled from the topology's announced blocks).
  std::size_t max_destinations = 6000;
  /// False models the paper's second enterprise: "we have also observed a
  /// second enterprise for 10 months, but thus far, we have not seen
  /// significant routing changes" — same pipeline, no reconfiguration.
  bool include_change = true;
  std::uint64_t seed = 0x05cULL;
};

struct UscScenario {
  core::Dataset dataset;  // 2024-08-01 .. 2025-04-01, hop-3 catchments
  core::TimePoint change_time = 0;  // 2025-01-16
  std::size_t change_index = 0;     // series index of the change

  /// Hop-label sequences (hops 1..4) per destination for the Sankey
  /// snapshots of 2025-01-14 (before) and 2025-01-20 (after). When the
  /// change is disabled both snapshots hold the stable topology.
  std::vector<std::vector<std::string>> sankey_before;
  std::vector<std::vector<std::string>> sankey_after;

  /// Full forward AS paths per destination /24 before and after the
  /// change — the input to path-latency analysis (measure/trinocular.h).
  std::unordered_map<std::uint32_t, std::vector<bgp::AsIndex>> paths_before;
  std::unordered_map<std::uint32_t, std::vector<bgp::AsIndex>> paths_after;

  /// Trinocular-style path RTTs per dataset network (ms; -1 = no
  /// measurement), one round before and one after the change — the
  /// operator's "did the reconfiguration change latency?" data (§2.8).
  std::vector<double> rtt_before;
  std::vector<double> rtt_after;

  /// Upstream AS names in play (for reports).
  std::vector<std::string> upstream_names;
};

UscScenario make_usc(const UscConfig& config = {});

}  // namespace fenrir::scenarios
