// fenrir::scenarios — G-Root (paper Figure 1 and Table 3).
//
// An anycast root-DNS service with six sites (CMH, NAP, STR, NRT, SAT,
// HNL) observed by RIPE-Atlas-style VPs. The timeline reproduces the
// paper's case study:
//
//   2020-03-03 00:00  STR drains; its users shift to NAP     (maintenance)
//   2020-03-03 04:30  STR restored
//   2020-03-05 00:00  the same drain mode recurs for 4.5 h
//   2020-03-07 12:00  STR drains again and stays down
//   2020-03-06 .. -08 a third-party local-pref change moves a smaller
//                     group of users from CMH to SAT
//
// The Table 3 companion is a three-observation series at 4-minute spacing
// (2024-03-04 21:56 / 22:00 / 22:04) capturing a drain mid-convergence:
// at 22:00 part of STR's catchment has moved to NAP, part still answers
// at STR, and part blackholes (err) until convergence completes at 22:04.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vector.h"
#include "scenarios/world.h"

namespace fenrir::scenarios {

struct GrootConfig {
  std::size_t vp_count = 2500;
  /// Observation cadence for the Figure 1 series. The paper's Atlas data
  /// is 4-minute; the default here is 30 minutes, which preserves every
  /// multi-hour event while keeping the all-pairs matrix small. Set to
  /// 4 * core::kMinute for paper cadence.
  core::TimePoint cadence = 30 * core::kMinute;
  std::uint64_t seed = 0x9007;
};

struct GrootScenario {
  std::vector<std::string> site_names;  // service site order
  core::Dataset figure1;     // 2020-03-01 .. 2020-03-09
  core::Dataset transition;  // the three Table 3 observations
  /// Series indices in figure1 where timeline events take effect
  /// (drains, restores, the third-party shift), for validation in tests.
  std::vector<std::size_t> event_indices;
  bool third_party_flip_found = false;

  /// Address-count weighting inputs (paper §2.5): announced /24 blocks
  /// represented by each VP / dataset network. Feed through
  /// core::address_weights to weight the analysis by address space
  /// instead of by observer count.
  std::vector<std::uint32_t> vp_represented_blocks;
};

GrootScenario make_groot(const GrootConfig& config = {});

}  // namespace fenrir::scenarios
