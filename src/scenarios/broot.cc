#include "scenarios/broot.h"

#include <algorithm>
#include <functional>

#include "measure/verfploeter.h"
#include "netbase/hitlist.h"
#include "netbase/ipv4.h"

namespace fenrir::scenarios {

namespace {

constexpr std::uint32_t kLax = 0;
constexpr std::uint32_t kMia = 1;
constexpr std::uint32_t kAri = 2;
constexpr std::uint32_t kSin = 3;
constexpr std::uint32_t kIad = 4;
constexpr std::uint32_t kAms = 5;
constexpr std::uint32_t kScl = 6;

struct TimelineAction {
  core::TimePoint time;
  std::function<void()> apply;
};

}  // namespace

BrootScenario make_broot(const BrootConfig& config) {
  BrootScenario out;
  out.site_names = {"LAX", "MIA", "ARI", "SIN", "IAD", "AMS", "SCL"};
  out.site_coords = {geo::city::LAX, geo::city::MIA, geo::city::ARI,
                     geo::city::SIN, geo::city::IAD, geo::city::AMS,
                     geo::city::SCL};

  WorldConfig wc;
  wc.topo.seed = config.seed;
  wc.topo.stub_count = config.topo_stubs;
  World world = make_world(wc);
  bgp::AsGraph& graph = world.topo.graph;
  rng::Rng rng(config.seed);

  // Root-DNS sites connect at major exchange points: each site gets a
  // fresh origin AS at its metro, homed to the nearest still-unused
  // tier-1 — which, with hot-potato peer preferences, yields the
  // regionally coherent catchments root operators actually see.
  bgp::AnycastService service(*netbase::Prefix::parse("199.9.14.0/24"));
  std::vector<bgp::AsIndex> origin_as(out.site_names.size(), bgp::kNoAs);
  {
    std::vector<bgp::AsIndex> used_t1;
    for (std::uint32_t s = 0; s < out.site_names.size(); ++s) {
      if (s == kAri) continue;  // ARI is homed specially below
      bgp::AsIndex host = bgp::kNoAs;
      for (const bgp::AsIndex t1 : nearest_ases(
               world.topo, out.site_coords[s], bgp::AsTier::kTier1, 12)) {
        if (std::find(used_t1.begin(), used_t1.end(), t1) == used_t1.end()) {
          host = t1;
          used_t1.push_back(t1);
          break;
        }
      }
      const bgp::AsIndex origin = graph.add_as(
          netbase::Asn(64520 + s), bgp::AsTier::kStub, out.site_coords[s],
          "broot-" + out.site_names[s]);
      graph.add_link(host, origin, bgp::Relation::kCustomer);
      origin_as[s] = origin;
    }
  }
  // ARI exhibits the paper's anycast-polarization pathology ("latency
  // over 200 ms due to a few North American and European networks being
  // routed to it"): the Chilean site is announced through a EUROPEAN
  // transit, so its catchment is a slice of Europe while its machines sit
  // in Arica. We model this literally: a fresh origin stub located at
  // ARI, homed to the tier-2 nearest Amsterdam.
  {
    const bgp::AsIndex eu_transit =
        nearest_as(world.topo, geo::city::AMS, bgp::AsTier::kTier2);
    const bgp::AsIndex ari_origin = graph.add_as(
        netbase::Asn(64513), bgp::AsTier::kStub, geo::city::ARI,
        "ari-origin");
    graph.add_link(eu_transit, ari_origin, bgp::Relation::kCustomer);
    origin_as[kAri] = ari_origin;
  }

  // Regional fallback announcement points for the TE events: moving a
  // site's announcement from its tier-1 exchange down behind a regional
  // transit shrinks its catchment to that transit's cone — the mechanism
  // behind the paper's "70% of clients that used to go to LAX were routed
  // to AMS, IAD and SIN".
  const auto make_regional = [&](std::uint32_t site) {
    const bgp::AsIndex t2 =
        nearest_as(world.topo, out.site_coords[site], bgp::AsTier::kTier2);
    const bgp::AsIndex stub = graph.add_as(
        netbase::Asn(64540 + site), bgp::AsTier::kStub,
        out.site_coords[site], "broot-" + out.site_names[site] + "-regional");
    graph.add_link(t2, stub, bgp::Relation::kCustomer);
    return stub;
  };
  const bgp::AsIndex lax_regional = make_regional(kLax);
  const bgp::AsIndex sin_regional = make_regional(kSin);
  const bgp::AsIndex iad_regional = make_regional(kIad);
  const bgp::AsIndex ams_regional = make_regional(kAms);

  // Initial deployment: LAX, MIA, ARI. ARI prepends (a small site) and
  // MIA slightly; LAX takes the bulk — the paper's mode (i) shape.
  service.add_site(kLax, origin_as[kLax], 0);
  service.add_site(kMia, origin_as[kMia], 1);
  service.add_site(kAri, origin_as[kAri], 2);

  // Probe over every announced /24.
  netbase::Hitlist hitlist(world.topo.blocks,
                           rng::mix(config.seed, 0x417ULL));
  measure::VerfploeterConfig vc;
  vc.seed = rng::mix(config.seed, 0xfe27ULL);
  const measure::VerfploeterProbe probe(&hitlist, vc);

  out.dataset.name = "B-Root/Verfploeter";
  for (std::size_t i = 0; i < hitlist.size(); ++i) {
    out.dataset.networks.intern(hitlist.block(i));
  }
  const std::vector<core::SiteId> site_to_core =
      make_site_mapping(out.dataset.sites, out.site_names);

  // Small third-party changes for the (iv.a)..(iv.d) boundaries: transit
  // cones between pairs of long-lived sites (all present 2021-2024), each
  // carrying a few percent of the networks.
  std::vector<PolicyFlip> small_flips;
  {
    // Candidate site pairs among the long-lived sites, most-distinct
    // first; verified against a representative full deployment so a cone
    // is only kept if its flip genuinely reroutes.
    const std::uint32_t stable[] = {kLax, kMia, kSin, kIad, kAms};
    std::vector<bgp::Origin> verify;
    for (const std::uint32_t s : stable) {
      verify.push_back(bgp::Origin{origin_as[s], s, 0});
    }
    std::uint32_t asn = 64800;
    for (const std::uint32_t sa : stable) {
      for (const std::uint32_t sb : stable) {
        if (sa == sb || small_flips.size() >= 4) continue;
        if (const auto cone =
                add_shiftable_cone(world, origin_as[sa], origin_as[sb], 0.04,
                                   asn++, rng, &verify)) {
          small_flips.push_back(cone->flip);
        }
      }
    }
  }
  out.third_party_flips_found = small_flips.size();

  // --- Timeline. ---
  std::vector<TimelineAction> actions;
  const auto at = [&](int y, int m, int d, std::function<void()> fn) {
    actions.push_back(TimelineAction{core::from_date(y, m, d), std::move(fn)});
  };

  // mode (ii): three new sites.
  at(2020, 2, 1, [&] {
    service.add_site(kSin, origin_as[kSin], 1);
    service.add_site(kIad, origin_as[kIad], 1);
    service.add_site(kAms, origin_as[kAms], 1);
  });
  // mode (iii): TE moves LAX's announcement behind a regional transit —
  // most of its global catchment shifts to the new sites (the paper's
  // "around 70% [of] clients [that] used to go LAX were routed to AMS,
  // IAD and SIN").
  at(2020, 4, 1, [&] {
    service.move_site(kLax, lax_regional);
    service.set_scoped(kLax, true);  // regional announcement, NO_EXPORT
    service.set_prepend(kSin, 0);
    service.set_prepend(kIad, 0);
    service.set_prepend(kAms, 0);
  });
  // mode (iv): a further rebalance (SIN regionalized the same way).
  at(2021, 3, 1, [&] {
    service.move_site(kSin, sin_regional);
    service.set_scoped(kSin, true);
    service.set_prepend(kMia, 0);
  });
  // (iv.a)..(iv.d): third-party changes, persistent.
  {
    const int dates[][3] = {{2022, 9, 16}, {2023, 2, 12}, {2023, 4, 13}};
    for (std::size_t i = 0; i < small_flips.size() && i < 3; ++i) {
      const PolicyFlip f = small_flips[i];
      at(dates[i][0], dates[i][1], dates[i][2],
         [&graph, f] { f.apply(graph); });
    }
  }
  // ARI shuts down; SCL experiments; SCL resumes.
  at(2023, 3, 6, [&] { service.remove_site(kAri); });
  at(2023, 5, 1, [&] { service.add_site(kScl, origin_as[kScl], 1); });
  at(2023, 5, 8, [&] { service.remove_site(kScl); });
  at(2023, 5, 24, [&] { service.add_site(kScl, origin_as[kScl], 1); });
  at(2023, 5, 31, [&] { service.remove_site(kScl); });
  at(2023, 6, 29, [&] { service.add_site(kScl, origin_as[kScl], 1); });
  // mode (v): the LAX regionalization is reverted after the
  // re-optimization — LAX dominates again, which is what makes (v)
  // resemble (i).
  // The re-optimization restores LAX's global announcement and
  // consolidates IAD/AMS behind regional transits — which is exactly why
  // (v) looks like (i): LAX serves most clients in both.
  at(2023, 12, 1, [&] {
    service.move_site(kLax, origin_as[kLax]);
    service.set_scoped(kLax, false);
    service.move_site(kIad, iad_regional);
    service.set_scoped(kIad, true);
    service.move_site(kAms, ams_regional);
    service.set_scoped(kAms, true);
  });
  // mode (vi): another large shift late in 2024 — LAX regionalized
  // again, SIN restored, plus a third-party change.
  at(2024, 10, 1, [&] {
    service.move_site(kLax, lax_regional);
    service.set_scoped(kLax, true);
    service.move_site(kSin, origin_as[kSin]);
    service.set_scoped(kSin, false);
    if (small_flips.size() >= 4) small_flips[3].apply(graph);
  });

  std::sort(actions.begin(), actions.end(),
            [](const TimelineAction& a, const TimelineAction& b) {
              return a.time < b.time;
            });

  // --- Sweep: weekly observations, with the collection outage. ---
  const core::TimePoint t0 = core::from_date(2019, 9, 1);
  const core::TimePoint t_end = core::from_date(2024, 12, 31);
  const core::TimePoint outage_start = core::from_date(2023, 7, 5);
  const core::TimePoint outage_end = core::from_date(2023, 12, 1);
  const core::TimePoint fig4_start = core::from_date(2022, 1, 1);
  const core::TimePoint fig4_end = core::from_date(2024, 1, 1);

  // Block coordinates for the latency model: the originating stub's
  // location with a little spread.
  out.network_coords.resize(hitlist.size());
  for (std::size_t i = 0; i < hitlist.size(); ++i) {
    const auto as = graph.origin_of(hitlist.target(i));
    geo::Coord c = as ? graph.node(*as).location : geo::Coord{0, 0};
    rng::Rng jitter(rng::mix(config.seed, 0x10cULL, hitlist.block(i)));
    c.lat_deg += jitter.uniform_real(-1.0, 1.0);
    c.lon_deg += jitter.uniform_real(-1.0, 1.0);
    out.network_coords[i] = c;
  }
  const std::vector<geo::Coord>& block_coords = out.network_coords;
  const geo::LatencyModel latency_model;

  std::size_t next_action = 0;
  bool rtt_started = false;
  for (core::TimePoint t = t0; t < t_end; t += config.cadence) {
    bool fired = false;
    while (next_action < actions.size() && actions[next_action].time <= t) {
      actions[next_action].apply();
      ++next_action;
      fired = true;
    }
    if (fired) out.event_indices.push_back(out.dataset.series.size());

    core::RoutingVector v;
    v.time = t;
    if (t >= outage_start && t < outage_end) {
      v.valid = false;
      v.assignment.assign(hitlist.size(), core::kUnknownSite);
      out.dataset.series.push_back(std::move(v));
      if (t >= fig4_start && t < fig4_end && rtt_started) {
        out.rtt.emplace_back(hitlist.size(), -1.0);
      }
      continue;
    }
    const bgp::RoutingTable& routing =
        world.cache.get(graph, service.active_origins());
    v.assignment = probe.measure(t, graph, routing, site_to_core);

    if (t >= fig4_start && t < fig4_end) {
      if (!rtt_started) {
        out.rtt_first_index = out.dataset.series.size();
        rtt_started = true;
      }
      std::vector<double> rtt(hitlist.size(), -1.0);
      for (std::size_t i = 0; i < hitlist.size(); ++i) {
        const core::SiteId s = v.assignment[i];
        if (s == core::kUnknownSite || s == core::kErrorSite ||
            s == core::kOtherSite) {
          continue;
        }
        // Map dataset SiteId back to the service site's coordinates.
        for (std::uint32_t svc = 0; svc < site_to_core.size(); ++svc) {
          if (site_to_core[svc] == s) {
            rng::Rng jr(rng::mix(config.seed,
                                 rng::mix(0x277ULL, i,
                                          static_cast<std::uint64_t>(t))));
            rtt[i] = latency_model.rtt_ms_jittered(
                block_coords[i], out.site_coords[svc], jr);
            break;
          }
        }
      }
      out.rtt.push_back(std::move(rtt));
    }
    out.dataset.series.push_back(std::move(v));
  }
  out.dataset.check_consistent();
  return out;
}

}  // namespace fenrir::scenarios
