// fenrir::scenarios — top-website front-end mapping (paper §4.3,
// Figures 5 and 6).
//
// Both scenarios sweep EDNS Client-Subnet queries over a prefix
// population drawn from the topology, against a simulated authoritative:
//
//   * Google: ChurnPolicy over two front-end generations. Three
//     observation days starting 2013-05-26 run against the 2013 fleet;
//     sixty days starting 2024-02-21 against the 2024 fleet. Weekly
//     remap epochs give the paper's ~0.79 within-week / ~0.25
//     across-week Φ structure, and the generation swap makes the 2013
//     rows dissimilar to everything modern.
//
//   * Wikipedia: GeoNearestPolicy over seven sites (eqiad, codfw, ulsfo,
//     eqsin, esams, drmrs, magru), daily 2025-03-15 .. 2025-04-26.
//     codfw drains 2025-03-19 .. 2025-03-26; it returns at reduced
//     preference (distance penalty), so only its closest clients come
//     back — the paper's "only 30% of codfw's original clients return".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vector.h"
#include "scenarios/world.h"

namespace fenrir::scenarios {

struct GoogleConfig {
  std::size_t prefix_count = 6000;
  std::size_t clusters_2013 = 24;
  std::size_t clusters_2024 = 64;
  std::size_t candidate_pool = 4;
  double daily_churn = 0.10;
  std::uint64_t seed = 0x900913;
};

struct GoogleScenario {
  core::Dataset dataset;  // 3 days of 2013 + 60 days of 2024
  std::size_t obs_2013 = 0;  // leading observations from 2013
};

GoogleScenario make_google(const GoogleConfig& config = {});

struct WikipediaConfig {
  std::size_t prefix_count = 6000;
  double flap_fraction = 0.06;
  /// Distance multiplier for codfw after it returns from the drain.
  double return_penalty = 1.35;
  std::uint64_t seed = 0x31c1;
};

struct WikipediaScenario {
  std::vector<std::string> site_names;
  core::Dataset dataset;  // daily 2025-03-15 .. 2025-04-26
  core::TimePoint drain_start = 0;  // 2025-03-19
  core::TimePoint drain_end = 0;    // 2025-03-26
};

WikipediaScenario make_wikipedia(const WikipediaConfig& config = {});

}  // namespace fenrir::scenarios
