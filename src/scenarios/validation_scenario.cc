#include "scenarios/validation_scenario.h"

#include <algorithm>
#include <functional>

#include "measure/atlas.h"
#include "netbase/ipv4.h"

namespace fenrir::scenarios {

namespace {

const char* kOperators[] = {"alice", "bob", "carol", "dave"};

struct TimelineAction {
  core::TimePoint time;
  std::function<void()> apply;
};

}  // namespace

ValidationScenario make_validation(const ValidationConfig& config) {
  ValidationScenario out;

  WorldConfig wc;
  wc.topo.seed = config.seed;
  World world = make_world(wc);
  bgp::AsGraph& graph = world.topo.graph;
  rng::Rng rng(config.seed);

  // --- Service: eight sites at major metros. ---
  const std::vector<std::string> site_names = {"LAX", "IAD", "AMS", "SIN",
                                               "NRT", "MIA", "SCL", "FRA"};
  const std::vector<geo::Coord> site_coords = {
      geo::city::LAX, geo::city::IAD, geo::city::AMS, geo::city::SIN,
      geo::city::NRT, geo::city::MIA, geo::city::SCL, {50.1, 8.7}};
  bgp::AnycastService service(*netbase::Prefix::parse("192.0.32.0/24"));
  std::vector<bgp::AsIndex> origin_of_site(site_names.size(), bgp::kNoAs);
  {
    std::vector<bgp::AsIndex> used;
    for (std::uint32_t s = 0; s < site_names.size(); ++s) {
      for (const bgp::AsIndex as :
           nearest_ases(world.topo, site_coords[s], bgp::AsTier::kStub, 10)) {
        if (std::find(used.begin(), used.end(), as) == used.end()) {
          service.add_site(s, as);
          origin_of_site[s] = as;
          used.push_back(as);
          break;
        }
      }
    }
  }

  // Third-party machinery: transit cones whose preference flips move a
  // guaranteed slice of networks between two sites, unknown to the
  // operator's log. Built before the probe so VPs can land inside them.
  const std::size_t flips_needed =
      config.third_party_free + config.internal_overlapping / 2;
  std::vector<PolicyFlip> flips;
  {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (std::uint32_t a = 0; a < site_names.size(); ++a) {
      for (std::uint32_t b = 0; b < site_names.size(); ++b) {
        if (a != b) pairs.emplace_back(a, b);
      }
    }
    rng.shuffle(pairs);
    const std::vector<bgp::Origin> verify = service.active_origins();
    std::uint32_t asn = 64700;
    for (const auto& [sa, sb] : pairs) {
      if (flips.size() >= flips_needed) break;
      if (const auto cone =
              add_shiftable_cone(world, origin_of_site[sa],
                                 origin_of_site[sb], 0.045, asn++, rng,
                                 &verify)) {
        flips.push_back(cone->flip);
      }
    }
  }
  out.third_party_events = flips.size();

  // --- Probe, server, identity mapping. ---
  measure::AtlasConfig ac;
  ac.vp_count = config.vp_count;
  // Low per-query loss so detector baselines stay tight: with heavy loss,
  // rare binomial coincidences across ~5000 observations would masquerade
  // as events (real Atlas analysis smooths the same way by aggregating
  // retries).
  ac.query_loss = 0.004;
  ac.seed = rng::mix(config.seed, 0xa71a5ULL);
  const measure::AtlasProbe probe(graph, ac);

  std::vector<std::string> tokens;
  for (const auto& name : site_names) {
    std::string t = name;
    for (char& c : t) c = static_cast<char>(std::tolower(c));
    tokens.push_back(t);
  }
  const measure::AnycastDnsServer server(tokens, config.seed);
  measure::ServerIdentityMap identity_map;
  for (std::uint32_t s = 0; s < tokens.size(); ++s) {
    identity_map.add(tokens[s], s);
  }

  out.dataset.name = "B-Root/Atlas validation";
  for (std::uint32_t v = 0; v < probe.vantage_points().size(); ++v) {
    out.dataset.networks.intern(v);
  }
  const std::vector<core::SiteId> site_to_core =
      make_site_mapping(out.dataset.sites, site_names);

  // --- Which sites can be drained detectably? ---
  const bgp::RoutingTable& baseline =
      world.cache.get(graph, service.active_origins());
  std::vector<std::uint32_t> drainable;
  {
    std::vector<std::size_t> share(site_names.size(), 0);
    for (const bgp::AsIndex as : world.topo.stubs) {
      if (const auto c = baseline.catchment(as)) ++share[*c];
    }
    for (std::uint32_t s = 0; s < site_names.size(); ++s) {
      const double frac = static_cast<double>(share[s]) /
                          static_cast<double>(world.topo.stubs.size());
      if (frac >= 0.04 && frac <= 0.6) drainable.push_back(s);
    }
  }
  if (drainable.empty()) drainable.push_back(0);

  // --- Traffic-engineering knobs: (site, prepend) with a visible but
  // bounded shift. ---
  struct TeKnob {
    std::uint32_t site;
    std::uint8_t prepend;
  };
  std::vector<TeKnob> te_knobs;
  for (const std::uint32_t s : drainable) {
    if (te_knobs.size() >= config.te_groups) break;
    for (const std::uint8_t p : {std::uint8_t{2}, std::uint8_t{4},
                                 std::uint8_t{6}}) {
      service.set_prepend(s, p);
      const bgp::RoutingTable& after =
          world.cache.get(graph, service.active_origins());
      const double shift = catchment_shift_fraction(world.topo, baseline, after);
      service.set_prepend(s, 0);
      if (shift >= 0.04 && shift <= 0.4) {
        te_knobs.push_back(TeKnob{s, p});
        break;
      }
    }
  }

  // --- Schedule: 4-hour slots over the observation window, shuffled. ---
  const core::TimePoint t0 = core::from_date(2023, 3, 1);
  const core::TimePoint t_end =
      t0 + static_cast<core::TimePoint>(config.weeks) * 7 * core::kDay;
  std::vector<core::TimePoint> slots;
  for (core::TimePoint t = t0 + 8 * core::kHour; t + 2 * core::kHour < t_end;
       t += 4 * core::kHour) {
    slots.push_back(t);
  }
  rng.shuffle(slots);
  std::size_t next_slot = 0;
  const auto take_slot = [&]() -> core::TimePoint {
    if (next_slot >= slots.size()) {
      throw std::runtime_error("validation scenario: out of time slots");
    }
    return slots[next_slot++];
  };

  std::vector<TimelineAction> actions;
  std::size_t op_cursor = 0;
  const auto next_op = [&]() -> std::string {
    return kOperators[op_cursor++ % std::size(kOperators)];
  };

  // Drain groups: drain at t, restore one cadence later; 3 log entries.
  // Sites used for traffic engineering are excluded: the persistent
  // prepend empties their catchment, which would make a later drain
  // externally invisible and (correctly but confusingly) undetectable.
  std::vector<std::uint32_t> drain_sites;
  for (const std::uint32_t s : drainable) {
    bool is_te = false;
    for (const TeKnob& k : te_knobs) is_te |= (k.site == s);
    if (!is_te) drain_sites.push_back(s);
  }
  if (drain_sites.empty()) drain_sites.push_back(drainable.front());
  for (std::size_t i = 0; i < config.drain_groups; ++i) {
    const core::TimePoint t = take_slot();
    const std::uint32_t site = drain_sites[i % drain_sites.size()];
    const std::string op = next_op();
    actions.push_back(
        {t, [&service, site] { service.set_drained(site, true); }});
    actions.push_back({t + config.cadence,
                       [&service, site] { service.set_drained(site, false); }});
    out.log_entries.push_back({t, op, validation::MaintenanceKind::kSiteDrain,
                               "drain " + site_names[site]});
    out.log_entries.push_back({t + 3 * core::kMinute, op,
                               validation::MaintenanceKind::kInternal,
                               "swap router " + site_names[site]});
    out.log_entries.push_back({t + config.cadence, op,
                               validation::MaintenanceKind::kSiteDrain,
                               "restore " + site_names[site]});
  }

  // TE groups: persistent prepend changes; 2 log entries each.
  for (std::size_t i = 0; i < te_knobs.size(); ++i) {
    const core::TimePoint t = take_slot();
    const TeKnob knob = te_knobs[i];
    const std::string op = next_op();
    actions.push_back({t, [&service, knob] {
                         service.set_prepend(knob.site, knob.prepend);
                       }});
    out.log_entries.push_back({t, op,
                               validation::MaintenanceKind::kTrafficEngineering,
                               "prepend " + site_names[knob.site]});
    out.log_entries.push_back({t + 2 * core::kMinute, op,
                               validation::MaintenanceKind::kInternal,
                               "update monitoring"});
  }

  // Third-party flips. The first `internal_overlapping/2` of them get
  // internal-only log groups scheduled on both their dips (the paper's
  // "FP?" rows); the rest are entirely unlogged.
  const core::TimePoint flip_duration = 64 * core::kMinute;
  std::size_t overlap_budget = config.internal_overlapping;
  std::size_t internal_scheduled = 0;
  for (std::size_t i = 0; i < flips.size(); ++i) {
    const core::TimePoint t = take_slot();
    const PolicyFlip flip = flips[i];
    actions.push_back({t, [&graph, flip] { flip.apply(graph); }});
    actions.push_back(
        {t + flip_duration, [&graph, flip] { flip.revert(graph); }});
    out.third_party_times.push_back(t);
    out.third_party_times.push_back(t + flip_duration);
    if (i < config.internal_overlapping / 2 && overlap_budget >= 2) {
      // Two coincident internal-only groups by different operators.
      out.log_entries.push_back({t + core::kMinute, next_op(),
                                 validation::MaintenanceKind::kInternal,
                                 "replace PSU"});
      out.log_entries.push_back({t + flip_duration + core::kMinute, next_op(),
                                 validation::MaintenanceKind::kInternal,
                                 "rotate certs"});
      overlap_budget -= 2;
      internal_scheduled += 2;
    }
  }

  // Remaining internal-only groups: quiet maintenance, 1-2 entries.
  for (; internal_scheduled < config.internal_groups; ++internal_scheduled) {
    const core::TimePoint t = take_slot();
    const std::string op = next_op();
    out.log_entries.push_back(
        {t, op, validation::MaintenanceKind::kInternal, "patch host"});
    if (internal_scheduled % 2 == 0) {
      out.log_entries.push_back({t + 4 * core::kMinute, op,
                                 validation::MaintenanceKind::kInternal,
                                 "reboot host"});
    }
  }

  // --- Sweep. ---
  std::sort(actions.begin(), actions.end(),
            [](const TimelineAction& a, const TimelineAction& b) {
              return a.time < b.time;
            });
  std::size_t next_action = 0;
  for (core::TimePoint t = t0; t < t_end; t += config.cadence) {
    while (next_action < actions.size() && actions[next_action].time <= t) {
      actions[next_action].apply();
      ++next_action;
    }
    const bgp::RoutingTable& routing =
        world.cache.get(graph, service.active_origins());
    core::RoutingVector v;
    v.time = t;
    v.assignment =
        probe.measure(t, routing, server, identity_map, site_to_core);
    out.dataset.series.push_back(std::move(v));
  }
  out.dataset.check_consistent();
  return out;
}

}  // namespace fenrir::scenarios
