#include "scenarios/websites.h"

#include <algorithm>
#include <memory>

#include "measure/ednscs.h"
#include "netbase/ipv4.h"

namespace fenrir::scenarios {

namespace {

/// Prefix population and a locator resolving prefixes to the originating
/// stub's coordinates.
struct PrefixUniverse {
  std::vector<netbase::Prefix> prefixes;
  measure::GeoNearestPolicy::Locator locator;
};

PrefixUniverse finish_universe(const World& world,
                               std::vector<std::uint32_t> blocks) {
  std::sort(blocks.begin(), blocks.end());
  PrefixUniverse out;
  out.prefixes.reserve(blocks.size());
  for (const std::uint32_t b : blocks) {
    out.prefixes.push_back(netbase::block24_from_index(b));
  }
  const bgp::AsGraph* graph = &world.topo.graph;
  out.locator = [graph](const netbase::Prefix& p)
      -> std::optional<geo::Coord> {
    const auto as = graph->origin_of(p.base());
    if (!as) return std::nullopt;
    return graph->node(*as).location;
  };
  return out;
}

PrefixUniverse make_prefixes(const World& world, std::size_t count,
                             rng::Rng& rng) {
  std::vector<std::uint32_t> blocks = world.topo.blocks;
  if (blocks.size() > count) {
    rng.shuffle(blocks);
    blocks.resize(count);
  }
  return finish_universe(world, std::move(blocks));
}

/// Prefix population oversampled near a point — the paper weights
/// observations by the users they represent (§2.5); a site with a large
/// user base nearby correspondingly holds a large catchment share.
PrefixUniverse make_prefixes_near(const World& world, std::size_t count,
                                  const geo::Coord& where, double near_share,
                                  double radius_km, rng::Rng& rng) {
  std::vector<std::uint32_t> near, elsewhere;
  for (const std::uint32_t b : world.topo.blocks) {
    const auto as =
        world.topo.graph.origin_of(netbase::block24_from_index(b).base());
    const bool close =
        as && geo::haversine_km(world.topo.graph.node(*as).location, where) <=
                  radius_km;
    (close ? near : elsewhere).push_back(b);
  }
  rng.shuffle(near);
  rng.shuffle(elsewhere);
  std::vector<std::uint32_t> blocks;
  const std::size_t want_near = std::min(
      near.size(),
      static_cast<std::size_t>(near_share * static_cast<double>(count)));
  blocks.insert(blocks.end(), near.begin(),
                near.begin() + static_cast<std::ptrdiff_t>(want_near));
  for (const std::uint32_t b : elsewhere) {
    if (blocks.size() >= count) break;
    blocks.push_back(b);
  }
  return finish_universe(world, std::move(blocks));
}

/// Front-end clusters spread over the stub population's locations.
std::vector<measure::FrontEnd> make_clusters(const World& world,
                                             std::size_t count,
                                             std::uint32_t first_site,
                                             std::uint32_t generation,
                                             std::uint32_t addr_base,
                                             rng::Rng& rng) {
  std::vector<measure::FrontEnd> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const bgp::AsIndex host =
        world.topo.stubs[rng.uniform(world.topo.stubs.size())];
    measure::FrontEnd fe;
    fe.site = first_site + static_cast<std::uint32_t>(i);
    fe.addr = netbase::Ipv4Addr(addr_base + static_cast<std::uint32_t>(i));
    fe.location = world.topo.graph.node(host).location;
    fe.generation = generation;
    out.push_back(fe);
  }
  return out;
}

}  // namespace

GoogleScenario make_google(const GoogleConfig& config) {
  GoogleScenario out;

  WorldConfig wc;
  wc.topo.seed = config.seed;
  World world = make_world(wc);
  rng::Rng rng(config.seed);

  PrefixUniverse universe = make_prefixes(world, config.prefix_count, rng);

  // Two fleets: the 2013 clusters and the (disjoint) 2024 clusters.
  std::vector<measure::FrontEnd> fleet = make_clusters(
      world, config.clusters_2013, 0, 0, netbase::Ipv4Addr(74, 125, 0, 10).value(), rng);
  {
    auto fleet24 = make_clusters(
        world, config.clusters_2024,
        static_cast<std::uint32_t>(config.clusters_2013), 1,
        netbase::Ipv4Addr(142, 250, 0, 10).value(), rng);
    fleet.insert(fleet.end(), fleet24.begin(), fleet24.end());
  }

  measure::ChurnPolicy::Config pc;
  pc.candidate_pool = config.candidate_pool;
  pc.daily_churn = config.daily_churn;
  pc.generation_starts = {core::from_date(2014, 1, 1)};
  pc.seed = rng::mix(config.seed, 0x6006ULL);
  auto policy =
      std::make_unique<measure::ChurnPolicy>(universe.locator, pc);

  const measure::WebsiteService service("www.google.com", fleet,
                                        std::move(policy));

  measure::EdnsCsConfig ec;
  ec.seed = rng::mix(config.seed, 0xedca5ULL);
  const measure::EdnsCsProbe probe(universe.prefixes, ec);

  out.dataset.name = "Google/EDNS-CS";
  for (const auto& p : universe.prefixes) {
    out.dataset.networks.intern(
        (std::uint64_t{p.base().value()} << 8) | std::uint64_t(p.length()));
  }
  // Site order must match service-site indices 0..N-1.
  std::vector<std::string> ordered(fleet.size());
  for (const auto& fe : fleet) {
    ordered.at(fe.site) = (fe.generation == 0 ? "g13-" : "g24-") +
                          std::to_string(fe.site);
  }
  const std::vector<core::SiteId> site_to_core =
      make_site_mapping(out.dataset.sites, ordered);

  const auto sweep = [&](core::TimePoint from, std::size_t days) {
    for (std::size_t d = 0; d < days; ++d) {
      const core::TimePoint t = from + static_cast<core::TimePoint>(d) *
                                           core::kDay;
      core::RoutingVector v;
      v.time = t;
      v.assignment = probe.measure(t, service, site_to_core);
      out.dataset.series.push_back(std::move(v));
    }
  };
  sweep(core::from_date(2013, 5, 26), 3);
  out.obs_2013 = out.dataset.series.size();
  sweep(core::from_date(2024, 2, 21), 60);
  out.dataset.check_consistent();
  return out;
}

WikipediaScenario make_wikipedia(const WikipediaConfig& config) {
  WikipediaScenario out;
  out.site_names = {"eqiad", "codfw", "ulsfo", "eqsin",
                    "esams", "drmrs", "magru"};
  const std::vector<geo::Coord> coords = {
      geo::city::EQIAD, geo::city::CODFW, geo::city::ULSFO,
      geo::city::EQSIN, geo::city::ESAMS, geo::city::DRMRS,
      geo::city::MAGRU};
  out.drain_start = core::from_date(2025, 3, 19);
  out.drain_end = core::from_date(2025, 3, 26);

  WorldConfig wc;
  wc.topo.seed = config.seed;
  World world = make_world(wc);
  rng::Rng rng(config.seed);

  // Oversample clients in codfw's service region so its catchment share
  // is in the paper's range (Figure 6a shows codfw holding a substantial
  // slice whose drain moves ~20% of networks).
  PrefixUniverse universe = make_prefixes_near(
      world, config.prefix_count, geo::city::CODFW, 0.30, 2400.0, rng);

  std::vector<measure::FrontEnd> fleet;
  for (std::uint32_t s = 0; s < out.site_names.size(); ++s) {
    measure::FrontEnd fe;
    fe.site = s;
    fe.addr = netbase::Ipv4Addr(netbase::Ipv4Addr(208, 80, 154, 224).value() + s);
    fe.location = coords[s];
    fleet.push_back(fe);
  }

  auto policy = std::make_unique<measure::GeoNearestPolicy>(
      universe.locator, config.flap_fraction,
      rng::mix(config.seed, 0xf1a9ULL));
  constexpr std::uint32_t kCodfw = 1;
  policy->add_drain_window(kCodfw, out.drain_start, out.drain_end);
  // After returning, codfw is de-preferred: only its closest clients
  // come back.
  policy->add_penalty_window(kCodfw, out.drain_end,
                             core::from_date(2026, 1, 1),
                             config.return_penalty);

  const measure::WebsiteService service("www.wikipedia.org", fleet,
                                        std::move(policy));

  measure::EdnsCsConfig ec;
  ec.seed = rng::mix(config.seed, 0xedca5ULL);
  const measure::EdnsCsProbe probe(universe.prefixes, ec);

  out.dataset.name = "Wiki/EDNS-CS";
  for (const auto& p : universe.prefixes) {
    out.dataset.networks.intern(
        (std::uint64_t{p.base().value()} << 8) | std::uint64_t(p.length()));
  }
  const std::vector<core::SiteId> site_to_core =
      make_site_mapping(out.dataset.sites, out.site_names);

  const core::TimePoint t0 = core::from_date(2025, 3, 15);
  const core::TimePoint t_end = core::from_date(2025, 4, 27);
  for (core::TimePoint t = t0; t < t_end; t += core::kDay) {
    core::RoutingVector v;
    v.time = t;
    v.assignment = probe.measure(t, service, site_to_core);
    out.dataset.series.push_back(std::move(v));
  }
  out.dataset.check_consistent();
  return out;
}

}  // namespace fenrir::scenarios
