#include "scenarios/usc.h"

#include <algorithm>
#include <unordered_map>

#include "measure/traceroute.h"
#include "measure/trinocular.h"
#include "netbase/hitlist.h"
#include "netbase/ipv4.h"

namespace fenrir::scenarios {

namespace {

/// AS-level forward paths from the enterprise to every destination AS, for
/// the current topology state.
std::unordered_map<bgp::AsIndex, std::vector<bgp::AsIndex>> compute_paths(
    const bgp::AsGraph& graph, bgp::AsIndex enterprise,
    const std::vector<bgp::AsIndex>& destinations) {
  std::unordered_map<bgp::AsIndex, std::vector<bgp::AsIndex>> out;
  out.reserve(destinations.size());
  for (const bgp::AsIndex dst : destinations) {
    const bgp::RoutingTable table =
        bgp::compute_routes(graph, {bgp::Origin{dst, 0, 0}});
    out.emplace(dst, table.as_path(enterprise));
  }
  return out;
}

}  // namespace

UscScenario make_usc(const UscConfig& config) {
  UscScenario out;
  out.change_time = core::from_date(2025, 1, 16);

  WorldConfig wc;
  wc.topo.seed = config.seed;
  World world = make_world(wc);
  bgp::AsGraph& graph = world.topo.graph;
  rng::Rng rng(config.seed);

  // --- Name the upstreams. ---
  const geo::Coord la = geo::city::LAX;
  const auto near_t2 = nearest_ases(world.topo, la, bgp::AsTier::kTier2, 3);
  const auto near_t1 = nearest_ases(world.topo, la, bgp::AsTier::kTier1, 3);
  const bgp::AsIndex arn_a = near_t2.at(0);   // regional academic (provider)
  const bgp::AsIndex losnettos = near_t2.at(1);  // regional exchange (peer)
  const bgp::AsIndex ann = near_t1.at(0);     // national academic (peer)
  const bgp::AsIndex he = near_t1.at(1);      // large peering fabric (peer)
  const bgp::AsIndex ntt = near_t1.at(2);     // commercial transit (provider)
  graph.node(arn_a).name = "ARN-A";
  graph.node(losnettos).name = "LosNettos";
  graph.node(ann).name = "ANN";
  graph.node(he).name = "HE";
  graph.node(ntt).name = "NTT";
  out.upstream_names = {"ARN-A", "ANN", "LosNettos", "HE", "NTT"};

  // --- The enterprise. ---
  const bgp::AsIndex usc =
      graph.add_as(netbase::Asn(52), bgp::AsTier::kStub, la, "USC");
  graph.add_link(arn_a, usc, bgp::Relation::kCustomer);  // provider before
  graph.add_link(usc, ann, bgp::Relation::kPeer);        // peer before
  graph.add_link(usc, he, bgp::Relation::kPeer);   // peer before AND after —
  // the persistent HE peering is why the paper's cross-change similarity
  // is [0.11, 0.48] rather than zero: part of the routing cone never moves
  graph.add_link(usc, losnettos, bgp::Relation::kPeer);  // after only
  graph.add_link(ntt, usc, bgp::Relation::kCustomer);    // after only
  graph.set_link_up(usc, losnettos, false);
  graph.set_link_up(ntt, usc, false);
  // Where the post-change peers' cones overlap, prefer the regional one.
  graph.set_local_pref_adjust(usc, losnettos, 40);

  // --- Destinations: every announced /24 (sampled down if needed). ---
  std::vector<std::uint32_t> blocks = world.topo.blocks;
  if (blocks.size() > config.max_destinations) {
    rng.shuffle(blocks);
    blocks.resize(config.max_destinations);
    std::sort(blocks.begin(), blocks.end());
  }
  std::vector<bgp::AsIndex> block_as(blocks.size());
  std::vector<bgp::AsIndex> unique_dsts;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto as =
        graph.origin_of(netbase::block24_from_index(blocks[i]).base());
    block_as[i] = as.value_or(bgp::kNoAs);
    if (as) unique_dsts.push_back(*as);
  }
  std::sort(unique_dsts.begin(), unique_dsts.end());
  unique_dsts.erase(std::unique(unique_dsts.begin(), unique_dsts.end()),
                    unique_dsts.end());

  // --- Probe (announces router infra; do this before computing paths). ---
  measure::TracerouteConfig tc;
  tc.enterprise_internal_hops = 1;
  tc.seed = rng::mix(config.seed, 0x7e3ULL);
  measure::TracerouteProbe probe(graph, usc, tc);
  // Major transit networks answer traceroute reliably; without this the
  // seed could declare an upstream ICMP-dark and every hop-3 observation
  // behind it would spatially fill from the enterprise border.
  for (const bgp::AsIndex as : {arn_a, ann, losnettos, he, ntt}) {
    probe.set_filter_override(as, false);
  }

  out.dataset.name = "USC/traceroute hop-" + std::to_string(config.focus_hop);
  for (const std::uint32_t b : blocks) out.dataset.networks.intern(b);

  const auto site_of_as = [&](bgp::AsIndex as) -> core::SiteId {
    const auto& node = graph.node(as);
    const std::string label =
        node.name.empty() ? node.asn.to_string() : node.name;
    return out.dataset.sites.intern(label);
  };

  // --- Sweep with one reconfiguration. ---
  const core::TimePoint t0 = core::from_date(2024, 8, 1);
  const core::TimePoint t_end = core::from_date(2025, 4, 1);

  auto paths = compute_paths(graph, usc, unique_dsts);
  bool reconfigured = false;

  const auto hop_labels = [&](const std::vector<bgp::AsIndex>& path) {
    std::vector<std::string> labels;
    for (std::size_t h = 0; h < 4 && h < path.size(); ++h) {
      const auto& node = graph.node(path[h]);
      labels.push_back(node.name.empty() ? node.asn.to_string() : node.name);
    }
    return labels;
  };
  const auto snapshot_sankey = [&]() {
    std::vector<std::vector<std::string>> all;
    all.reserve(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (block_as[i] == bgp::kNoAs) continue;
      all.push_back(hop_labels(paths.at(block_as[i])));
    }
    return all;
  };
  const auto snapshot_paths = [&]() {
    std::unordered_map<std::uint32_t, std::vector<bgp::AsIndex>> all;
    all.reserve(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (block_as[i] == bgp::kNoAs) continue;
      all.emplace(blocks[i], paths.at(block_as[i]));
    }
    return all;
  };

  for (core::TimePoint t = t0; t < t_end; t += config.cadence) {
    if (config.include_change && !reconfigured && t >= out.change_time) {
      // Snapshot the before-change flows (the paper's 2025-01-14).
      out.sankey_before = snapshot_sankey();
      out.paths_before = snapshot_paths();
      // The border reconfiguration (HE peering stays).
      graph.set_link_up(arn_a, usc, false);
      graph.set_link_up(usc, ann, false);
      graph.set_link_up(losnettos, usc, true);
      graph.set_link_up(ntt, usc, true);
      paths = compute_paths(graph, usc, unique_dsts);
      out.sankey_after = snapshot_sankey();
      out.paths_after = snapshot_paths();
      out.change_index = out.dataset.series.size();
      reconfigured = true;
    }

    core::RoutingVector v;
    v.time = t;
    v.assignment.assign(blocks.size(), core::kUnknownSite);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (block_as[i] == bgp::kNoAs) continue;
      const auto& path = paths.at(block_as[i]);
      const auto result = probe.trace(
          t, blocks[i],
          std::span<const bgp::AsIndex>(path.data(), path.size()));
      const auto focus =
          probe.focus_catchment(graph, result, config.focus_hop);
      if (focus) v.assignment[i] = site_of_as(*focus);
    }
    out.dataset.series.push_back(std::move(v));
  }
  if (!config.include_change || out.sankey_before.empty()) {
    // Quiet enterprise (or change date outside the window): both
    // snapshots show the stable topology.
    out.sankey_before = snapshot_sankey();
    out.sankey_after = out.sankey_before;
    out.paths_before = snapshot_paths();
    out.paths_after = out.paths_before;
  }

  // Trinocular-style latency rounds on each side of the change.
  {
    netbase::Hitlist hitlist(blocks, rng::mix(config.seed, 0x311ULL));
    measure::TrinocularConfig trc;
    trc.seed = rng::mix(config.seed, 0x7c1ULL);
    const measure::TrinocularProbe latency(&hitlist, &graph, trc);
    const geo::LatencyModel model;
    const auto path_in = [](const std::unordered_map<
                             std::uint32_t, std::vector<bgp::AsIndex>>& m) {
      return [&m](std::uint32_t block) -> const std::vector<bgp::AsIndex>* {
        const auto it = m.find(block);
        return it == m.end() ? nullptr : &it->second;
      };
    };
    out.rtt_before = latency.measure_rtt(out.change_time - core::kDay,
                                         path_in(out.paths_before), model);
    out.rtt_after = latency.measure_rtt(out.change_time + core::kDay,
                                        path_in(out.paths_after), model);
  }
  out.dataset.check_consistent();
  return out;
}

}  // namespace fenrir::scenarios
