#include "core/vector.h"

#include <algorithm>
#include <stdexcept>

namespace fenrir::core {

std::vector<std::uint64_t> aggregate(const RoutingVector& v,
                                     std::size_t site_count) {
  std::vector<std::uint64_t> counts(site_count, 0);
  for (const SiteId s : v.assignment) counts.at(s) += 1;
  return counts;
}

std::vector<double> aggregate_weighted(const RoutingVector& v,
                                       std::span<const double> weights,
                                       std::size_t site_count) {
  if (weights.size() != v.assignment.size()) {
    throw std::invalid_argument("aggregate_weighted: weight size mismatch");
  }
  std::vector<double> counts(site_count, 0.0);
  for (std::size_t n = 0; n < v.assignment.size(); ++n) {
    counts.at(v.assignment[n]) += weights[n];
  }
  return counts;
}

std::vector<std::uint8_t> one_hot_row(SiteId assigned,
                                      std::size_t site_count) {
  std::vector<std::uint8_t> row(site_count, 0);
  row.at(assigned) = 1;
  return row;
}

double known_fraction(const RoutingVector& v) {
  if (v.assignment.empty()) return 0.0;
  std::size_t known = 0;
  for (const SiteId s : v.assignment) known += (s != kUnknownSite);
  return static_cast<double>(known) /
         static_cast<double>(v.assignment.size());
}

std::size_t Dataset::index_at(TimePoint t) const {
  const auto it = std::lower_bound(
      series.begin(), series.end(), t,
      [](const RoutingVector& v, TimePoint tp) { return v.time < tp; });
  return static_cast<std::size_t>(it - series.begin());
}

void Dataset::check_consistent() const {
  for (const RoutingVector& v : series) {
    if (v.assignment.size() != networks.size()) {
      throw std::invalid_argument("Dataset: vector/network size mismatch");
    }
    for (const SiteId s : v.assignment) {
      if (s >= sites.size()) {
        throw std::invalid_argument("Dataset: site id out of range");
      }
    }
  }
  if (!weights.empty() && weights.size() != networks.size()) {
    throw std::invalid_argument("Dataset: weights size mismatch");
  }
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i].time < series[i - 1].time) {
      throw std::invalid_argument("Dataset: series not time-ordered");
    }
  }
}

}  // namespace fenrir::core
