#include "core/simd_dispatch.h"

#include <cstdlib>
#include <string>

#include "obs/log.h"

namespace fenrir::core::simd {

namespace {

constexpr KernelTable kScalarTable{
    count_u8_scalar, count_u16_scalar, count_u32_scalar,
    delta_u8_scalar, delta_u16_scalar, delta_u32_scalar,
    max_site_scalar, pack_u8_scalar,   pack_u16_scalar,
    swap_patch_u8_scalar};

#if defined(FENRIR_BUILD_AVX2)
constexpr KernelTable kAvx2Table{
    count_u8_avx2, count_u16_avx2, count_u32_avx2,
    delta_u8_avx2, delta_u16_avx2, delta_u32_avx2,
    max_site_avx2, pack_u8_avx2,   pack_u16_avx2,
    // AVX2 has no profitable 16-wide byte gather; the scalar swap patch
    // is the fastest correct choice for this tier.
    swap_patch_u8_scalar};
#endif

#if defined(FENRIR_BUILD_AVX512)
constexpr KernelTable kAvx512Table{
    count_u8_avx512, count_u16_avx512, count_u32_avx512,
    delta_u8_avx512, delta_u16_avx512, delta_u32_avx512,
    max_site_avx512, pack_u8_avx512,   pack_u16_avx512,
    swap_patch_u8_avx512};
#endif

Tier detect() noexcept {
#if defined(__x86_64__) || defined(__i386__)
#if defined(FENRIR_BUILD_AVX512)
  // BW supplies the 8/16-bit mask compares; F the 32-bit ones and the
  // 512-bit loads. VL is not needed (the kernels stay at 512 bits).
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return Tier::kAvx512;
  }
#endif
#if defined(FENRIR_BUILD_AVX2)
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#endif
#endif
  return Tier::kScalar;
}

Tier resolve_active() noexcept {
  const Tier detected = detect();
  const char* env = std::getenv("FENRIR_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  const std::string want(env);
  Tier requested = detected;
  if (want == "scalar") {
    requested = Tier::kScalar;
  } else if (want == "avx2") {
    requested = Tier::kAvx2;
  } else if (want == "avx512") {
    requested = Tier::kAvx512;
  } else {
    FENRIR_LOG(Warn).field("FENRIR_SIMD", want)
        << "unknown SIMD override; using detected tier";
    return detected;
  }
  if (static_cast<int>(requested) > static_cast<int>(detected)) {
    FENRIR_LOG(Warn)
            .field("requested", tier_name(requested))
            .field("detected", tier_name(detected))
        << "FENRIR_SIMD asks for more than this build/host supports; "
           "clamping";
    return detected;
  }
  return requested;
}

}  // namespace

const char* tier_name(Tier t) noexcept {
  switch (t) {
    case Tier::kAvx512: return "avx512";
    case Tier::kAvx2: return "avx2";
    case Tier::kScalar: break;
  }
  return "scalar";
}

Tier detected_tier() noexcept {
  static const Tier tier = detect();
  return tier;
}

Tier active_tier() noexcept {
  static const Tier tier = resolve_active();
  return tier;
}

const KernelTable* table_for(Tier t) noexcept {
  switch (t) {
    case Tier::kScalar:
      return &kScalarTable;
    case Tier::kAvx2:
#if defined(FENRIR_BUILD_AVX2)
      if (static_cast<int>(detected_tier()) >= static_cast<int>(Tier::kAvx2)) {
        return &kAvx2Table;
      }
#endif
      return nullptr;
    case Tier::kAvx512:
#if defined(FENRIR_BUILD_AVX512)
      if (detected_tier() == Tier::kAvx512) return &kAvx512Table;
#endif
      return nullptr;
  }
  return nullptr;
}

const KernelTable& active() {
  static const KernelTable* table = [] {
    const KernelTable* t = table_for(active_tier());
    return t != nullptr ? t : &kScalarTable;
  }();
  return *table;
}

}  // namespace fenrir::core::simd
