#include "core/modes.h"

#include <algorithm>
#include <map>

namespace fenrir::core {

std::string roman_numeral(std::size_t n) {
  static constexpr std::pair<std::size_t, const char*> kParts[] = {
      {1000, "m"}, {900, "cm"}, {500, "d"}, {400, "cd"}, {100, "c"},
      {90, "xc"},  {50, "l"},   {40, "xl"}, {10, "x"},   {9, "ix"},
      {5, "v"},    {4, "iv"},   {1, "i"},
  };
  std::string out;
  for (const auto& [value, digits] : kParts) {
    while (n >= value) {
      out += digits;
      n -= value;
    }
  }
  return out;
}

ModeSet ModeSet::build(const Dataset& dataset, const Clustering& clustering,
                       std::size_t min_size) {
  ModeSet out;
  // Group series indices by cluster label.
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < clustering.labels.size(); ++i) {
    const int l = clustering.labels[i];
    if (l >= 0) groups[l].push_back(i);
  }
  // Keep groups of sufficient size, ordered by first appearance.
  std::vector<std::pair<std::size_t, int>> order;  // (first index, label)
  for (const auto& [label, members] : groups) {
    if (members.size() >= min_size) order.emplace_back(members.front(), label);
  }
  std::sort(order.begin(), order.end());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const int label = order[k].second;
    Mode m;
    m.cluster = label;
    m.label = roman_numeral(k + 1);
    m.members = groups[label];
    m.start = dataset.series.at(m.members.front()).time;
    m.end = dataset.series.at(m.members.back()).time;
    out.modes_.push_back(std::move(m));
  }
  return out;
}

std::optional<std::size_t> ModeSet::mode_of(std::size_t series_index) const {
  for (std::size_t i = 0; i < modes_.size(); ++i) {
    if (std::binary_search(modes_[i].members.begin(), modes_[i].members.end(),
                           series_index)) {
      return i;
    }
  }
  return std::nullopt;
}

SimilarityMatrix::Range ModeSet::intra(const SimilarityMatrix& matrix,
                                       std::size_t i) const {
  return matrix.range_within(modes_.at(i).members);
}

SimilarityMatrix::Range ModeSet::inter(const SimilarityMatrix& matrix,
                                       std::size_t i, std::size_t j) const {
  return matrix.range_between(modes_.at(i).members, modes_.at(j).members);
}

double ModeSet::median_inter(const SimilarityMatrix& matrix, std::size_t i,
                             std::size_t j) const {
  return matrix.median_between(modes_.at(i).members, modes_.at(j).members);
}

std::vector<std::vector<std::size_t>> ModeSet::transition_counts(
    std::size_t series_length) const {
  std::vector<std::vector<std::size_t>> out(
      modes_.size(), std::vector<std::size_t>(modes_.size(), 0));
  // Mode of each series index (modes_.size() = none).
  std::vector<std::size_t> of(series_length, modes_.size());
  for (std::size_t m = 0; m < modes_.size(); ++m) {
    for (const std::size_t idx : modes_[m].members) {
      if (idx < series_length) of[idx] = m;
    }
  }
  for (std::size_t i = 1; i < series_length; ++i) {
    const std::size_t a = of[i - 1], b = of[i];
    if (a < modes_.size() && b < modes_.size() && a != b) ++out[a][b];
  }
  return out;
}

std::optional<ModeSet::Recurrence> ModeSet::recurrence(
    const SimilarityMatrix& matrix, std::size_t i) const {
  if (i < 2) return std::nullopt;  // need an earlier, non-adjacent mode
  Recurrence best{0, -1.0};
  for (std::size_t e = 0; e + 1 < i; ++e) {
    const double phi = median_inter(matrix, i, e);
    if (phi > best.median_phi) best = Recurrence{e, phi};
  }
  if (best.median_phi < 0.0) return std::nullopt;
  return best;
}

}  // namespace fenrir::core
