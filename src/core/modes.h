// fenrir::core — routing modes and recurrence (paper §2.6.2, §4).
//
// A mode is a cluster of observation times whose routing vectors are
// mutually similar — a mostly-stable routing regime the service sits in.
// ModeSet orders clusters by first appearance, names them with roman
// numerals like the paper's figures ((i), (ii), ...), reports intra- and
// inter-mode Φ ranges ("Φ(M_i, M_ii) = [0.11, 0.48]"), and answers the
// paper's recurrence question: is the current mode like one seen before
// (mode (v) resembling mode (i) at B-Root)?
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distance_matrix.h"
#include "core/vector.h"

namespace fenrir::core {

/// Roman numeral for 1-based n ("i", "ii", ..., "xlii").
std::string roman_numeral(std::size_t n);

struct Mode {
  int cluster = -1;        // label in the source Clustering
  std::string label;       // "i", "ii", ...
  std::vector<std::size_t> members;  // series indices, ascending
  TimePoint start = 0;     // time of first member
  TimePoint end = 0;       // time of last member
};

class ModeSet {
 public:
  ModeSet() = default;

  /// Extracts modes: clusters with >= @p min_size members, ordered by
  /// first member index. Smaller clusters are treated as transition noise
  /// and not reported.
  static ModeSet build(const Dataset& dataset, const Clustering& clustering,
                       std::size_t min_size = 2);

  const std::vector<Mode>& modes() const noexcept { return modes_; }
  std::size_t size() const noexcept { return modes_.size(); }
  const Mode& mode(std::size_t i) const { return modes_.at(i); }

  /// Mode containing series index @p t, if any.
  std::optional<std::size_t> mode_of(std::size_t series_index) const;

  // Φ statistics take the similarity matrix the clustering was built from
  // (passed per call: a ModeSet never outlives or pins the matrix).

  /// Φ range within mode @p i.
  SimilarityMatrix::Range intra(const SimilarityMatrix& matrix,
                                std::size_t i) const;
  /// Φ range between modes @p i and @p j.
  SimilarityMatrix::Range inter(const SimilarityMatrix& matrix, std::size_t i,
                                std::size_t j) const;
  /// Median Φ between two modes (the recurrence score).
  double median_inter(const SimilarityMatrix& matrix, std::size_t i,
                      std::size_t j) const;

  /// Mode-to-mode transition counts: result[a][b] is the number of times
  /// an observation in mode a was immediately followed (next series
  /// index) by one in mode b, a != b. Observations outside any mode
  /// break adjacency. The matrix summarizes the timeline as a mode
  /// graph — which regimes the service oscillates between.
  std::vector<std::vector<std::size_t>> transition_counts(
      std::size_t series_length) const;

  struct Recurrence {
    std::size_t earlier_mode;  // index into modes()
    double median_phi;
  };
  /// The earlier, non-adjacent mode most similar to mode @p i — evidence
  /// that routing returned to a previously seen state. nullopt if there is
  /// no earlier non-adjacent mode.
  std::optional<Recurrence> recurrence(const SimilarityMatrix& matrix,
                                       std::size_t i) const;

 private:
  std::vector<Mode> modes_;
};

}  // namespace fenrir::core
