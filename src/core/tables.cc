#include "core/tables.h"

namespace fenrir::core {

SiteId SiteTable::intern(const std::string& name) {
  if (name == "unknown") return kUnknownSite;
  if (name == "err") return kErrorSite;
  if (name == "other") return kOtherSite;
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const SiteId id = static_cast<SiteId>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

std::optional<SiteId> SiteTable::find(const std::string& name) const {
  if (name == "unknown") return kUnknownSite;
  if (name == "err") return kErrorSite;
  if (name == "other") return kOtherSite;
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

NetId NetworkTable::intern(std::uint64_t key) {
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  const NetId id = static_cast<NetId>(keys_.size());
  keys_.push_back(key);
  by_key_.emplace(key, id);
  return id;
}

std::optional<NetId> NetworkTable::find(std::uint64_t key) const {
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) return std::nullopt;
  return it->second;
}

}  // namespace fenrir::core
