// fenrir::core — observation weighting (the paper's D_w, §2.5).
//
// A raw vector says what each observer sees; operators care what each
// observer *represents*. Weighting schemes turn per-network observations
// into operationally meaningful mass:
//
//   * uniform        — every observation counts 1 (the default);
//   * address-count  — an observation stands for the /24 blocks of the
//                      covering routable prefix it is the only VP in
//                      (one Atlas VP in a /16 counts as 256);
//   * traffic        — externally supplied per-network demand estimates
//                      (historical query volume, user counts).
//
// Weights are consumed by Gower similarity, weighted aggregates, and the
// latency summaries.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/tables.h"

namespace fenrir::core {

/// Uniform weights: 1.0 per network.
std::vector<double> uniform_weights(std::size_t networks);

/// Address-count weights: weight[n] = blocks_represented[n], e.g. the /24
/// count of the covering announced prefix divided by the number of
/// observers inside it. The caller supplies the representation counts
/// (measurement-specific); zero counts are rejected.
std::vector<double> address_weights(
    std::span<const std::uint32_t> blocks_represented);

/// Traffic weights from demand estimates; negative demand is rejected,
/// zero is allowed (a network that sends nothing contributes nothing).
std::vector<double> traffic_weights(std::span<const double> demand);

/// Normalizes weights to sum to @p total (default: the network count, so
/// weighted and unweighted Φ values are on the same scale). Throws if the
/// sum is zero.
void normalize_weights(std::vector<double>& weights, double total);

/// Total weight.
double weight_sum(std::span<const double> weights);

}  // namespace fenrir::core
