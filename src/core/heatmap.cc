#include "core/heatmap.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <ostream>

#include "io/csv.h"
#include "io/table.h"

namespace fenrir::core {

namespace {

/// Mean Φ over the valid cells of box [r0,r1)×[c0,c1); nullopt if none.
std::optional<double> box_mean(const SimilarityMatrix& m, std::size_t r0,
                               std::size_t r1, std::size_t c0,
                               std::size_t c1) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t r = r0; r < r1; ++r) {
    if (!m.valid(r)) continue;
    for (std::size_t c = c0; c < c1; ++c) {
      if (!m.valid(c)) continue;
      sum += m.phi(r, c);
      ++count;
    }
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

}  // namespace

io::GrayImage heatmap_image(const SimilarityMatrix& matrix,
                            std::size_t max_pixels) {
  const std::size_t n = matrix.size();
  const std::size_t side = std::max<std::size_t>(1, std::min(n, max_pixels));
  io::GrayImage img(side, side, 255);
  if (n == 0) return img;
  for (std::size_t y = 0; y < side; ++y) {
    const std::size_t r0 = y * n / side;
    const std::size_t r1 = std::max(r0 + 1, (y + 1) * n / side);
    for (std::size_t x = 0; x < side; ++x) {
      const std::size_t c0 = x * n / side;
      const std::size_t c1 = std::max(c0 + 1, (x + 1) * n / side);
      const auto phi = box_mean(matrix, r0, r1, c0, c1);
      if (phi) {
        const double clamped = std::clamp(*phi, 0.0, 1.0);
        img.at(x, y) = static_cast<std::uint8_t>(
            std::lround(255.0 * (1.0 - clamped)));
      }
    }
  }
  return img;
}

std::string heatmap_ascii(const SimilarityMatrix& matrix,
                          std::size_t max_chars) {
  // Light -> dark ramp; index by Φ so similar pairs print dense glyphs.
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // last index

  const std::size_t n = matrix.size();
  if (n == 0) return "";
  const std::size_t side = std::min(n, max_chars);
  std::string out;
  out.reserve((side + 1) * side);
  for (std::size_t y = 0; y < side; ++y) {
    const std::size_t r0 = y * n / side;
    const std::size_t r1 = std::max(r0 + 1, (y + 1) * n / side);
    for (std::size_t x = 0; x < side; ++x) {
      const std::size_t c0 = x * n / side;
      const std::size_t c1 = std::max(c0 + 1, (x + 1) * n / side);
      const auto phi = box_mean(matrix, r0, r1, c0, c1);
      if (!phi) {
        out.push_back(' ');
      } else {
        const double clamped = std::clamp(*phi, 0.0, 1.0);
        out.push_back(
            kRamp[static_cast<std::size_t>(clamped * kLevels + 0.5)]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

io::ColorImage mode_strip_image(const Clustering& clustering,
                                std::size_t height) {
  const std::size_t n = clustering.labels.size();
  io::ColorImage img(std::max<std::size_t>(n, 1), std::max<std::size_t>(height, 1));
  // A fixed qualitative palette, cycled; distinct enough for ~12 modes.
  static constexpr io::ColorImage::Rgb kPalette[] = {
      {230, 159, 0},   {86, 180, 233},  {0, 158, 115},  {240, 228, 66},
      {0, 114, 178},   {213, 94, 0},    {204, 121, 167}, {148, 103, 189},
      {140, 86, 75},   {127, 127, 127}, {188, 189, 34},  {23, 190, 207},
  };
  for (std::size_t x = 0; x < n; ++x) {
    const int label = clustering.labels[x];
    const io::ColorImage::Rgb color =
        label < 0 ? io::ColorImage::Rgb{0, 0, 0}
                  : kPalette[static_cast<std::size_t>(label) %
                             std::size(kPalette)];
    for (std::size_t y = 0; y < img.height(); ++y) img.at(x, y) = color;
  }
  return img;
}

void write_heatmap_csv(const SimilarityMatrix& matrix, const Dataset& dataset,
                       std::ostream& out) {
  io::CsvWriter csv(out);
  std::vector<std::string> head{"time"};
  for (const auto& v : dataset.series) head.push_back(format_time(v.time));
  csv.write_row(head);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    std::vector<std::string> row{format_time(dataset.series[i].time)};
    for (std::size_t j = 0; j < matrix.size(); ++j) {
      if (matrix.valid(i) && matrix.valid(j)) {
        row.push_back(io::fixed(matrix.phi(i, j), 4));
      } else {
        row.push_back("");
      }
    }
    csv.write_row(row);
  }
}

}  // namespace fenrir::core
