// fenrir::core — data cleaning (paper §2.4).
//
// Raw active measurements carry errors and gaps; Fenrir cleans in three
// service-specific ways before analysis:
//
//  1. Remove incorrect data — caller-supplied predicate marks bogus
//     observations, which are demoted to unknown.
//  2. Remove micro-catchments — sites that never hold more than a sliver
//     of networks (local-only anycast sites, an enterprise's internal
//     prefixes) are folded into "other" so mode discovery focuses on
//     catchments that matter.
//  3. Interpolate missing data — temporal gap filling. The paper's rule:
//     a run of misses between two successes is filled half from the left
//     neighbour and half from the right, but never farther than
//     `max_distance` observations from a real observation; leading/
//     trailing gaps can optionally be forward/backward-filled the way
//     Verfploeter replicates the most recent successful observation.
//
// All functions mutate the dataset in place and report what they did.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/vector.h"

namespace fenrir::core {

struct CleaningStats {
  std::uint64_t incorrect_removed = 0;
  std::uint64_t micro_sites_folded = 0;     // sites folded into "other"
  std::uint64_t micro_assignments_folded = 0;  // assignments rewritten
  std::uint64_t gaps_filled = 0;            // unknown cells given a value
};

/// (1) Marks incorrect observations unknown. The predicate sees
/// (series index, network, current assignment) and returns true when the
/// observation is bogus (e.g. a site identity string that cannot exist).
CleaningStats remove_incorrect(
    Dataset& dataset,
    const std::function<bool(std::size_t, NetId, SiteId)>& is_bogus);

/// (2) Folds micro-catchments into kOtherSite: any real site whose peak
/// share of known assignments across the whole series stays below
/// @p min_peak_fraction. Returns the affected site ids via stats.
CleaningStats remove_micro_catchments(Dataset& dataset,
                                      double min_peak_fraction = 0.001);

struct InterpolateConfig {
  /// Paper's limit: fill at most this many observations away from a
  /// successful one.
  std::size_t max_distance = 3;
  /// Also fill leading/trailing gaps by replicating the nearest
  /// observation (Verfploeter-style "most recent successful" fill).
  bool fill_edges = false;
};

/// (3) Temporal nearest-neighbour interpolation per network: runs of
/// kUnknownSite bounded by known values are filled, first half from the
/// left value and second half from the right, subject to max_distance.
/// Invalid (outage) vectors are never written to and break runs.
CleaningStats interpolate_missing(Dataset& dataset,
                                  const InterpolateConfig& config = {});

}  // namespace fenrir::core
