#include "core/transition.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "io/table.h"

namespace fenrir::core {

TransitionMatrix TransitionMatrix::compute(const RoutingVector& from,
                                           const RoutingVector& to,
                                           std::size_t site_count) {
  if (from.assignment.size() != to.assignment.size()) {
    throw std::invalid_argument("TransitionMatrix: size mismatch");
  }
  TransitionMatrix m(site_count);
  for (std::size_t n = 0; n < from.assignment.size(); ++n) {
    ++m.counts_.at(m.index(from.assignment[n], to.assignment[n]));
  }
  return m;
}

std::uint64_t TransitionMatrix::stayed() const {
  std::uint64_t total = 0;
  for (SiteId s = 0; s < sites_; ++s) {
    if (s == kUnknownSite) continue;
    total += count(s, s);
  }
  return total;
}

std::uint64_t TransitionMatrix::moved() const {
  std::uint64_t total = 0;
  for (SiteId a = 0; a < sites_; ++a) {
    for (SiteId b = 0; b < sites_; ++b) {
      if (a != b) total += count(a, b);
    }
  }
  return total;
}

std::uint64_t TransitionMatrix::row_total(SiteId s) const {
  std::uint64_t total = 0;
  for (SiteId b = 0; b < sites_; ++b) total += count(s, b);
  return total;
}

std::uint64_t TransitionMatrix::col_total(SiteId s) const {
  std::uint64_t total = 0;
  for (SiteId a = 0; a < sites_; ++a) total += count(a, s);
  return total;
}

std::vector<TransitionMatrix::Flow> TransitionMatrix::top_movers(
    std::size_t k) const {
  std::vector<Flow> flows;
  for (SiteId a = 0; a < sites_; ++a) {
    for (SiteId b = 0; b < sites_; ++b) {
      if (a != b && count(a, b) > 0) flows.push_back(Flow{a, b, count(a, b)});
    }
  }
  std::sort(flows.begin(), flows.end(), [](const Flow& x, const Flow& y) {
    if (x.count != y.count) return x.count > y.count;
    if (x.from != y.from) return x.from < y.from;
    return x.to < y.to;
  });
  if (flows.size() > k) flows.resize(k);
  return flows;
}

void TransitionMatrix::print(const SiteTable& sites, std::ostream& out) const {
  // Show unknown only when it carries mass; err/other always shown last,
  // matching the paper's "sites ... plus error and other states" layout.
  std::vector<SiteId> shown;
  for (SiteId s = kFirstRealSite; s < sites_; ++s) shown.push_back(s);
  shown.push_back(kErrorSite);
  shown.push_back(kOtherSite);
  if (row_total(kUnknownSite) > 0 || col_total(kUnknownSite) > 0) {
    shown.push_back(kUnknownSite);
  }

  io::TextTable table;
  std::vector<std::string> head{"initial\\subseq"};
  for (const SiteId s : shown) head.push_back(sites.name(s));
  table.header(std::move(head));
  for (const SiteId a : shown) {
    std::vector<std::string> row{sites.name(a)};
    for (const SiteId b : shown) row.push_back(std::to_string(count(a, b)));
    table.add_row(std::move(row));
  }
  table.print(out);
}

}  // namespace fenrir::core
