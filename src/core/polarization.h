// fenrir::core — anycast polarization detection.
//
// The paper's §4.2 traces B-Root's ARI latency to polarization: "a few
// North American and European networks being routed to it" — networks
// served by a geographically distant site even though a much closer one
// is active (Moura et al. 2022, cited by the paper as the phenomenon
// DNS operators monitor for). Given a routing vector plus network and
// site coordinates, this module finds the polarized population and
// groups it by (serving site, nearest site) so an operator can see which
// site pair needs routing attention.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "core/tables.h"
#include "core/vector.h"
#include "geo/geo.h"

namespace fenrir::core {

struct PolarizationConfig {
  /// A network is polarized when its serving site is at least this much
  /// farther away than the nearest active site.
  double min_excess_km = 3000.0;
};

struct PolarizedGroup {
  SiteId serving = kUnknownSite;   // the distant site actually serving
  SiteId nearest = kUnknownSite;   // the close site being ignored
  std::size_t networks = 0;
  double mean_excess_km = 0.0;
};

struct PolarizationReport {
  std::size_t known_networks = 0;      // networks with usable data
  std::size_t polarized_networks = 0;
  /// Groups by (serving, nearest), descending by population.
  std::vector<PolarizedGroup> groups;

  double polarized_fraction() const {
    return known_networks == 0
               ? 0.0
               : static_cast<double>(polarized_networks) /
                     static_cast<double>(known_networks);
  }
};

/// Detects polarization in one observation. @p network_coords is aligned
/// with the vector (one coordinate per network); @p site_coords maps each
/// *active* real site to its location — sites absent from the map (err/
/// other/unknown, or drained sites) are skipped both as serving sites and
/// as nearest candidates. Throws std::invalid_argument on size mismatch
/// or an empty site map.
PolarizationReport detect_polarization(
    const RoutingVector& v, std::span<const geo::Coord> network_coords,
    const std::unordered_map<SiteId, geo::Coord>& site_coords,
    const PolarizationConfig& config = {});

}  // namespace fenrir::core
