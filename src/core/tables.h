// fenrir::core — symbol tables for catchment sites and networks.
//
// A routing vector assigns every network one of |S| values (paper §2.2).
// SiteTable interns site labels ("LAX", "codfw", an upstream's AS name)
// into dense SiteIds; three ids are reserved:
//
//   kUnknownSite — no observation (missing data; pessimistic in Φ)
//   kErrorSite   — probe answered but the service did not ("err")
//   kOtherSite   — response mapped to no known site ("other")
//
// Error and other are real states (the paper's transition matrices carry
// err/oth rows); only kUnknownSite is excluded from similarity matches.
//
// NetworkTable interns the measurement's network keys (a /24 block index,
// an Atlas VP id, an EDNS-CS prefix) into dense NetIds so vectors are flat
// arrays.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace fenrir::core {

using SiteId = std::uint32_t;
using NetId = std::uint32_t;

inline constexpr SiteId kUnknownSite = 0;
inline constexpr SiteId kErrorSite = 1;
inline constexpr SiteId kOtherSite = 2;
inline constexpr SiteId kFirstRealSite = 3;

class SiteTable {
 public:
  SiteTable() : names_{"unknown", "err", "other"} {}

  /// Interns @p name, returning an id >= kFirstRealSite. Reserved names
  /// ("unknown"/"err"/"other") return their reserved ids.
  SiteId intern(const std::string& name);

  std::optional<SiteId> find(const std::string& name) const;

  const std::string& name(SiteId id) const { return names_.at(id); }

  /// Total ids including the three reserved ones.
  std::size_t size() const noexcept { return names_.size(); }
  /// Real (service) sites only.
  std::size_t real_site_count() const noexcept { return names_.size() - 3; }

  /// Iterate real site ids: kFirstRealSite .. size()-1.
  SiteId first_real() const noexcept { return kFirstRealSite; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SiteId> by_name_;
};

class NetworkTable {
 public:
  /// Interns a network key, returning its dense id (stable across calls).
  NetId intern(std::uint64_t key);

  std::optional<NetId> find(std::uint64_t key) const;

  std::uint64_t key(NetId id) const { return keys_.at(id); }
  std::size_t size() const noexcept { return keys_.size(); }

 private:
  std::vector<std::uint64_t> keys_;
  std::unordered_map<std::uint64_t, NetId> by_key_;
};

}  // namespace fenrir::core
