#include "core/weights.h"

namespace fenrir::core {

std::vector<double> uniform_weights(std::size_t networks) {
  return std::vector<double>(networks, 1.0);
}

std::vector<double> address_weights(
    std::span<const std::uint32_t> blocks_represented) {
  std::vector<double> out;
  out.reserve(blocks_represented.size());
  for (const std::uint32_t b : blocks_represented) {
    if (b == 0) {
      throw std::invalid_argument(
          "address_weights: observation representing zero blocks");
    }
    out.push_back(static_cast<double>(b));
  }
  return out;
}

std::vector<double> traffic_weights(std::span<const double> demand) {
  std::vector<double> out;
  out.reserve(demand.size());
  for (const double d : demand) {
    if (d < 0.0) {
      throw std::invalid_argument("traffic_weights: negative demand");
    }
    out.push_back(d);
  }
  return out;
}

void normalize_weights(std::vector<double>& weights, double total) {
  double sum = 0.0;
  for (const double w : weights) sum += w;
  if (sum <= 0.0) {
    throw std::invalid_argument("normalize_weights: zero total weight");
  }
  const double scale = total / sum;
  for (double& w : weights) w *= scale;
}

double weight_sum(std::span<const double> weights) {
  double sum = 0.0;
  for (const double w : weights) sum += w;
  return sum;
}

}  // namespace fenrir::core
