// fenrir::core — packed similarity kernels: the integer core of Φ.
//
// gower_similarity() is exact but scalar: one branchy comparison per
// network, on 4-byte SiteIds. At production scale (millions of networks,
// hundreds of observations) the all-pairs matrix does T²·N of those, and
// the paper's own thesis — routing *recurs*, consecutive vectors differ
// in a tiny fraction of networks — goes unexploited. This header supplies
// the three fast layers the SimilarityMatrix builds on:
//
//  * PackedSeries — rows narrowed to the smallest element width that
//    holds every SiteId seen (uint8 for < 255 sites, uint16 below 64k,
//    uint32 otherwise). A packed row is 4×–1× denser than the
//    RoutingVector it came from, so the match kernels stream 4× more
//    networks per cache line and auto-vectorize to 16–32 lanes per step.
//  * count_matches kernels — blocked, branchless mask-accumulation loops
//    producing MatchCounts: how many networks match (both known, equal)
//    and how many are mutually known. Both UnknownPolicy variants of Φ
//    are pure functions of these two integers (phi_from_counts), so any
//    kernel that reproduces the counts reproduces Φ *bit-identically* —
//    the determinism contract the property tests enforce.
//  * delta_between / apply_delta — a sorted change-set between a row and
//    its predecessor, and an O(|Δ|) patch taking counts(prev, b) to
//    counts(cur, b). When churn is sparse this replaces an O(N) scan per
//    pair; counts stay exact integers, so Φ stays bit-identical.
//
// Weighted Φ accumulates doubles, where reordering changes the result
// bits. The weighted kernel therefore keeps the reference's in-order
// single accumulator and is branchless-select only (no SIMD reduction,
// no delta path) — still bit-identical, still faster than the branchy
// scalar loop on unpredictable data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/compare.h"
#include "core/vector.h"

namespace fenrir::io {
class SnapshotCodec;  // binary persistence (io/snapshot.h)
class SegmentCodec;   // segment-store persistence (io/segment_store.h)
}  // namespace fenrir::io

namespace fenrir::core {

/// The integer core of unweighted Φ between two rows.
struct MatchCounts {
  std::uint64_t matches = 0;       // both known and equal
  std::uint64_t mutual_known = 0;  // both sides != kUnknownSite
};

/// The double core of weighted Φ (matched / denom, 0 if denom <= 0).
struct WeightedCounts {
  double matched = 0.0;
  double denom = 0.0;
};

/// Φ from integer counts — exactly compare.cc's divisions, so a kernel
/// producing the reference's counts produces the reference's bits.
inline double phi_from_counts(const MatchCounts& c, std::size_t n,
                              UnknownPolicy policy) {
  if (policy == UnknownPolicy::kPessimistic) {
    if (n == 0) return 0.0;
    return static_cast<double>(c.matches) / static_cast<double>(n);
  }
  if (c.mutual_known == 0) return 0.0;
  return static_cast<double>(c.matches) / static_cast<double>(c.mutual_known);
}

inline double phi_from_weighted(const WeightedCounts& c) {
  if (c.denom <= 0.0) return 0.0;
  return c.matched / c.denom;
}

/// Left-to-right sum of @p w — the bit-exact denominator the reference's
/// pessimistic weighted loop accumulates on every call, hoisted so the
/// matrix pays it once instead of once per pair.
double in_order_sum(std::span<const double> w);

/// One element of a change-set between a row and its predecessor.
struct DeltaEntry {
  std::uint32_t index = 0;  // network index
  SiteId before = kUnknownSite;
  SiteId after = kUnknownSite;
};

struct PreparedDelta;

/// A time-series of routing vectors packed to the narrowest element type
/// that holds every SiteId appended so far. Appending a vector with a
/// larger id transparently re-packs the store one width up (ids only grow
/// as a dataset interns new sites, so widening is rare and amortizes).
///
/// A series can start with a *mapped prefix*: rows adopted as borrowed
/// pointers (typically into mmap'd segment pages — io/segment_store.h)
/// instead of bytes copied into the owned store. All read paths resolve
/// through row_ptr(), so the kernels never notice; mutation of a mapped
/// row is impossible by construction (the mutable row_ptr only serves
/// owned rows), and a widening append first materializes the prefix into
/// owned storage. A keepalive shared_ptr pins the mapping for as long as
/// any pointer could be dereferenced.
class PackedSeries {
 public:
  PackedSeries() = default;

  /// Packs every row of @p dataset (width from the largest id present).
  static PackedSeries pack(const Dataset& dataset);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t networks() const noexcept { return networks_; }
  /// Bytes per element: 1, 2, or 4.
  std::size_t width() const noexcept { return width_; }
  /// Rows borrowed from an adopted mapping (always a prefix of rows()).
  std::size_t mapped_rows() const noexcept { return mapped_.size(); }

  /// Pre-sizes the store for @p rows total rows (no-op before the first
  /// append fixes networks(), or when already that large). Batch
  /// ingesters call this so the packed store grows once per batch
  /// instead of reallocating mid-append-loop.
  void reserve(std::size_t rows) {
    if (networks_ > 0 && rows > mapped_.size()) {
      data_.reserve((rows - mapped_.size()) * networks_ * width_);
    }
  }

  /// Adopts @p rows as a borrowed prefix: row i reads through rows[i]
  /// (networks × width bytes, any alignment ≥ the element width) for as
  /// long as @p keepalive stays alive. Only legal on an empty series;
  /// throws std::logic_error otherwise. Appends afterwards extend the
  /// series normally; an append that needs a wider element first copies
  /// the prefix into owned storage (widen_to materializes every row).
  void adopt_rows(std::size_t networks, std::size_t width,
                  std::span<const std::byte* const> rows,
                  std::shared_ptr<const void> keepalive);

  /// Appends one already-packed row of @p src_width-byte elements
  /// (networks() of them), converting between element widths as needed.
  /// The copy-fallback twin of adopt_rows for tail segments and
  /// big-endian hosts.
  void append_packed(const std::byte* src, std::size_t src_width);

  /// Appends one packed row. The first row fixes networks(); later rows
  /// must match it (std::invalid_argument otherwise).
  void append(const RoutingVector& v);
  /// Drops the last row (for speculative appends, e.g. ModeBook's
  /// candidate row). No-op on an empty series.
  void pop_back() noexcept;
  /// Overwrites row @p dst with a copy of row @p src.
  void copy_row(std::size_t dst, std::size_t src);
  void clear() noexcept;

  /// MatchCounts between rows i and j: the blocked branchless kernel.
  MatchCounts counts(std::size_t i, std::size_t j) const;

  /// Weighted counts between rows i and j, mirroring the reference's
  /// accumulation order. For kPessimistic the denominator does not
  /// depend on the rows; pass the hoisted in_order_sum(w) as
  /// @p pessimistic_total and it is returned as .denom unchanged.
  WeightedCounts weighted_counts(std::size_t i, std::size_t j,
                                 std::span<const double> w,
                                 UnknownPolicy policy,
                                 double pessimistic_total) const;

  /// SiteId at (row, network) — random access for delta patching.
  SiteId value_at(std::size_t row, std::size_t n) const;

  /// Sorted change-set taking row @p from to row @p to (same series).
  std::vector<DeltaEntry> delta_between(std::size_t from, std::size_t to) const;

  /// Bounded change-set scan: fills @p out with delta_between(from, to),
  /// aborting as soon as it would exceed @p cap entries. Returns true when
  /// the full change-set fit; false when |Δ| > cap (@p out is cleared).
  /// An aborted scan stops at the (cap+1)-th mismatch, so probing a
  /// dissimilar row costs O(cap/density) lanes instead of O(N) plus a
  /// change-set allocation that would only be thrown away.
  bool delta_between_bounded(std::size_t from, std::size_t to, std::size_t cap,
                             std::vector<DeltaEntry>& out) const;

  /// Hint-prefetches every line of row @p row. The batch fill walks
  /// columns sequentially but reads each column's row in random
  /// (delta-index) order, which the hardware prefetcher cannot learn —
  /// streaming the next column's row while the current one is patched
  /// overlaps those misses instead.
  void prefetch_row(std::size_t row) const {
    if (row >= rows_) return;
#if defined(__GNUC__) || defined(__clang__)
    const std::byte* b = row_ptr(row);
    const std::size_t bytes = networks_ * width_;
    for (std::size_t off = 0; off < bytes; off += 64) {
      __builtin_prefetch(b + off, 0, 1);
    }
#endif
  }

  /// Hint-prefetches the lines apply_delta will read in row @p row_b.
  /// The matrix's fill loop issues this a couple of pairs ahead so the
  /// patch's random reads overlap in the memory system instead of
  /// serialising one cache miss per entry.
  void prefetch_delta(std::size_t row_b,
                      std::span<const DeltaEntry> delta) const {
    if (row_b >= rows_) return;
    const std::byte* b = row_ptr(row_b);
#if defined(__GNUC__) || defined(__clang__)
    for (const DeltaEntry& d : delta) {
      __builtin_prefetch(b + static_cast<std::size_t>(d.index) * width_, 0, 1);
    }
#else
    (void)b;
#endif
  }

 private:
  friend MatchCounts apply_delta(MatchCounts, std::span<const DeltaEntry>,
                                 const PackedSeries&, std::size_t);
  friend MatchCounts apply_prepared(MatchCounts, const PreparedDelta&,
                                    const PackedSeries&, std::size_t);
  friend class ColumnPatcher;
  friend class fenrir::io::SnapshotCodec;
  friend class fenrir::io::SegmentCodec;
  void widen_to(std::size_t width);
  /// Copies the mapped prefix into owned storage and drops the borrow
  /// (the keepalive included). Called before any operation that needs
  /// uniform owned bytes (widening).
  void materialize_mapped();
  const std::byte* row_ptr(std::size_t i) const {
    if (i < mapped_.size()) return mapped_[i];
    return data_.data() + (i - mapped_.size()) * networks_ * width_;
  }
  /// Mutable access is owned-rows-only: mapped rows are immutable pages.
  std::byte* row_ptr(std::size_t i) {
    return data_.data() + (i - mapped_.size()) * networks_ * width_;
  }

  std::size_t networks_ = 0;
  std::size_t rows_ = 0;
  std::size_t width_ = 1;
  std::vector<std::byte> data_;  // owned rows mapped_.size()..rows_-1
  std::vector<const std::byte*> mapped_;  // borrowed prefix, one per row
  std::shared_ptr<const void> keepalive_;
};

/// Patches counts(prev, b) into counts(cur, b) given the change-set
/// delta_between(prev, cur): O(|Δ|) with one random access into row
/// @p row_b per entry. Exact integer arithmetic — bit-identical Φ.
MatchCounts apply_delta(MatchCounts base, std::span<const DeltaEntry> delta,
                        const PackedSeries& series, std::size_t row_b);

/// A change-set pre-classified by endpoint known-ness. Whether `before`
/// or `after` equals kUnknownSite does not depend on the column being
/// patched, yet apply_delta re-tests both per entry per column. The
/// batch append classifies each planned row once and replays the
/// prepared form across every column:
///  - both endpoints known: mutual_known provably cancels (-known +known)
///    and only match membership can move — two compares per entry;
///  - before unknown → after known: the pair can only gain, one compare
///    plus the column's own known test;
///  - before known → after unknown: the mirror image.
/// (An entry with both endpoints unknown cannot appear in a change-set.)
/// Struct-of-arrays so the replay loop streams each class densely.
struct PreparedDelta {
  std::vector<std::uint32_t> idx_swap;
  std::vector<SiteId> before_swap;
  std::vector<SiteId> after_swap;
  std::vector<std::uint32_t> idx_gain;
  std::vector<SiteId> after_gain;
  std::vector<std::uint32_t> idx_lose;
  std::vector<SiteId> before_lose;
};

/// Classifies @p delta into its PreparedDelta form — O(|Δ|), done once
/// per planned batch row and amortized over every column it patches.
PreparedDelta prepare_delta(std::span<const DeltaEntry> delta);

/// Kernel signature for the swap-class patch against a u8 row: returns
/// the net match delta Σ (after[t] == row[idx[t]]) − (before[t] ==
/// row[idx[t]]). @p row_len is the row's element count — idx entries
/// are sorted ascending, so a vectorized tier can split off the suffix
/// whose gathers would read past the row and handle it scalar.
using SwapPatchU8Fn = std::int64_t (*)(const std::uint8_t* row,
                                       const std::uint32_t* idx,
                                       const SiteId* before,
                                       const SiteId* after, std::size_t n,
                                       std::size_t row_len);

/// The active dispatch tier's swap-patch kernel (compare_kernels.cc
/// resolves it; the header cannot include simd_dispatch.h, which
/// includes this header).
SwapPatchU8Fn active_swap_patch_u8() noexcept;

/// Applies prepared change-sets against one fixed column row, with the
/// row pointer, width, and swap-kernel dispatch resolved at
/// construction and the patch loops inlined. The batch fill patches
/// every planned batch row against the same column before moving on, so
/// the per-call dispatch and call overhead of apply_prepared would
/// otherwise be paid k times per column.
class ColumnPatcher {
 public:
  ColumnPatcher(const PackedSeries& series, std::size_t row_b)
      : row_(series.row_ptr(row_b)),
        width_(series.width()),
        networks_(series.networks()),
        swap_u8_(active_swap_patch_u8()) {}

  MatchCounts apply(MatchCounts base, const PreparedDelta& p) const {
    std::int64_t d_matches = 0;
    std::int64_t d_known = 0;
    switch (width_) {
      case 1: {
        // The swap class dominates (both endpoints known), and u8 is
        // the common packed width — route it through the dispatched
        // kernel; the gain/lose classes stay inline.
        const auto* row = reinterpret_cast<const std::uint8_t*>(row_);
        d_matches +=
            swap_u8_(row, p.idx_swap.data(), p.before_swap.data(),
                     p.after_swap.data(), p.idx_swap.size(), networks_);
        patch_rest(row, p, d_matches, d_known);
        break;
      }
      case 2: {
        const auto* row = reinterpret_cast<const std::uint16_t*>(row_);
        patch_swap(row, p, d_matches);
        patch_rest(row, p, d_matches, d_known);
        break;
      }
      default: {
        const auto* row = reinterpret_cast<const std::uint32_t*>(row_);
        patch_swap(row, p, d_matches);
        patch_rest(row, p, d_matches, d_known);
        break;
      }
    }
    base.matches = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(base.matches) + d_matches);
    base.mutual_known = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(base.mutual_known) + d_known);
    return base;
  }

 private:
  // Same exact integer arithmetic as apply_delta, with the
  // column-invariant kUnknownSite tests hoisted into prepare_delta: a
  // known endpoint that equals the column's value implies the column's
  // value is known, so only the gain/lose classes test it.
  template <typename T>
  static void patch_swap(const T* row_b, const PreparedDelta& p,
                         std::int64_t& d_matches) {
    const std::size_t n_swap = p.idx_swap.size();
    for (std::size_t t = 0; t < n_swap; ++t) {
      const SiteId b = row_b[p.idx_swap[t]];
      d_matches += (p.after_swap[t] == b);
      d_matches -= (p.before_swap[t] == b);
    }
  }

  template <typename T>
  static void patch_rest(const T* row_b, const PreparedDelta& p,
                         std::int64_t& d_matches, std::int64_t& d_known) {
    const std::size_t n_gain = p.idx_gain.size();
    for (std::size_t t = 0; t < n_gain; ++t) {
      const SiteId b = row_b[p.idx_gain[t]];
      d_matches += (p.after_gain[t] == b);
      d_known += (b != kUnknownSite);
    }
    const std::size_t n_lose = p.idx_lose.size();
    for (std::size_t t = 0; t < n_lose; ++t) {
      const SiteId b = row_b[p.idx_lose[t]];
      d_matches -= (p.before_lose[t] == b);
      d_known -= (b != kUnknownSite);
    }
  }

  const std::byte* row_;
  std::size_t width_;
  std::size_t networks_;
  SwapPatchU8Fn swap_u8_;
};

/// apply_delta over the prepared form — bit-identical to apply_delta on
/// the originating change-set (same exact integer arithmetic, with the
/// column-invariant kUnknownSite tests hoisted into prepare_delta).
MatchCounts apply_prepared(MatchCounts base, const PreparedDelta& delta,
                           const PackedSeries& series, std::size_t row_b);

}  // namespace fenrir::core
