// fenrir::core — packed similarity kernels: the integer core of Φ.
//
// gower_similarity() is exact but scalar: one branchy comparison per
// network, on 4-byte SiteIds. At production scale (millions of networks,
// hundreds of observations) the all-pairs matrix does T²·N of those, and
// the paper's own thesis — routing *recurs*, consecutive vectors differ
// in a tiny fraction of networks — goes unexploited. This header supplies
// the three fast layers the SimilarityMatrix builds on:
//
//  * PackedSeries — rows narrowed to the smallest element width that
//    holds every SiteId seen (uint8 for < 255 sites, uint16 below 64k,
//    uint32 otherwise). A packed row is 4×–1× denser than the
//    RoutingVector it came from, so the match kernels stream 4× more
//    networks per cache line and auto-vectorize to 16–32 lanes per step.
//  * count_matches kernels — blocked, branchless mask-accumulation loops
//    producing MatchCounts: how many networks match (both known, equal)
//    and how many are mutually known. Both UnknownPolicy variants of Φ
//    are pure functions of these two integers (phi_from_counts), so any
//    kernel that reproduces the counts reproduces Φ *bit-identically* —
//    the determinism contract the property tests enforce.
//  * delta_between / apply_delta — a sorted change-set between a row and
//    its predecessor, and an O(|Δ|) patch taking counts(prev, b) to
//    counts(cur, b). When churn is sparse this replaces an O(N) scan per
//    pair; counts stay exact integers, so Φ stays bit-identical.
//
// Weighted Φ accumulates doubles, where reordering changes the result
// bits. The weighted kernel therefore keeps the reference's in-order
// single accumulator and is branchless-select only (no SIMD reduction,
// no delta path) — still bit-identical, still faster than the branchy
// scalar loop on unpredictable data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/compare.h"
#include "core/vector.h"

namespace fenrir::io {
class SnapshotCodec;  // binary persistence (io/snapshot.h)
}  // namespace fenrir::io

namespace fenrir::core {

/// The integer core of unweighted Φ between two rows.
struct MatchCounts {
  std::uint64_t matches = 0;       // both known and equal
  std::uint64_t mutual_known = 0;  // both sides != kUnknownSite
};

/// The double core of weighted Φ (matched / denom, 0 if denom <= 0).
struct WeightedCounts {
  double matched = 0.0;
  double denom = 0.0;
};

/// Φ from integer counts — exactly compare.cc's divisions, so a kernel
/// producing the reference's counts produces the reference's bits.
inline double phi_from_counts(const MatchCounts& c, std::size_t n,
                              UnknownPolicy policy) {
  if (policy == UnknownPolicy::kPessimistic) {
    if (n == 0) return 0.0;
    return static_cast<double>(c.matches) / static_cast<double>(n);
  }
  if (c.mutual_known == 0) return 0.0;
  return static_cast<double>(c.matches) / static_cast<double>(c.mutual_known);
}

inline double phi_from_weighted(const WeightedCounts& c) {
  if (c.denom <= 0.0) return 0.0;
  return c.matched / c.denom;
}

/// Left-to-right sum of @p w — the bit-exact denominator the reference's
/// pessimistic weighted loop accumulates on every call, hoisted so the
/// matrix pays it once instead of once per pair.
double in_order_sum(std::span<const double> w);

/// One element of a change-set between a row and its predecessor.
struct DeltaEntry {
  std::uint32_t index = 0;  // network index
  SiteId before = kUnknownSite;
  SiteId after = kUnknownSite;
};

/// A time-series of routing vectors packed to the narrowest element type
/// that holds every SiteId appended so far. Appending a vector with a
/// larger id transparently re-packs the store one width up (ids only grow
/// as a dataset interns new sites, so widening is rare and amortizes).
class PackedSeries {
 public:
  PackedSeries() = default;

  /// Packs every row of @p dataset (width from the largest id present).
  static PackedSeries pack(const Dataset& dataset);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t networks() const noexcept { return networks_; }
  /// Bytes per element: 1, 2, or 4.
  std::size_t width() const noexcept { return width_; }

  /// Appends one packed row. The first row fixes networks(); later rows
  /// must match it (std::invalid_argument otherwise).
  void append(const RoutingVector& v);
  /// Drops the last row (for speculative appends, e.g. ModeBook's
  /// candidate row). No-op on an empty series.
  void pop_back() noexcept;
  /// Overwrites row @p dst with a copy of row @p src.
  void copy_row(std::size_t dst, std::size_t src);
  void clear() noexcept;

  /// MatchCounts between rows i and j: the blocked branchless kernel.
  MatchCounts counts(std::size_t i, std::size_t j) const;

  /// Weighted counts between rows i and j, mirroring the reference's
  /// accumulation order. For kPessimistic the denominator does not
  /// depend on the rows; pass the hoisted in_order_sum(w) as
  /// @p pessimistic_total and it is returned as .denom unchanged.
  WeightedCounts weighted_counts(std::size_t i, std::size_t j,
                                 std::span<const double> w,
                                 UnknownPolicy policy,
                                 double pessimistic_total) const;

  /// SiteId at (row, network) — random access for delta patching.
  SiteId value_at(std::size_t row, std::size_t n) const;

  /// Sorted change-set taking row @p from to row @p to (same series).
  std::vector<DeltaEntry> delta_between(std::size_t from, std::size_t to) const;

  /// Bounded change-set scan: fills @p out with delta_between(from, to),
  /// aborting as soon as it would exceed @p cap entries. Returns true when
  /// the full change-set fit; false when |Δ| > cap (@p out is cleared).
  /// An aborted scan stops at the (cap+1)-th mismatch, so probing a
  /// dissimilar row costs O(cap/density) lanes instead of O(N) plus a
  /// change-set allocation that would only be thrown away.
  bool delta_between_bounded(std::size_t from, std::size_t to, std::size_t cap,
                             std::vector<DeltaEntry>& out) const;

  /// Hint-prefetches the lines apply_delta will read in row @p row_b.
  /// The matrix's fill loop issues this a couple of pairs ahead so the
  /// patch's random reads overlap in the memory system instead of
  /// serialising one cache miss per entry.
  void prefetch_delta(std::size_t row_b,
                      std::span<const DeltaEntry> delta) const {
    if (row_b >= rows_) return;
    const std::byte* b = row_ptr(row_b);
#if defined(__GNUC__) || defined(__clang__)
    for (const DeltaEntry& d : delta) {
      __builtin_prefetch(b + static_cast<std::size_t>(d.index) * width_, 0, 1);
    }
#else
    (void)b;
#endif
  }

 private:
  friend MatchCounts apply_delta(MatchCounts, std::span<const DeltaEntry>,
                                 const PackedSeries&, std::size_t);
  friend class fenrir::io::SnapshotCodec;
  void widen_to(std::size_t width);
  const std::byte* row_ptr(std::size_t i) const {
    return data_.data() + i * networks_ * width_;
  }
  std::byte* row_ptr(std::size_t i) {
    return data_.data() + i * networks_ * width_;
  }

  std::size_t networks_ = 0;
  std::size_t rows_ = 0;
  std::size_t width_ = 1;
  std::vector<std::byte> data_;
};

/// Patches counts(prev, b) into counts(cur, b) given the change-set
/// delta_between(prev, cur): O(|Δ|) with one random access into row
/// @p row_b per entry. Exact integer arithmetic — bit-identical Φ.
MatchCounts apply_delta(MatchCounts base, std::span<const DeltaEntry> delta,
                        const PackedSeries& series, std::size_t row_b);

}  // namespace fenrir::core
