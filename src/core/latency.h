// fenrir::core — from similarity to performance (paper §2.8, Figure 4).
//
// Heatmaps say *that* routing changed; operators care what it did to
// users. Given per-network RTTs to the currently assigned catchment (from
// RIPE Atlas built-ins, Trinocular, or Fenrir's latency model), this
// module computes the per-catchment latency distribution (the paper plots
// p90 per site) and the weighted overall mean an operator would track.
#pragma once

#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "core/tables.h"
#include "core/vector.h"

namespace fenrir::core {

/// Per-catchment latency summary for one observation.
struct CatchmentLatency {
  struct PerSite {
    std::size_t samples = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double mean = 0.0;
  };
  /// Indexed by SiteId; sites with no samples have samples == 0.
  std::vector<PerSite> sites;
  /// Weight-averaged RTT across all networks with a sample.
  double weighted_mean = 0.0;
  std::size_t total_samples = 0;
};

/// Computes the summary. @p rtt_ms holds one RTT per network; entries that
/// are negative or NaN mean "no measurement" and are skipped, as are
/// networks with unknown catchment. @p weights may be empty (uniform).
CatchmentLatency catchment_latency(const RoutingVector& v,
                                   std::span<const double> rtt_ms,
                                   std::span<const double> weights,
                                   std::size_t site_count);

/// p90 RTT of one site over one observation; nullopt if no samples.
std::optional<double> site_p90(const RoutingVector& v,
                               std::span<const double> rtt_ms, SiteId site);

}  // namespace fenrir::core
