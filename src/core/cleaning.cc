#include "core/cleaning.h"

#include <algorithm>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace fenrir::core {

CleaningStats remove_incorrect(
    Dataset& dataset,
    const std::function<bool(std::size_t, NetId, SiteId)>& is_bogus) {
  obs::Span span("clean/remove_incorrect");
  CleaningStats stats;
  for (std::size_t t = 0; t < dataset.series.size(); ++t) {
    RoutingVector& v = dataset.series[t];
    if (!v.valid) continue;
    for (NetId n = 0; n < v.assignment.size(); ++n) {
      const SiteId s = v.assignment[n];
      if (s != kUnknownSite && is_bogus(t, n, s)) {
        v.assignment[n] = kUnknownSite;
        ++stats.incorrect_removed;
      }
    }
  }
  static obs::Counter& removed = obs::registry().counter(
      "fenrir_clean_incorrect_removed_total",
      "assignments demoted to unknown by remove_incorrect");
  removed.inc(stats.incorrect_removed);
  FENRIR_LOG(Debug).field("removed", stats.incorrect_removed)
      << "clean: remove_incorrect done";
  return stats;
}

CleaningStats remove_micro_catchments(Dataset& dataset,
                                      double min_peak_fraction) {
  obs::Span span("clean/micro_catchments");
  CleaningStats stats;
  const std::size_t sites = dataset.sites.size();
  // Peak share of known assignments per site across the series.
  std::vector<double> peak(sites, 0.0);
  for (const RoutingVector& v : dataset.series) {
    if (!v.valid) continue;
    const auto counts = aggregate(v, sites);
    std::uint64_t known = 0;
    for (SiteId s = 0; s < sites; ++s) {
      if (s != kUnknownSite) known += counts[s];
    }
    if (known == 0) continue;
    for (SiteId s = kFirstRealSite; s < sites; ++s) {
      peak[s] = std::max(peak[s], static_cast<double>(counts[s]) /
                                      static_cast<double>(known));
    }
  }

  std::vector<char> fold(sites, 0);
  for (SiteId s = kFirstRealSite; s < sites; ++s) {
    // Fold only sites that were ever observed; a site with zero peak was
    // simply never seen and needs no rewriting.
    if (peak[s] > 0.0 && peak[s] < min_peak_fraction) {
      fold[s] = 1;
      ++stats.micro_sites_folded;
    }
  }
  if (stats.micro_sites_folded == 0) return stats;

  for (RoutingVector& v : dataset.series) {
    if (!v.valid) continue;
    for (SiteId& s : v.assignment) {
      if (fold[s]) {
        s = kOtherSite;
        ++stats.micro_assignments_folded;
      }
    }
  }
  static obs::Counter& sites_folded = obs::registry().counter(
      "fenrir_clean_micro_sites_folded_total",
      "sites folded into other by remove_micro_catchments");
  static obs::Counter& assignments_folded = obs::registry().counter(
      "fenrir_clean_micro_assignments_folded_total",
      "assignments rewritten to other by remove_micro_catchments");
  sites_folded.inc(stats.micro_sites_folded);
  assignments_folded.inc(stats.micro_assignments_folded);
  FENRIR_LOG(Debug).field("sites", stats.micro_sites_folded)
          .field("assignments", stats.micro_assignments_folded)
      << "clean: micro-catchments folded";
  return stats;
}

CleaningStats interpolate_missing(Dataset& dataset,
                                  const InterpolateConfig& config) {
  obs::Span span("clean/interpolate");
  static obs::Counter& gaps_filled = obs::registry().counter(
      "fenrir_clean_gaps_filled_total",
      "unknown cells interpolated by interpolate_missing");
  CleaningStats stats;
  const std::size_t total = dataset.series.size();
  if (total == 0 || dataset.networks.size() == 0) return stats;

  // Work over valid observation indices only: outage slots neither donate
  // nor receive values, and a gap spanning an outage is not filled across
  // it (the outage breaks the run).
  std::vector<std::size_t> valid;
  for (std::size_t t = 0; t < total; ++t) {
    if (dataset.series[t].valid) valid.push_back(t);
  }
  const std::size_t vn = valid.size();
  if (vn == 0) return stats;

  for (NetId n = 0; n < dataset.networks.size(); ++n) {
    std::size_t i = 0;
    while (i < vn) {
      if (dataset.series[valid[i]].assignment[n] != kUnknownSite) {
        ++i;
        continue;
      }
      // Found a run of unknowns [i, j).
      std::size_t j = i;
      while (j < vn &&
             dataset.series[valid[j]].assignment[n] == kUnknownSite) {
        ++j;
      }
      const bool has_left = i > 0;
      const bool has_right = j < vn;
      const SiteId left =
          has_left ? dataset.series[valid[i - 1]].assignment[n] : kUnknownSite;
      const SiteId right =
          has_right ? dataset.series[valid[j]].assignment[n] : kUnknownSite;

      for (std::size_t k = i; k < j; ++k) {
        const std::size_t from_left = k - i + 1;   // distance to left donor
        const std::size_t from_right = j - k;      // distance to right donor
        SiteId fill = kUnknownSite;
        if (has_left && has_right) {
          // Paper rule: first half from the left, second half from the
          // right, each donor reaching at most max_distance.
          const bool left_half = from_left <= (j - i + 1) / 2;
          if (left_half && from_left <= config.max_distance) {
            fill = left;
          } else if (!left_half && from_right <= config.max_distance) {
            fill = right;
          }
        } else if (config.fill_edges && has_left) {
          fill = left;  // trailing gap: most recent successful observation
        } else if (config.fill_edges && has_right) {
          fill = right;  // leading gap: next successful observation
        }
        if (fill != kUnknownSite) {
          dataset.series[valid[k]].assignment[n] = fill;
          ++stats.gaps_filled;
        }
      }
      i = j;
    }
  }
  gaps_filled.inc(stats.gaps_filled);
  FENRIR_LOG(Debug).field("filled", stats.gaps_filled)
          .field("limit", config.max_distance)
      << "clean: interpolation done";
  return stats;
}

}  // namespace fenrir::core
