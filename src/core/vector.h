// fenrir::core — routing vectors (the paper's D(t)) and aggregates (A(t)).
//
// A RoutingVector is the catchment state of a service at one time: one
// SiteId per network. aggregate() produces the |S|-long per-site counts
// A(t,s) = Σ_n D*(t,n,s) (paper §2.2); one_hot() materializes a row of the
// normalized matrix D* for callers that need the paper's matrix form.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/tables.h"
#include "core/time.h"

namespace fenrir::core {

struct RoutingVector {
  TimePoint time = 0;
  /// assignment[n] = catchment SiteId of network n (kUnknownSite if the
  /// measurement has no observation for n).
  std::vector<SiteId> assignment;
  /// False for collection outages (the paper's blank 2023-07..12 region):
  /// the slot holds the timeline position, but comparisons skip it.
  bool valid = true;

  std::size_t network_count() const noexcept { return assignment.size(); }
};

/// Per-site network counts A(t). Indexed by SiteId; size = site_count.
std::vector<std::uint64_t> aggregate(const RoutingVector& v,
                                     std::size_t site_count);

/// Weighted aggregate: Σ weights[n] over networks in each site.
std::vector<double> aggregate_weighted(const RoutingVector& v,
                                       std::span<const double> weights,
                                       std::size_t site_count);

/// One row of the one-hot matrix D*(t,n,·): 1 at the assigned site.
std::vector<std::uint8_t> one_hot_row(SiteId assigned, std::size_t site_count);

/// Fraction of networks with a known (non-unknown) assignment.
double known_fraction(const RoutingVector& v);

/// A time-ordered series of routing vectors sharing one site/network
/// universe. This is the object the analysis stages (distance matrix,
/// clustering, mode detection) operate on.
struct Dataset {
  std::string name;  // e.g. "B-Root/Verfploeter"
  SiteTable sites;
  NetworkTable networks;
  std::vector<RoutingVector> series;
  /// Per-network weights D_w (paper §2.5); empty means uniform 1.0.
  std::vector<double> weights;

  /// Index of the first series entry at or after @p t, or size() if none.
  std::size_t index_at(TimePoint t) const;

  /// Throws std::invalid_argument if any vector's size disagrees with the
  /// network table or weights; call after construction.
  void check_consistent() const;
};

}  // namespace fenrir::core
