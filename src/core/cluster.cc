#include "core/cluster.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fenrir::core {

namespace {

/// Union-find over dendrogram cluster ids.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

std::vector<std::size_t> valid_indices(const SimilarityMatrix& m) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.valid(i)) out.push_back(i);
  }
  return out;
}

/// Converts SLINK's pointer representation (pi, lambda) to a merge list.
Dendrogram pointer_to_dendrogram(const std::vector<std::size_t>& pi,
                                 const std::vector<double>& lambda) {
  const std::size_t n = pi.size();
  Dendrogram d;
  d.leaves = n;
  if (n < 2) return d;

  std::vector<std::size_t> order(n - 1);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (lambda[a] != lambda[b]) return lambda[a] < lambda[b];
    return a < b;
  });

  Dsu dsu(n);
  // cluster_of[root leaf] = dendrogram cluster id of the component.
  std::vector<std::size_t> cluster_of(n);
  std::iota(cluster_of.begin(), cluster_of.end(), std::size_t{0});

  for (const std::size_t j : order) {
    const std::size_t ra = dsu.find(j);
    const std::size_t rb = dsu.find(pi[j]);
    if (ra == rb) {
      throw std::logic_error("SLINK pointer representation is inconsistent");
    }
    Dendrogram::Merge m;
    m.a = cluster_of[ra];
    m.b = cluster_of[rb];
    m.height = lambda[j];
    dsu.unite(ra, rb);
    cluster_of[dsu.find(ra)] = n + d.merges.size();
    d.merges.push_back(m);
  }
  return d;
}

/// Lance–Williams coefficients for the supported linkages.
double lw_update(Linkage linkage, double dki, double dkj, double ni,
                 double nj) {
  switch (linkage) {
    case Linkage::kSingle:
      return std::min(dki, dkj);
    case Linkage::kComplete:
      return std::max(dki, dkj);
    case Linkage::kAverage:
      return (ni * dki + nj * dkj) / (ni + nj);
  }
  throw std::invalid_argument("unknown linkage");
}

Dendrogram nn_chain_dendrogram(const SimilarityMatrix& matrix,
                               Linkage linkage) {
  const auto idx = valid_indices(matrix);
  const std::size_t n = idx.size();
  Dendrogram out;
  out.leaves = n;
  if (n < 2) return out;

  // Working full distance matrix over slots 0..n-1.
  std::vector<double> dist(n * n, 0.0);
  const auto D = [&](std::size_t a, std::size_t b) -> double& {
    return dist[a * n + b];
  };
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) D(a, b) = matrix.dist(idx[a], idx[b]);
    }
  }

  std::vector<char> active(n, 1);
  std::vector<double> size(n, 1.0);
  std::vector<std::size_t> cluster_id(n);
  std::iota(cluster_id.begin(), cluster_id.end(), std::size_t{0});
  std::size_t remaining = n;

  std::vector<std::size_t> chain;
  chain.reserve(n);

  const auto nearest_of = [&](std::size_t a) {
    std::size_t best = n;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a) continue;
      if (D(a, k) < best_d || (D(a, k) == best_d && k < best)) {
        best_d = D(a, k);
        best = k;
      }
    }
    return best;
  };

  while (remaining > 1) {
    if (chain.empty()) {
      // Start from the lowest active slot (deterministic).
      for (std::size_t a = 0; a < n; ++a) {
        if (active[a]) {
          chain.push_back(a);
          break;
        }
      }
    }
    const std::size_t a = chain.back();
    const std::size_t b = nearest_of(a);
    if (chain.size() >= 2 && b == chain[chain.size() - 2]) {
      // Reciprocal nearest neighbours: merge a and b.
      chain.pop_back();
      chain.pop_back();
      const double h = D(a, b);
      const std::size_t keep = std::min(a, b);
      const std::size_t drop = std::max(a, b);
      Dendrogram::Merge m;
      m.a = cluster_id[keep];
      m.b = cluster_id[drop];
      m.height = h;
      cluster_id[keep] = n + out.merges.size();
      out.merges.push_back(m);

      for (std::size_t k = 0; k < n; ++k) {
        if (!active[k] || k == keep || k == drop) continue;
        const double updated =
            lw_update(linkage, D(k, keep), D(k, drop), size[keep], size[drop]);
        D(k, keep) = updated;
        D(keep, k) = updated;
      }
      size[keep] += size[drop];
      active[drop] = 0;
      --remaining;
    } else {
      chain.push_back(b);
    }
  }
  return out;
}

}  // namespace

std::vector<std::size_t> Clustering::members(int c) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == c) out.push_back(i);
  }
  return out;
}

std::size_t Clustering::clusters_with_at_least(std::size_t n) const {
  std::vector<std::size_t> sizes(cluster_count, 0);
  for (const int l : labels) {
    if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
  }
  std::size_t count = 0;
  for (const std::size_t s : sizes) count += (s >= n);
  return count;
}

Dendrogram slink_dendrogram(const SimilarityMatrix& matrix) {
  const auto idx = valid_indices(matrix);
  const std::size_t n = idx.size();
  if (n == 0) return Dendrogram{};

  std::vector<std::size_t> pi(n, 0);
  std::vector<double> lambda(n, std::numeric_limits<double>::infinity());
  std::vector<double> m(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    pi[i] = i;
    lambda[i] = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < i; ++j) m[j] = matrix.dist(idx[j], idx[i]);
    for (std::size_t j = 0; j < i; ++j) {
      if (lambda[j] >= m[j]) {
        m[pi[j]] = std::min(m[pi[j]], lambda[j]);
        lambda[j] = m[j];
        pi[j] = i;
      } else {
        m[pi[j]] = std::min(m[pi[j]], m[j]);
      }
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (lambda[j] >= lambda[pi[j]]) pi[j] = i;
    }
  }
  return pointer_to_dendrogram(pi, lambda);
}

Dendrogram build_dendrogram(const SimilarityMatrix& matrix, Linkage linkage) {
  if (linkage == Linkage::kSingle) return slink_dendrogram(matrix);
  return nn_chain_dendrogram(matrix, linkage);
}

Clustering cut_dendrogram(const Dendrogram& dendrogram,
                          const SimilarityMatrix& matrix, double threshold) {
  const auto idx = valid_indices(matrix);
  const std::size_t n = idx.size();
  if (n != dendrogram.leaves) {
    throw std::invalid_argument("cut_dendrogram: matrix/dendrogram mismatch");
  }

  // Apply merges with height <= threshold. Cluster ids n+k materialize
  // only if their merge applies; for monotone linkages children always
  // materialize before parents, but we guard regardless.
  const std::size_t total_ids = n + dendrogram.merges.size();
  Dsu dsu(total_ids);
  std::vector<char> materialized(total_ids, 0);
  for (std::size_t i = 0; i < n; ++i) materialized[i] = 1;
  for (std::size_t k = 0; k < dendrogram.merges.size(); ++k) {
    const auto& m = dendrogram.merges[k];
    if (m.height > threshold) continue;
    if (!materialized[m.a] || !materialized[m.b]) continue;
    dsu.unite(m.a, m.b);
    dsu.unite(n + k, m.a);
    materialized[n + k] = 1;
  }

  Clustering out;
  out.threshold = threshold;
  out.labels.assign(matrix.size(), Clustering::kNoise);
  std::vector<int> root_label(total_ids, -1);
  int next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t root = dsu.find(v);
    if (root_label[root] < 0) root_label[root] = next++;
    out.labels[idx[v]] = root_label[root];
  }
  out.cluster_count = static_cast<std::size_t>(next);
  return out;
}

Clustering cluster_hac(const SimilarityMatrix& matrix, Linkage linkage,
                       double threshold) {
  return cut_dendrogram(build_dendrogram(matrix, linkage), matrix, threshold);
}

Clustering cluster_adaptive(const SimilarityMatrix& matrix, Linkage linkage,
                            const AdaptiveConfig& config) {
  const Dendrogram d = build_dendrogram(matrix, linkage);
  for (double t = 0.0; t <= 1.0 + 1e-9; t += config.step) {
    Clustering c = cut_dendrogram(d, matrix, t);
    // The paper's acceptance rule: fewer than max_clusters clusters, each
    // holding at least min_observations valid observations (transition
    // singletons force the threshold up until they join a mode).
    if (c.cluster_count >= 1 && c.cluster_count < config.max_clusters &&
        c.clusters_with_at_least(config.min_observations) ==
            c.cluster_count) {
      return c;
    }
  }
  return cut_dendrogram(d, matrix, 1.0);
}

}  // namespace fenrir::core
