// fenrir::core — transition matrices between two routing vectors
// (paper §2.7, Table 3).
//
// T(t,t',s,s') counts the networks that were in catchment s at time t and
// are in s' at time t'. A quiescent service yields a diagonal matrix equal
// to A(t); mass off the diagonal is movement — e.g. the paper's 3097
// networks moving STR→NAP during the G-Root drain.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/tables.h"
#include "core/vector.h"

namespace fenrir::core {

class TransitionMatrix {
 public:
  /// Counts transitions between two equally-sized vectors.
  static TransitionMatrix compute(const RoutingVector& from,
                                  const RoutingVector& to,
                                  std::size_t site_count);

  std::size_t site_count() const noexcept { return sites_; }

  std::uint64_t count(SiteId from, SiteId to) const {
    return counts_.at(index(from, to));
  }

  /// Networks that stayed in the same catchment (diagonal sum, excluding
  /// unknown→unknown which is absence of data, not stability).
  std::uint64_t stayed() const;
  /// Networks that changed catchment (off-diagonal sum).
  std::uint64_t moved() const;
  /// Row sum: size of catchment s in the initial vector.
  std::uint64_t row_total(SiteId s) const;
  /// Column sum: size of catchment s in the subsequent vector.
  std::uint64_t col_total(SiteId s) const;

  struct Flow {
    SiteId from = 0, to = 0;
    std::uint64_t count = 0;
  };
  /// The k largest off-diagonal flows, descending.
  std::vector<Flow> top_movers(std::size_t k) const;

  /// Renders in the paper's Table 3 layout: initial states as rows,
  /// subsequent states as columns, using @p sites for labels. Unknown is
  /// shown only if it carries any mass.
  void print(const SiteTable& sites, std::ostream& out) const;

 private:
  explicit TransitionMatrix(std::size_t sites)
      : sites_(sites), counts_(sites * sites, 0) {}
  std::size_t index(SiteId from, SiteId to) const {
    if (from >= sites_ || to >= sites_) {
      throw std::out_of_range("TransitionMatrix index");
    }
    return static_cast<std::size_t>(from) * sites_ + to;
  }

  std::size_t sites_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace fenrir::core
