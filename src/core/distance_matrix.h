// fenrir::core — all-pairs similarity over a time series (paper §2.7).
//
// SimilarityMatrix holds Φ(t,t') for every pair of observations in a
// Dataset. It is the input to the heatmap renderer and to hierarchical
// clustering (as distance 1-Φ). Invalid observations (collection outages)
// keep their timeline slot but carry no similarity values — they render
// blank and are excluded from clustering, matching the paper's blank
// 2023-07..12 band in Figure 3.
//
// Construction is incremental: append() computes exactly the one new
// row, choosing per row between
//   * the packed kernels (compare_kernels.h) — O(N) per pair but SIMD-
//     dense, and
//   * delta patching — O(|Δ|) per pair from the previous row's cached
//     match counts, taken when the vector's churn against its
//     predecessor is below kDeltaDensityThreshold (unweighted Φ only;
//     weighted Φ would have to reorder double additions to go fast,
//     which breaks bit-identity).
// compute() is an append() loop, so batch analysis, `fenrirctl watch`,
// and ModeBook share one code path; every path is bit-identical to the
// scalar reference (compute_reference), which the property tests
// enforce. Path choice and realized savings are exported as
// fenrir_phi_* metrics (observation only — never a result input).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/compare.h"
#include "core/compare_kernels.h"
#include "core/vector.h"

namespace fenrir::core {

class SimilarityMatrix {
 public:
  /// Churn fraction |Δ|/N at or below which append() patches the
  /// previous row's counts instead of re-scanning packed rows. Delta
  /// patching touches ~|Δ| random elements per pair versus N sequential
  /// SIMD lanes, so the break-even sits well below the SIMD width.
  static constexpr double kDeltaDensityThreshold = 0.05;

  /// Computes Φ for all pairs of @p dataset.series (weights from the
  /// dataset; uniform if empty) by appending one row at a time. Each
  /// row parallelizes over its columns with @p threads workers (0 =
  /// hardware concurrency, 1 = serial); the result is bit-identical for
  /// any thread count and to compute_reference().
  static SimilarityMatrix compute(
      const Dataset& dataset,
      UnknownPolicy policy = UnknownPolicy::kPessimistic,
      unsigned threads = 0);

  /// The scalar reference: serial gower_similarity() per pair, no
  /// packing, no deltas. The oracle the fast paths are property-tested
  /// against and the baseline BM_SimilarityMatrixLowChurnScalar times.
  /// Reference matrices are read-only — append() on one throws.
  static SimilarityMatrix compute_reference(
      const Dataset& dataset,
      UnknownPolicy policy = UnknownPolicy::kPessimistic);

  /// An empty matrix ready to be grown with append(). @p weights are the
  /// per-network D_w (empty = uniform); @p threads as in compute().
  explicit SimilarityMatrix(UnknownPolicy policy = UnknownPolicy::kPessimistic,
                            std::vector<double> weights = {},
                            unsigned threads = 1);

  /// Appends one observation, computing only the new row: O(T·N) on the
  /// packed kernels, O(T·|Δ|) when the vector is a sparse change set
  /// against its predecessor. A matrix grown by append() is
  /// bit-identical to compute() over the same series — this is what
  /// keeps `fenrirctl watch` at O(T·Δ) per tick instead of O(T²·N).
  void append(const RoutingVector& v);

  std::size_t size() const noexcept { return n_; }

  /// Φ(i,j); 0.0 when either index is invalid. phi(i,i) is computed like
  /// any pair (under the pessimistic policy a vector with unknowns is not
  /// 100% similar to itself — the paper's Verfploeter ceiling).
  double phi(std::size_t i, std::size_t j) const {
    return values_.at(tri_index(i, j));
  }
  double dist(std::size_t i, std::size_t j) const { return 1.0 - phi(i, j); }

  bool valid(std::size_t i) const { return valid_.at(i); }
  std::size_t valid_count() const;

  /// Minimum / maximum Φ over all valid pairs drawn from two index sets
  /// (used for the paper's "Φ(M_i, M_ii) = [0.11, 0.48]" mode ranges).
  /// Each unordered pair {i,j} counts once even when the sets overlap.
  /// Returns {0,0} if no valid pair exists.
  struct Range {
    double min = 0.0, max = 0.0;
    bool any = false;
  };
  Range range_between(const std::vector<std::size_t>& a,
                      const std::vector<std::size_t>& b) const;
  /// Range over distinct pairs within one index set.
  Range range_within(const std::vector<std::size_t>& a) const;
  /// Median Φ between two index sets (0 if no valid pair); distinct
  /// unordered pairs only, so overlapping sets do not skew the median.
  double median_between(const std::vector<std::size_t>& a,
                        const std::vector<std::size_t>& b) const;

 private:
  std::size_t tri_index(std::size_t i, std::size_t j) const {
    if (i >= n_ || j >= n_) throw std::out_of_range("SimilarityMatrix index");
    if (i < j) std::swap(i, j);
    return i * (i + 1) / 2 + j;
  }

  /// Canonical tri_index keys of all distinct valid unordered pairs
  /// drawn from a × b (sorted, deduplicated).
  std::vector<std::size_t> pair_keys(const std::vector<std::size_t>& a,
                                     const std::vector<std::size_t>& b) const;

  std::size_t n_ = 0;
  std::vector<double> values_;  // lower triangle incl. diagonal
  std::vector<char> valid_;

  UnknownPolicy policy_ = UnknownPolicy::kPessimistic;
  std::vector<double> weights_;
  double total_weight_ = 0.0;  // in-order sum of weights_ (pessimistic denom)
  unsigned threads_ = 1;
  PackedSeries packed_;  // one row per appended observation
  /// counts(last row, j) for j = 0..last — what the next row's delta
  /// path patches. Meaningful only when prev_counts_usable_.
  std::vector<MatchCounts> prev_counts_;
  bool prev_counts_usable_ = false;
};

}  // namespace fenrir::core
