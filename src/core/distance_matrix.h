// fenrir::core — all-pairs similarity over a time series (paper §2.7).
//
// SimilarityMatrix holds Φ(t,t') for every pair of observations in a
// Dataset. It is the input to the heatmap renderer and to hierarchical
// clustering (as distance 1-Φ). Invalid observations (collection outages)
// keep their timeline slot but carry no similarity values — they render
// blank and are excluded from clustering, matching the paper's blank
// 2023-07..12 band in Figure 3.
//
// Construction is incremental: append() computes exactly the one new
// row, choosing per row between
//   * the packed kernels (compare_kernels.h) — O(N) per pair but SIMD-
//     dense,
//   * delta patching from an *anchor* — O(|Δ|) per pair from a cached
//     row of match counts. Anchors are the last kRecentAnchors valid
//     rows plus up to kMaxRepresentativeAnchors "representative" rows
//     (rows that once paid the packed kernels — novel routing states —
//     or rows pinned by a caller, e.g. a ModeBook representative's
//     first occurrence). The paper's thesis is that routing *recurs*:
//     when a series flips back to a mode it held before, the cheap
//     anchor is not the immediate predecessor but the old mode's row,
//     and patching from it keeps the flip at O(|Δ|) instead of O(N)
//     per pair.
// Churn against each anchor is first *estimated* without touching the
// vectors: |Δ(t, anchor)| ≤ Σ|Δ| of the per-step change sets along the
// chain between them (triangle inequality over Hamming distance), a
// running sum each anchor maintains. Only when every chained bound
// misses the kDeltaDensityThreshold does append() probe anchors with
// one exact O(N) change-set scan each — still far cheaper than the
// O(T·N) kernel row — and it falls back to the packed kernels when no
// probe clears the threshold either. Delta patching applies to
// unweighted Φ only (weighted Φ would have to reorder double additions
// to go fast, which breaks bit-identity).
//
// compute() is an append() loop, so batch analysis, `fenrirctl watch`,
// and ModeBook share one code path; every path is bit-identical to the
// scalar reference (compute_reference), which the property tests
// enforce. Path choice and realized savings are exported as
// fenrir_phi_* / fenrir_phi_anchor_* metrics (observation only — never
// a result input).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/compare.h"
#include "core/compare_kernels.h"
#include "core/vector.h"

namespace fenrir::io {
class SnapshotCodec;  // binary persistence (io/snapshot.h)
class SegmentCodec;   // segment-store persistence (io/segment_store.h)
}  // namespace fenrir::io

namespace fenrir::core {

/// Lower-triangle Φ storage (row-major, diagonal included) whose row
/// prefix may be *borrowed* from a read-only mapping instead of owned.
/// A segment-store resume mmaps sealed segments and adopts their Φ rows
/// in place — one pointer per row — so warm-start cost stays flat in
/// history length; rows appended afterwards live in the owned vector.
/// Borrowed rows always form a strict prefix (they are the oldest
/// history), which keeps the owned offset arithmetic exact:
/// owned_off(i) = i(i+1)/2 − m(m+1)/2 for m borrowed rows.
class TriangleStore {
 public:
  std::size_t rows() const noexcept { return rows_; }
  std::size_t mapped_rows() const noexcept { return mapped_.size(); }

  /// Φ at (i, j); requires j <= i < rows() (callers canonicalize).
  double get(std::size_t i, std::size_t j) const {
    return i < mapped_.size() ? mapped_[i][j] : owned_[owned_off(i) + j];
  }

  /// Row @p i's columns 0..i inclusive.
  const double* row(std::size_t i) const {
    return i < mapped_.size() ? mapped_[i] : owned_.data() + owned_off(i);
  }

  /// Appends one zero-filled owned row of length rows()+1.
  void push_row() {
    owned_.resize(owned_.size() + rows_ + 1, 0.0);
    ++rows_;
  }

  /// Mutable access to an owned row; @p i must be >= mapped_rows()
  /// (borrowed pages are immutable).
  double* owned_row(std::size_t i) { return owned_.data() + owned_off(i); }

  /// Borrows @p row (columns 0..rows() inclusive) as the next row. Only
  /// legal while no owned rows exist — borrowed rows are a prefix.
  void adopt_row(const double* row) {
    if (!owned_.empty()) {
      throw std::logic_error("TriangleStore: adopt_row after owned rows");
    }
    mapped_.push_back(row);
    ++rows_;
  }

  /// Pins whatever mapping the borrowed rows point into for the
  /// store's lifetime.
  void set_keepalive(std::shared_ptr<const void> k) {
    keepalive_ = std::move(k);
  }

  void reserve_rows(std::size_t rows) {
    if (rows <= rows_) return;
    const std::size_t m = mapped_.size();
    owned_.reserve(rows * (rows + 1) / 2 - m * (m + 1) / 2);
  }

  /// Owned-only bulk (re)initialization: @p n zeroed rows, borrow
  /// dropped. The snapshot decoder fills owned_data() in one bulk read.
  void assign_owned(std::size_t n) {
    mapped_.clear();
    keepalive_.reset();
    owned_.assign(n * (n + 1) / 2, 0.0);
    rows_ = n;
  }
  double* owned_data() noexcept { return owned_.data(); }
  const double* owned_data() const noexcept { return owned_.data(); }
  std::size_t owned_count() const noexcept { return owned_.size(); }

  void clear() noexcept {
    rows_ = 0;
    mapped_.clear();
    owned_.clear();
    keepalive_.reset();
  }

 private:
  std::size_t owned_off(std::size_t i) const {
    const std::size_t m = mapped_.size();
    return i * (i + 1) / 2 - m * (m + 1) / 2;
  }

  std::size_t rows_ = 0;
  std::vector<const double*> mapped_;  // borrowed prefix, one ptr per row
  std::vector<double> owned_;          // rows mapped_.size()..rows_-1
  std::shared_ptr<const void> keepalive_;
};

class SimilarityMatrix {
 public:
  /// Churn fraction |Δ|/N at or below which append() patches an
  /// anchor's cached counts instead of re-scanning packed rows. Delta
  /// patching touches ~|Δ| random elements per pair versus N sequential
  /// SIMD lanes, so the break-even sits well below the SIMD width.
  static constexpr double kDeltaDensityThreshold = 0.05;

  /// How many recent valid rows keep a cached counts row (the newest is
  /// the classic predecessor anchor; the older ones catch short-period
  /// mode alternation without a probe).
  static constexpr std::size_t kRecentAnchors = 4;

  /// Cap on representative anchors (novel-state rows auto-pinned on a
  /// kernel fallback, plus pin_anchor() rows). Least-recently-chosen is
  /// evicted beyond the cap.
  static constexpr std::size_t kMaxRepresentativeAnchors = 32;

  /// Computes Φ for all pairs of @p dataset.series (weights from the
  /// dataset; uniform if empty) by appending one row at a time. Each
  /// row parallelizes over its columns with @p threads workers (0 =
  /// hardware concurrency, 1 = serial); the result is bit-identical for
  /// any thread count and to compute_reference().
  static SimilarityMatrix compute(
      const Dataset& dataset,
      UnknownPolicy policy = UnknownPolicy::kPessimistic,
      unsigned threads = 0);

  /// The scalar reference: serial gower_similarity() per pair, no
  /// packing, no deltas. The oracle the fast paths are property-tested
  /// against and the baseline BM_SimilarityMatrixLowChurnScalar times.
  /// Reference matrices are read-only — append() on one throws.
  static SimilarityMatrix compute_reference(
      const Dataset& dataset,
      UnknownPolicy policy = UnknownPolicy::kPessimistic);

  /// An empty matrix ready to be grown with append(). @p weights are the
  /// per-network D_w (empty = uniform); @p threads as in compute().
  explicit SimilarityMatrix(UnknownPolicy policy = UnknownPolicy::kPessimistic,
                            std::vector<double> weights = {},
                            unsigned threads = 1);

  /// Appends one observation, computing only the new row: O(T·N) on the
  /// packed kernels, O(T·|Δ|) when the vector is a sparse change set
  /// against some anchor. A matrix grown by append() is bit-identical
  /// to compute() over the same series — this is what keeps
  /// `fenrirctl watch` at O(T·Δ) per tick instead of O(T²·N).
  void append(const RoutingVector& v);

  /// Appends @p batch observations at once. Produces exactly the same
  /// matrix as an append() loop over the same vectors (bit-identical —
  /// every route to a row's counts is exact integer arithmetic, so path
  /// choice affects time only), but restructures the work for locality:
  /// anchor selection runs first for the whole batch, then the columns
  /// against the existing rows fill column-outer — each old packed row
  /// is loaded once and patched against every batch row while it is
  /// cache-hot, instead of being re-fetched once per appended row — and
  /// the batch×batch corner fills row-major off the already-computed
  /// counts. Ingest paths that buffer observations (`fenrirctl analyze
  /// --matrix-cache` warm appends, watch resume rebuilds, Campaign epoch
  /// folds) and compute() route through this. Weighted matrices fall
  /// back to the plain append loop (no cached counts to batch).
  void append_batch(std::span<const RoutingVector> batch);

  /// Pre-sizes the packed store, value triangle, and validity bits for
  /// @p rows total observations (no-op when already that large). Ingest
  /// paths that know how much history they are about to replay — a
  /// matrix-cache warm append, a watch-resume rebuild, an epoch fold —
  /// call this so the appends grow storage once instead of reallocating
  /// (and copying the whole triangle) mid-stream.
  void reserve(std::size_t rows) {
    if (rows <= n_) return;
    packed_.reserve(rows);
    values_.reserve_rows(rows);
    valid_.reserve(rows);
  }

  /// Pins @p row (a valid, already-appended observation) as a
  /// representative anchor, so later rows that recur to its routing
  /// state patch from it. `fenrirctl watch` pins each ModeBook
  /// representative's first occurrence; rows that fell back to the
  /// packed kernels (novel states) are pinned automatically. Cheap when
  /// the row is still an anchor (the usual case: the row just
  /// appended); otherwise its counts row is recomputed at O(T·N).
  /// No-op on weighted matrices and rows already pinned.
  void pin_anchor(std::size_t row);

  /// Caps the anchor set: @p recent recent rows, @p representatives
  /// pinned rows (0,0 disables delta patching entirely; 1,0 is the
  /// predecessor-only delta path of earlier builds — the baseline
  /// BM_SimilarityMatrixPeriodicPredecessor times). Affects time only,
  /// never values. Existing anchors beyond the new caps are dropped.
  void set_anchor_limits(std::size_t recent, std::size_t representatives);

  std::size_t size() const noexcept { return n_; }

  /// Row @p row's anchor-chain base is absent: the row paid the packed
  /// kernels (a novel routing state), was invalid or weighted, or came
  /// from a snapshot that predates chain tracking.
  static constexpr std::size_t kNoAnchorRow =
      static_cast<std::size_t>(-1);

  /// The anchor chain append()/append_batch() walked ingesting @p row:
  /// the row it delta-patched from first, then that row's own base, and
  /// so on, up to @p max_depth entries. Empty for kernel-fallback rows
  /// and rows loaded from a snapshot (chains are observation-only
  /// lineage, not persisted state — they feed DecisionRecords and never
  /// steer a value).
  std::vector<std::size_t> anchor_chain(std::size_t row,
                                        std::size_t max_depth = 8) const;

  /// One observation reconstructed from persistent storage: host-order
  /// packed assignment bytes plus the precomputed Φ row (columns
  /// 0..row inclusive). io::SegmentCodec builds these straight off
  /// mapped segment pages (adopt_rows, zero-copy) or from decoded
  /// records (append_precomputed, the copy fallback).
  struct AdoptedRow {
    const std::byte* packed = nullptr;
    const double* phi = nullptr;
    bool valid = false;
    std::size_t anchor_of = kNoAnchorRow;
  };

  /// Adopts @p rows as the matrix's entire contents without copying or
  /// recomputing Φ: packed bytes and Φ rows stay where they are (mapped
  /// segment pages), pinned by @p keepalive. Requires an empty matrix;
  /// @p width is the shared packed element width of every row. Anchors
  /// start empty — they are time-only state the caller re-pins.
  void adopt_rows(std::size_t networks, std::size_t width,
                  std::span<const AdoptedRow> rows,
                  std::shared_ptr<const void> keepalive);

  /// Copy-path twin of adopt_rows for one row: appends a row whose
  /// packed bytes (@p src_width wide, host order) and Φ values were
  /// already computed — a tail record, a big-endian or mixed-width
  /// segment — without re-running the kernels. The matrix must have its
  /// network count set (adopt_rows with an empty span does that).
  void append_precomputed(const AdoptedRow& row, std::size_t src_width);

  UnknownPolicy policy() const noexcept { return policy_; }
  const std::vector<double>& weights() const noexcept { return weights_; }

  /// Φ(i,j); 0.0 when either index is invalid. phi(i,i) is computed like
  /// any pair (under the pessimistic policy a vector with unknowns is not
  /// 100% similar to itself — the paper's Verfploeter ceiling).
  double phi(std::size_t i, std::size_t j) const {
    if (i >= n_ || j >= n_) throw std::out_of_range("SimilarityMatrix index");
    if (i < j) std::swap(i, j);
    return values_.get(i, j);
  }
  double dist(std::size_t i, std::size_t j) const { return 1.0 - phi(i, j); }

  bool valid(std::size_t i) const { return valid_.at(i); }
  std::size_t valid_count() const;

  /// Minimum / maximum Φ over all valid pairs drawn from two index sets
  /// (used for the paper's "Φ(M_i, M_ii) = [0.11, 0.48]" mode ranges).
  /// Each unordered pair {i,j} counts once even when the sets overlap.
  /// Returns {0,0} if no valid pair exists.
  struct Range {
    double min = 0.0, max = 0.0;
    bool any = false;
  };
  Range range_between(const std::vector<std::size_t>& a,
                      const std::vector<std::size_t>& b) const;
  /// Range over distinct pairs within one index set.
  Range range_within(const std::vector<std::size_t>& a) const;
  /// Median Φ between two index sets (0 if no valid pair); distinct
  /// unordered pairs only, so overlapping sets do not skew the median.
  double median_between(const std::vector<std::size_t>& a,
                        const std::vector<std::size_t>& b) const;

 private:
  friend class io::SnapshotCodec;
  friend class io::SegmentCodec;

  /// One anchor: a row whose exact counts(row, j) are cached for every
  /// column j, plus the chained upper bound on |Δ(row, latest)|.
  struct AnchorRow {
    std::size_t row = 0;
    /// counts(row, j) for j = 0..n_-1, extended by one entry per
    /// append (counts(row, i) = counts(i, row), which the new row just
    /// computed). Entries at invalid columns are zero placeholders and
    /// never read.
    std::vector<MatchCounts> counts;
    /// Running Σ|Δ| of per-step change sets since the bound was last
    /// exact — an upper bound on |Δ(row, latest)| by the triangle
    /// inequality. Refreshed to the exact size on every probe/patch.
    std::size_t est_delta = 0;
    /// append counter at the last time this anchor was chosen (LRU
    /// eviction of representatives).
    std::uint64_t last_used = 0;
  };

  /// Canonical (row >= col) index pairs of all distinct valid unordered
  /// pairs drawn from a × b (sorted, deduplicated).
  std::vector<std::pair<std::size_t, std::size_t>> pair_keys(
      const std::vector<std::size_t>& a,
      const std::vector<std::size_t>& b) const;

  AnchorRow* find_anchor(std::size_t row);
  void pin_representative(AnchorRow anchor);

  /// Shared head of append()/append_batch() for unweighted matrices:
  /// extends every anchor's chained bound by row @p i's step change set,
  /// picks the cheapest anchor (chained bound → bounded probes →
  /// nullptr = kernel fallback), and records the per-row path metrics.
  /// On success @p delta holds the realized change set against the
  /// returned anchor and @p chose_rep says whether it is a
  /// representative (the caller owns the refresh-to-latest step, whose
  /// counts come from the fill).
  AnchorRow* select_anchor(std::size_t i, std::vector<DeltaEntry>& delta,
                           bool& chose_rep);

  /// One append_batch() chunk (bounded so the transient per-row counts
  /// stay a few MB): plan anchors sequentially, fill old columns
  /// column-outer, fill the corner row-major, then rebuild/extend the
  /// anchor counts from the computed rows.
  void append_chunk(std::span<const RoutingVector> batch);

  std::size_t n_ = 0;
  TriangleStore values_;  // lower triangle incl. diagonal
  std::vector<char> valid_;

  UnknownPolicy policy_ = UnknownPolicy::kPessimistic;
  std::vector<double> weights_;
  double total_weight_ = 0.0;  // in-order sum of weights_ (pessimistic denom)
  unsigned threads_ = 1;
  PackedSeries packed_;  // one row per appended observation

  std::deque<AnchorRow> recent_;        // newest at the back
  std::vector<AnchorRow> representatives_;
  std::size_t recent_limit_ = kRecentAnchors;
  std::size_t representative_limit_ = kMaxRepresentativeAnchors;
  std::uint64_t append_clock_ = 0;
  /// anchor_of_[i] = row that i delta-patched from (kNoAnchorRow for
  /// kernel/invalid/weighted rows). May be shorter than n_ after a
  /// snapshot load — anchor_chain() treats missing entries as absent.
  std::vector<std::size_t> anchor_of_;
  /// Kernel-fallback rows left to skip before probing again after a
  /// round of probes found nothing (exponential backoff, capped).
  std::size_t probe_cooldown_ = 0;
  std::size_t probe_failures_ = 0;
};

}  // namespace fenrir::core
