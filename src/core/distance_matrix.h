// fenrir::core — all-pairs similarity over a time series (paper §2.7).
//
// SimilarityMatrix holds Φ(t,t') for every pair of observations in a
// Dataset. It is the input to the heatmap renderer and to hierarchical
// clustering (as distance 1-Φ). Invalid observations (collection outages)
// keep their timeline slot but carry no similarity values — they render
// blank and are excluded from clustering, matching the paper's blank
// 2023-07..12 band in Figure 3.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/compare.h"
#include "core/vector.h"

namespace fenrir::core {

class SimilarityMatrix {
 public:
  /// Computes Φ for all pairs of @p dataset.series (weights from the
  /// dataset; uniform if empty). O(T²·N), parallelized over rows with
  /// @p threads workers (0 = hardware concurrency, 1 = serial); the
  /// result is bit-identical for any thread count.
  static SimilarityMatrix compute(
      const Dataset& dataset,
      UnknownPolicy policy = UnknownPolicy::kPessimistic,
      unsigned threads = 0);

  std::size_t size() const noexcept { return n_; }

  /// Φ(i,j); 0.0 when either index is invalid. phi(i,i) is computed like
  /// any pair (under the pessimistic policy a vector with unknowns is not
  /// 100% similar to itself — the paper's Verfploeter ceiling).
  double phi(std::size_t i, std::size_t j) const {
    return values_.at(tri_index(i, j));
  }
  double dist(std::size_t i, std::size_t j) const { return 1.0 - phi(i, j); }

  bool valid(std::size_t i) const { return valid_.at(i); }
  std::size_t valid_count() const;

  /// Minimum / maximum Φ over all valid pairs drawn from two index sets
  /// (used for the paper's "Φ(M_i, M_ii) = [0.11, 0.48]" mode ranges).
  /// Returns {0,0} if no valid pair exists.
  struct Range {
    double min = 0.0, max = 0.0;
    bool any = false;
  };
  Range range_between(const std::vector<std::size_t>& a,
                      const std::vector<std::size_t>& b) const;
  /// Range over distinct pairs within one index set.
  Range range_within(const std::vector<std::size_t>& a) const;
  /// Median Φ between two index sets (0 if no valid pair).
  double median_between(const std::vector<std::size_t>& a,
                        const std::vector<std::size_t>& b) const;

 private:
  SimilarityMatrix(std::size_t n)
      : n_(n), values_(n * (n + 1) / 2, 0.0), valid_(n, false) {}

  std::size_t tri_index(std::size_t i, std::size_t j) const {
    if (i >= n_ || j >= n_) throw std::out_of_range("SimilarityMatrix index");
    if (i < j) std::swap(i, j);
    return i * (i + 1) / 2 + j;
  }

  std::size_t n_;
  std::vector<double> values_;  // lower triangle incl. diagonal
  std::vector<char> valid_;
};

}  // namespace fenrir::core
