// fenrir::core — civil time for observation series.
//
// Fenrir datasets are time series of routing vectors; scenario timelines
// and reports speak in dates ("2025-01-16") and the validation pipeline in
// minutes (Atlas vectors every 4 minutes). TimePoint is seconds since the
// Unix epoch (UTC); conversions use Howard Hinnant's civil-days algorithm,
// exact over the full representable range — no locale, no wall clock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fenrir::core {

/// Seconds since 1970-01-01T00:00:00Z.
using TimePoint = std::int64_t;

inline constexpr TimePoint kMinute = 60;
inline constexpr TimePoint kHour = 3600;
inline constexpr TimePoint kDay = 86400;

struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
};

/// Days since the epoch for a civil date (proleptic Gregorian).
std::int64_t days_from_civil(const CivilDate& d) noexcept;

/// Civil date for a day count since the epoch.
CivilDate civil_from_days(std::int64_t days) noexcept;

/// Midnight UTC of the given date.
constexpr TimePoint from_date(int year, int month, int day) noexcept;

/// Parses "YYYY-MM-DD" (returns midnight) or "YYYY-MM-DD HH:MM".
std::optional<TimePoint> parse_time(std::string_view text);

/// "YYYY-MM-DD".
std::string format_date(TimePoint t);
/// "YYYY-MM-DD HH:MM".
std::string format_time(TimePoint t);

// --- implementation of the constexpr helper ---
namespace detail {
constexpr std::int64_t days_from_civil_impl(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}
}  // namespace detail

constexpr TimePoint from_date(int year, int month, int day) noexcept {
  return detail::days_from_civil_impl(year, month, day) * kDay;
}

}  // namespace fenrir::core
