// fenrir::core — online mode recognition.
//
// The batch pipeline (analyze()) discovers modes retrospectively; an
// operator watching a live feed asks the paper's question the moment a
// new vector arrives: "is the current routing new, or is it like a
// routing mode I saw before?" ModeBook answers it online: it keeps one
// representative vector per known mode, classifies each incoming
// observation by Gower similarity against them, and registers a new mode
// when nothing matches. Re-entering an old mode — the G-Root drain state
// recurring two days later, B-Root returning toward its 2019 routing —
// reports the original mode id and the match strength.
//
// The representative scan runs on the packed match-count kernels
// (compare_kernels.h) — bit-identical to gower_similarity() — and stops
// at the first Φ = 1.0 representative (a perfect match cannot be beaten,
// and ties resolve to the earliest mode either way). Scan lengths are
// exported as the fenrir_modebook_scan_length histogram.
//
// Each decision is also published on the detection event plane
// (obs/events.h): mode_created when a vector founds a mode, recurrence
// (with Φ and the gap since that mode was last seen) when an old mode
// returns, and ambiguous_match (warn) when the runner-up representative
// also clears the threshold within a narrow margin — the classification
// stands, but an operator should know it was close. Events observe the
// decision after it is made; they never influence it.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/compare.h"
#include "core/compare_kernels.h"
#include "core/vector.h"

namespace fenrir::core {

class ModeBook {
 public:
  struct Config {
    /// An observation joins a known mode when Φ against its
    /// representative is at least this. With pessimistic unknown
    /// handling remember the measurement's ceiling (Verfploeter data
    /// cannot exceed its coverage — use kKnownOnly there instead).
    double match_threshold = 0.85;
    UnknownPolicy policy = UnknownPolicy::kKnownOnly;
    /// Representatives adapt: the stored vector keeps the latest member
    /// (true) or stays frozen at the mode's first vector (false).
    /// Adapting follows slow drift; freezing measures drift.
    bool adapt_representative = false;
  };

  struct Match {
    std::size_t mode = 0;   // id of the (possibly new) mode
    double phi = 0.0;       // similarity to that mode's representative
    bool is_new = false;    // a mode was registered for this observation
    bool is_recurrence = false;  // matched a mode other than the previous
  };

  ModeBook() = default;
  explicit ModeBook(const Config& config) : config_(config) {}

  /// Classifies @p v and updates the book. Invalid observations return
  /// the previous state unchanged with phi = 0 (and are not recorded).
  Match observe(const RoutingVector& v);

  /// Replaces the book's state with a previously captured one (the
  /// representative per mode plus the per-observation mode history), so
  /// a watcher can resume where an earlier process stopped (fenrirctl
  /// watch --resume). Throws std::invalid_argument when a history entry
  /// names a mode without a representative.
  void restore(std::vector<RoutingVector> representatives,
               std::vector<std::size_t> history);

  std::size_t mode_count() const noexcept { return representatives_.size(); }
  const RoutingVector& representative(std::size_t mode) const {
    return representatives_.at(mode);
  }
  /// Mode id assigned to each observed (valid) vector, in order.
  const std::vector<std::size_t>& history() const noexcept {
    return history_;
  }

  /// The book's state as one JSON object — mode count, observations,
  /// and the last match — for the StatusBoard ("modebook" fragment on
  /// fenrirctl watch's /status endpoint).
  std::string status_json() const;

 private:
  Config config_;
  std::vector<RoutingVector> representatives_;
  /// representatives_ packed for the kernel scan; row m mirrors
  /// representatives_[m].
  PackedSeries packed_;
  std::vector<std::size_t> history_;
  /// Dataset time each mode was last observed — the recurrence event's
  /// gap. nullopt after restore() (the snapshot does not carry it): the
  /// first re-sighting then reports the recurrence without a gap rather
  /// than inventing one.
  std::vector<std::optional<TimePoint>> last_seen_;
  std::optional<Match> last_;
};

}  // namespace fenrir::core
