// fenrir::core::simd — runtime CPU-feature dispatch for the Φ kernels.
//
// The packed MatchCounts kernels and the bounded change-set scans are
// the two loops every Φ in the system funnels through. compare_kernels.cc
// keeps the scalar implementations — the oracle every other tier must
// reproduce bit-for-bit — and this header names the faster tiers built
// from explicit intrinsics:
//
//   kScalar  — the untouched blocked branchless loops (always present).
//   kAvx2    — 256-bit lanes: pcmpeq + byte-mask accumulation drained
//              through psadbw (u8), madd (u16), or lane adds (u32).
//   kAvx512  — 512-bit lanes: compares straight into mask registers,
//              counted with scalar popcount; tails use masked loads, so
//              there is no scalar remainder loop at all.
//
// A tier is *available* when the compiler could build its TU (CMake
// probes -mavx2 / -mavx512f -mavx512bw) AND the running CPU reports the
// feature. Dispatch picks the best available tier once, at first use;
// FENRIR_SIMD=scalar|avx2|avx512 overrides downward for testing (a
// request above what the host supports clamps down with a warning, so
// the override is always safe to set in CI). Because every tier produces
// the same integer MatchCounts and the same change-set entries, Φ stays
// bit-identical to the scalar reference whichever tier runs — the
// property suite in tests/core_compare_kernels_test.cc pins every
// available tier against the oracle across widths, policies, tails, and
// unknown fractions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/compare_kernels.h"

namespace fenrir::core::simd {

enum class Tier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Human-readable tier name ("scalar", "avx2", "avx512").
const char* tier_name(Tier t) noexcept;

/// Best tier the host CPU *and* this build support (env ignored).
Tier detected_tier() noexcept;

/// The tier dispatch actually uses: detected_tier() clamped down by a
/// FENRIR_SIMD override. Resolved once at first use.
Tier active_tier() noexcept;

/// One tier's kernel entry points. count_* produce the integer core of
/// unweighted Φ; delta_* fill @p out with the sorted change-set between
/// two rows, bailing (clear + false) past @p cap mismatches — pass
/// kNoCap for an unbounded scan that cannot fail.
struct KernelTable {
  MatchCounts (*count_u8)(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t n);
  MatchCounts (*count_u16)(const std::uint16_t* a, const std::uint16_t* b,
                           std::size_t n);
  MatchCounts (*count_u32)(const std::uint32_t* a, const std::uint32_t* b,
                           std::size_t n);
  bool (*delta_u8)(const std::uint8_t* a, const std::uint8_t* b,
                   std::size_t n, std::size_t cap, std::vector<DeltaEntry>& out);
  bool (*delta_u16)(const std::uint16_t* a, const std::uint16_t* b,
                    std::size_t n, std::size_t cap,
                    std::vector<DeltaEntry>& out);
  bool (*delta_u32)(const std::uint32_t* a, const std::uint32_t* b,
                    std::size_t n, std::size_t cap,
                    std::vector<DeltaEntry>& out);
  // Row-ingest kernels. max_site scans a row for its largest id (the
  // width decision PackedSeries::append makes before packing);
  // pack_u8/pack_u16 narrow a SiteId row into the packed store. Exact
  // by construction: append widens the store first, so every value fits
  // the destination and the narrowing never saturates.
  SiteId (*max_site)(const SiteId* src, std::size_t n);
  void (*pack_u8)(const SiteId* src, std::uint8_t* dst, std::size_t n);
  void (*pack_u16)(const SiteId* src, std::uint16_t* dst, std::size_t n);
  // Swap-class patch against a u8 row (ColumnPatcher's hot loop):
  // Σ (after[t] == row[idx[t]]) − (before[t] == row[idx[t]]). The AVX-512
  // tier gathers 16 row bytes per step; idx is sorted ascending, so the
  // suffix whose 4-byte gathers would cross the row end runs scalar. The
  // AVX2 tier has no profitable gather and reuses the scalar kernel.
  SwapPatchU8Fn swap_u8;
};

inline constexpr std::size_t kNoCap = static_cast<std::size_t>(-1);

/// The table for active_tier() — what PackedSeries dispatches through.
const KernelTable& active();

/// The table for a specific tier, or nullptr when this build/host does
/// not support it. Lets the property tests pin every available tier
/// against the scalar oracle regardless of FENRIR_SIMD.
const KernelTable* table_for(Tier t) noexcept;

// Per-tier entry points. The scalar set is defined in
// compare_kernels.cc; the AVX sets live in their own TUs compiled with
// the matching -m flags (present only when CMake found the flags, and
// called only after the runtime CPU check passed).
MatchCounts count_u8_scalar(const std::uint8_t*, const std::uint8_t*,
                            std::size_t);
MatchCounts count_u16_scalar(const std::uint16_t*, const std::uint16_t*,
                             std::size_t);
MatchCounts count_u32_scalar(const std::uint32_t*, const std::uint32_t*,
                             std::size_t);
bool delta_u8_scalar(const std::uint8_t*, const std::uint8_t*, std::size_t,
                     std::size_t, std::vector<DeltaEntry>&);
bool delta_u16_scalar(const std::uint16_t*, const std::uint16_t*, std::size_t,
                      std::size_t, std::vector<DeltaEntry>&);
bool delta_u32_scalar(const std::uint32_t*, const std::uint32_t*, std::size_t,
                      std::size_t, std::vector<DeltaEntry>&);
SiteId max_site_scalar(const SiteId*, std::size_t);
void pack_u8_scalar(const SiteId*, std::uint8_t*, std::size_t);
void pack_u16_scalar(const SiteId*, std::uint16_t*, std::size_t);
std::int64_t swap_patch_u8_scalar(const std::uint8_t*, const std::uint32_t*,
                                  const SiteId*, const SiteId*, std::size_t,
                                  std::size_t);

#if defined(FENRIR_BUILD_AVX2)
MatchCounts count_u8_avx2(const std::uint8_t*, const std::uint8_t*,
                          std::size_t);
MatchCounts count_u16_avx2(const std::uint16_t*, const std::uint16_t*,
                           std::size_t);
MatchCounts count_u32_avx2(const std::uint32_t*, const std::uint32_t*,
                           std::size_t);
bool delta_u8_avx2(const std::uint8_t*, const std::uint8_t*, std::size_t,
                   std::size_t, std::vector<DeltaEntry>&);
bool delta_u16_avx2(const std::uint16_t*, const std::uint16_t*, std::size_t,
                    std::size_t, std::vector<DeltaEntry>&);
bool delta_u32_avx2(const std::uint32_t*, const std::uint32_t*, std::size_t,
                    std::size_t, std::vector<DeltaEntry>&);
SiteId max_site_avx2(const SiteId*, std::size_t);
void pack_u8_avx2(const SiteId*, std::uint8_t*, std::size_t);
void pack_u16_avx2(const SiteId*, std::uint16_t*, std::size_t);
#endif

#if defined(FENRIR_BUILD_AVX512)
MatchCounts count_u8_avx512(const std::uint8_t*, const std::uint8_t*,
                            std::size_t);
MatchCounts count_u16_avx512(const std::uint16_t*, const std::uint16_t*,
                             std::size_t);
MatchCounts count_u32_avx512(const std::uint32_t*, const std::uint32_t*,
                             std::size_t);
bool delta_u8_avx512(const std::uint8_t*, const std::uint8_t*, std::size_t,
                     std::size_t, std::vector<DeltaEntry>&);
bool delta_u16_avx512(const std::uint16_t*, const std::uint16_t*, std::size_t,
                      std::size_t, std::vector<DeltaEntry>&);
bool delta_u32_avx512(const std::uint32_t*, const std::uint32_t*, std::size_t,
                      std::size_t, std::vector<DeltaEntry>&);
SiteId max_site_avx512(const SiteId*, std::size_t);
void pack_u8_avx512(const SiteId*, std::uint8_t*, std::size_t);
void pack_u16_avx512(const SiteId*, std::uint16_t*, std::size_t);
std::int64_t swap_patch_u8_avx512(const std::uint8_t*, const std::uint32_t*,
                                  const SiteId*, const SiteId*, std::size_t,
                                  std::size_t);
#endif

}  // namespace fenrir::core::simd
