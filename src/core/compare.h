// fenrir::core — pairwise vector comparison (the paper's §2.6.1).
//
// The similarity of two routing vectors is Gower's coefficient over the N
// per-network categorical elements:
//
//     M(t,t',n) = 1  if D(t,n) = D(t',n) and D(t,n) != unknown, else 0
//     Φ(t,t')   = Σ_n M(t,t',n)·D_w(n) / Σ_n D_w(n)
//
// Φ is the weighted fraction of networks whose catchment is identical —
// "routing today is 80% like last month" is Φ = 0.8.
//
// Unknown handling:
//   * kPessimistic (paper default): an unknown on either side counts as a
//     mismatch but stays in the denominator. Services with imperfect
//     coverage (Verfploeter answers for ~half its targets) therefore top
//     out well below 1.0 — the paper's 0.5–0.6 plateau.
//   * kKnownOnly (the paper's stated ongoing work, implemented here):
//     networks unknown on either side leave the denominator, so Φ is the
//     similarity of the networks we actually know.
#pragma once

#include <span>
#include <stdexcept>

#include "core/vector.h"

namespace fenrir::core {

enum class UnknownPolicy {
  kPessimistic,
  kKnownOnly,
};

/// Gower similarity of two equally-sized vectors with uniform weights.
/// Throws std::invalid_argument on size mismatch. Under kKnownOnly with
/// no mutually-known network the result is 0.0 (documented convention:
/// nothing is known to be the same).
double gower_similarity(const RoutingVector& a, const RoutingVector& b,
                        UnknownPolicy policy = UnknownPolicy::kPessimistic);

/// Weighted Gower similarity; @p weights must match the vector size.
double gower_similarity(const RoutingVector& a, const RoutingVector& b,
                        std::span<const double> weights,
                        UnknownPolicy policy = UnknownPolicy::kPessimistic);

/// Gower distance = 1 - similarity (the quantity HAC clusters on).
inline double gower_distance(
    const RoutingVector& a, const RoutingVector& b,
    UnknownPolicy policy = UnknownPolicy::kPessimistic) {
  return 1.0 - gower_similarity(a, b, policy);
}

}  // namespace fenrir::core
