#include "core/stackplot.h"

#include <algorithm>
#include <ostream>

#include "io/csv.h"
#include "io/table.h"

namespace fenrir::core {

StackSeries StackSeries::compute(const Dataset& dataset) {
  StackSeries out;
  const std::size_t sites = dataset.sites.size();
  for (SiteId s = 0; s < sites; ++s) {
    out.site_names_.push_back(dataset.sites.name(s));
  }
  for (const RoutingVector& v : dataset.series) {
    out.times_.push_back(v.time);
    if (!v.valid) {
      out.values_.emplace_back(sites, 0.0);
      continue;
    }
    if (dataset.weights.empty()) {
      const auto counts = aggregate(v, sites);
      std::vector<double> row(sites);
      for (std::size_t s = 0; s < sites; ++s) {
        row[s] = static_cast<double>(counts[s]);
      }
      out.values_.push_back(std::move(row));
    } else {
      out.values_.push_back(aggregate_weighted(v, dataset.weights, sites));
    }
  }
  return out;
}

double StackSeries::fraction(std::size_t t, SiteId s) const {
  const auto& row = values_.at(t);
  double total = 0.0;
  for (const double v : row) total += v;
  if (total <= 0.0) return 0.0;
  return row.at(s) / total;
}

void StackSeries::write_csv(std::ostream& out) const {
  io::CsvWriter csv(out);
  std::vector<std::string> head{"time"};
  head.insert(head.end(), site_names_.begin(), site_names_.end());
  csv.write_row(head);
  for (std::size_t t = 0; t < times_.size(); ++t) {
    std::vector<std::string> row{format_time(times_[t])};
    for (std::size_t s = 0; s < site_names_.size(); ++s) {
      row.push_back(io::fixed(values_[t][s], 1));
    }
    csv.write_row(row);
  }
}

std::optional<std::size_t> StackSeries::first_collapse(
    SiteId s, double fraction) const {
  double running_max = 0.0;
  for (std::size_t t = 0; t < times_.size(); ++t) {
    const double v = value(t, s);
    if (running_max > 0.0 && v < fraction * running_max) return t;
    running_max = std::max(running_max, v);
  }
  return std::nullopt;
}

}  // namespace fenrir::core
