// fenrir::core — the end-to-end analysis pipeline (paper Table 1).
//
// One call runs the full Fenrir method over a cleaned dataset:
// all-pairs comparison (Φ), HAC clustering with the adaptive threshold,
// mode extraction with intra/inter ranges and recurrence, and
// consecutive-pair change detection. print_report() renders the findings
// the way the paper narrates them.
#pragma once

#include <iosfwd>

#include "core/cluster.h"
#include "core/compare.h"
#include "core/distance_matrix.h"
#include "core/events.h"
#include "core/modes.h"
#include "core/vector.h"

namespace fenrir::core {

struct AnalysisConfig {
  UnknownPolicy policy = UnknownPolicy::kPessimistic;
  Linkage linkage = Linkage::kSingle;
  AdaptiveConfig adaptive;
  /// Minimum members for a cluster to be reported as a mode.
  std::size_t min_mode_size = 2;
  DetectorConfig detector;
};

struct AnalysisResult {
  SimilarityMatrix matrix;
  Clustering clustering;
  ModeSet modes;
  std::vector<DetectedEvent> events;
};

/// Runs comparison, clustering, mode extraction, and change detection.
/// The dataset must already be cleaned (see core/cleaning.h) and
/// consistent (Dataset::check_consistent is called).
AnalysisResult analyze(const Dataset& dataset, const AnalysisConfig& config = {});

/// Same pipeline over a precomputed Φ matrix (e.g. one resumed from an
/// io/snapshot.h matrix cache and appended up to date). @p matrix must
/// cover the dataset: one row per observation, built under
/// config.policy — std::invalid_argument otherwise. Because every
/// matrix path is bit-identical, the result equals analyze()'s.
AnalysisResult analyze(const Dataset& dataset, const AnalysisConfig& config,
                       SimilarityMatrix matrix);

/// Human-readable report: dataset summary, per-mode table (span, size,
/// intra-Φ), adjacent/inter-mode Φ ranges, recurrences, detected events.
void print_report(const Dataset& dataset, const AnalysisResult& result,
                  std::ostream& out);

}  // namespace fenrir::core
