#include "core/dataset_io.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "io/table.h"
#include "obs/log.h"

namespace fenrir::core {

namespace {

constexpr const char* kMagic = "#fenrir-dataset";
constexpr const char* kVersion = "v1";

std::uint64_t parse_u64(const std::string& text) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw DatasetIoError("bad network key: " + text);
  }
  return out;
}

double parse_double(const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw DatasetIoError("bad weight: " + text);
    return v;
  } catch (const std::exception&) {
    throw DatasetIoError("bad weight: " + text);
  }
}

}  // namespace

void save_dataset(const Dataset& dataset, std::ostream& out) {
  try {
    dataset.check_consistent();
  } catch (const std::invalid_argument& e) {
    throw DatasetIoError(std::string("refusing to save: ") + e.what());
  }
  io::CsvWriter csv(out);
  csv.row(kMagic, kVersion);
  csv.row("name", dataset.name);
  if (!dataset.weights.empty()) {
    std::vector<std::string> row{"weights"};
    for (const double w : dataset.weights) row.push_back(io::fixed(w, 6));
    csv.write_row(row);
  }
  {
    std::vector<std::string> head{"time", "valid"};
    for (NetId n = 0; n < dataset.networks.size(); ++n) {
      head.push_back(std::to_string(dataset.networks.key(n)));
    }
    csv.write_row(head);
  }
  for (const RoutingVector& v : dataset.series) {
    std::vector<std::string> row{format_time(v.time), v.valid ? "1" : "0"};
    for (const SiteId s : v.assignment) {
      row.push_back(dataset.sites.name(s));
    }
    csv.write_row(row);
  }
}

Dataset load_dataset(std::istream& in, const LoadOptions& options,
                     LoadStats* stats) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto rows = io::parse_csv(buffer.str());
  if (rows.size() < 2 || rows[0].size() < 2 || rows[0][0] != kMagic) {
    throw DatasetIoError("not a fenrir dataset (bad magic)");
  }
  if (rows[0][1] != kVersion) {
    throw DatasetIoError("unsupported dataset version " + rows[0][1]);
  }

  LoadStats local;
  Dataset d;
  std::size_t r = 1;
  if (r < rows.size() && !rows[r].empty() && rows[r][0] == "name") {
    if (rows[r].size() != 2) throw DatasetIoError("malformed name row");
    d.name = rows[r][1];
    ++r;
  }
  if (r < rows.size() && !rows[r].empty() && rows[r][0] == "weights") {
    try {
      for (std::size_t i = 1; i < rows[r].size(); ++i) {
        d.weights.push_back(parse_double(rows[r][i]));
      }
    } catch (const DatasetIoError&) {
      if (!options.lenient) throw;
      d.weights.clear();
      local.weights_dropped = true;
    }
    ++r;
  }
  if (r >= rows.size() || rows[r].size() < 2 || rows[r][0] != "time" ||
      rows[r][1] != "valid") {
    throw DatasetIoError("missing header row");
  }
  const std::size_t columns = rows[r].size();
  // keep_column[i] is false for a repeated network key (first wins);
  // strict mode interns duplicates and lets check_consistent reject the
  // resulting size mismatch, preserving the historical behavior.
  std::vector<bool> keep_column(columns, true);
  for (std::size_t i = 2; i < columns; ++i) {
    const std::uint64_t key = parse_u64(rows[r][i]);
    if (options.lenient && d.networks.find(key)) {
      keep_column[i] = false;
      ++local.duplicate_networks;
      continue;
    }
    d.networks.intern(key);
  }
  if (options.lenient && !d.weights.empty() &&
      d.weights.size() != d.networks.size()) {
    d.weights.clear();
    local.weights_dropped = true;
  }
  ++r;

  for (; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != columns) {
      if (options.lenient) {
        ++local.ragged_rows;
        continue;
      }
      throw DatasetIoError("ragged row at line " + std::to_string(r + 1));
    }
    RoutingVector v;
    const auto t = parse_time(row[0]);
    if (!t) {
      if (options.lenient) {
        ++local.bad_times;
        continue;
      }
      throw DatasetIoError("bad time: " + row[0]);
    }
    v.time = *t;
    if (options.lenient && !d.series.empty() && v.time < d.series.back().time) {
      ++local.out_of_order_rows;
      continue;
    }
    if (row[1] != "0" && row[1] != "1") {
      if (options.lenient) {
        ++local.bad_valid_flags;
        continue;
      }
      throw DatasetIoError("bad valid flag: " + row[1]);
    }
    v.valid = row[1] == "1";
    v.assignment.reserve(d.networks.size());
    for (std::size_t i = 2; i < columns; ++i) {
      if (!keep_column[i]) continue;
      v.assignment.push_back(d.sites.intern(row[i]));
    }
    d.series.push_back(std::move(v));
  }
  local.rows_kept = d.series.size();

  // One warning per damage category, not per row — a damaged multi-year
  // archive must not produce a million-line log.
  if (local.ragged_rows != 0) {
    FENRIR_LOG(Warn).field("count", local.ragged_rows)
        << "lenient load: skipped ragged rows";
  }
  if (local.bad_times != 0) {
    FENRIR_LOG(Warn).field("count", local.bad_times)
        << "lenient load: skipped rows with unparsable times";
  }
  if (local.out_of_order_rows != 0) {
    FENRIR_LOG(Warn).field("count", local.out_of_order_rows)
        << "lenient load: skipped out-of-order rows";
  }
  if (local.bad_valid_flags != 0) {
    FENRIR_LOG(Warn).field("count", local.bad_valid_flags)
        << "lenient load: skipped rows with bad valid flags";
  }
  if (local.duplicate_networks != 0) {
    FENRIR_LOG(Warn).field("count", local.duplicate_networks)
        << "lenient load: dropped duplicate network-key columns";
  }
  if (local.weights_dropped) {
    FENRIR_LOG(Warn) << "lenient load: dropped unusable weights row";
  }
  if (stats != nullptr) *stats = local;

  try {
    d.check_consistent();
  } catch (const std::invalid_argument& e) {
    throw DatasetIoError(std::string("inconsistent dataset: ") + e.what());
  }
  return d;
}

void save_dataset_file(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw DatasetIoError("cannot open " + path + " for writing");
  save_dataset(dataset, out);
  if (!out) throw DatasetIoError("write failed: " + path);
}

Dataset load_dataset_file(const std::string& path, const LoadOptions& options,
                          LoadStats* stats) {
  std::ifstream in(path);
  if (!in) throw DatasetIoError("cannot open " + path);
  return load_dataset(in, options, stats);
}

}  // namespace fenrir::core
