#include "core/dataset_io.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "io/table.h"

namespace fenrir::core {

namespace {

constexpr const char* kMagic = "#fenrir-dataset";
constexpr const char* kVersion = "v1";

std::uint64_t parse_u64(const std::string& text) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw DatasetIoError("bad network key: " + text);
  }
  return out;
}

double parse_double(const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw DatasetIoError("bad weight: " + text);
    return v;
  } catch (const std::exception&) {
    throw DatasetIoError("bad weight: " + text);
  }
}

}  // namespace

void save_dataset(const Dataset& dataset, std::ostream& out) {
  try {
    dataset.check_consistent();
  } catch (const std::invalid_argument& e) {
    throw DatasetIoError(std::string("refusing to save: ") + e.what());
  }
  io::CsvWriter csv(out);
  csv.row(kMagic, kVersion);
  csv.row("name", dataset.name);
  if (!dataset.weights.empty()) {
    std::vector<std::string> row{"weights"};
    for (const double w : dataset.weights) row.push_back(io::fixed(w, 6));
    csv.write_row(row);
  }
  {
    std::vector<std::string> head{"time", "valid"};
    for (NetId n = 0; n < dataset.networks.size(); ++n) {
      head.push_back(std::to_string(dataset.networks.key(n)));
    }
    csv.write_row(head);
  }
  for (const RoutingVector& v : dataset.series) {
    std::vector<std::string> row{format_time(v.time), v.valid ? "1" : "0"};
    for (const SiteId s : v.assignment) {
      row.push_back(dataset.sites.name(s));
    }
    csv.write_row(row);
  }
}

Dataset load_dataset(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto rows = io::parse_csv(buffer.str());
  if (rows.size() < 2 || rows[0].size() < 2 || rows[0][0] != kMagic) {
    throw DatasetIoError("not a fenrir dataset (bad magic)");
  }
  if (rows[0][1] != kVersion) {
    throw DatasetIoError("unsupported dataset version " + rows[0][1]);
  }

  Dataset d;
  std::size_t r = 1;
  if (r < rows.size() && !rows[r].empty() && rows[r][0] == "name") {
    if (rows[r].size() != 2) throw DatasetIoError("malformed name row");
    d.name = rows[r][1];
    ++r;
  }
  if (r < rows.size() && !rows[r].empty() && rows[r][0] == "weights") {
    for (std::size_t i = 1; i < rows[r].size(); ++i) {
      d.weights.push_back(parse_double(rows[r][i]));
    }
    ++r;
  }
  if (r >= rows.size() || rows[r].size() < 2 || rows[r][0] != "time" ||
      rows[r][1] != "valid") {
    throw DatasetIoError("missing header row");
  }
  const std::size_t columns = rows[r].size();
  for (std::size_t i = 2; i < columns; ++i) {
    d.networks.intern(parse_u64(rows[r][i]));
  }
  ++r;

  for (; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != columns) {
      throw DatasetIoError("ragged row at line " + std::to_string(r + 1));
    }
    RoutingVector v;
    const auto t = parse_time(row[0]);
    if (!t) throw DatasetIoError("bad time: " + row[0]);
    v.time = *t;
    if (row[1] != "0" && row[1] != "1") {
      throw DatasetIoError("bad valid flag: " + row[1]);
    }
    v.valid = row[1] == "1";
    v.assignment.reserve(columns - 2);
    for (std::size_t i = 2; i < columns; ++i) {
      v.assignment.push_back(d.sites.intern(row[i]));
    }
    d.series.push_back(std::move(v));
  }

  try {
    d.check_consistent();
  } catch (const std::invalid_argument& e) {
    throw DatasetIoError(std::string("inconsistent dataset: ") + e.what());
  }
  return d;
}

void save_dataset_file(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw DatasetIoError("cannot open " + path + " for writing");
  save_dataset(dataset, out);
  if (!out) throw DatasetIoError("write failed: " + path);
}

Dataset load_dataset_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DatasetIoError("cannot open " + path);
  return load_dataset(in);
}

}  // namespace fenrir::core
