#include "core/pipeline.h"

#include <ostream>

#include "io/table.h"

namespace fenrir::core {

AnalysisResult analyze(const Dataset& dataset, const AnalysisConfig& config) {
  dataset.check_consistent();
  SimilarityMatrix matrix = SimilarityMatrix::compute(dataset, config.policy);
  Clustering clustering =
      cluster_adaptive(matrix, config.linkage, config.adaptive);
  ModeSet modes = ModeSet::build(dataset, clustering, config.min_mode_size);
  std::vector<DetectedEvent> events =
      detect_changes(dataset, config.detector, config.policy);
  return AnalysisResult{std::move(matrix), std::move(clustering),
                        std::move(modes), std::move(events)};
}

namespace {

std::string range_str(const SimilarityMatrix::Range& r) {
  if (!r.any) return "n/a";
  return "[" + io::fixed(r.min, 2) + ", " + io::fixed(r.max, 2) + "]";
}

}  // namespace

void print_report(const Dataset& dataset, const AnalysisResult& result,
                  std::ostream& out) {
  out << "=== Fenrir analysis: " << dataset.name << " ===\n";
  out << dataset.series.size() << " observations, "
      << dataset.networks.size() << " networks, "
      << dataset.sites.real_site_count() << " sites; clustering threshold "
      << io::fixed(result.clustering.threshold, 2) << " ("
      << result.clustering.cluster_count << " clusters)\n\n";

  const ModeSet& modes = result.modes;
  if (modes.size() == 0) {
    out << "no routing modes of the required size\n";
  } else {
    io::TextTable table;
    table.header({"mode", "from", "to", "obs", "intra-phi", "recurs-like",
                  "median-phi"});
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const Mode& m = modes.mode(i);
      std::string recurs = "-";
      std::string rec_phi = "-";
      if (const auto r = modes.recurrence(result.matrix, i)) {
        recurs = "(" + modes.mode(r->earlier_mode).label + ")";
        rec_phi = io::fixed(r->median_phi, 2);
      }
      table.row("(" + m.label + ")", format_date(m.start), format_date(m.end),
                m.members.size(), range_str(modes.intra(result.matrix, i)),
                recurs, rec_phi);
    }
    table.print(out);

    if (modes.size() > 1) {
      out << "\nadjacent mode similarity:\n";
      for (std::size_t i = 0; i + 1 < modes.size(); ++i) {
        out << "  phi(M" << modes.mode(i).label << ", M"
            << modes.mode(i + 1).label << ") = "
            << range_str(modes.inter(result.matrix, i, i + 1)) << "\n";
      }

      // The mode graph: oscillation between regimes (a drain mode that
      // keeps re-appearing shows up as a cycle here).
      const auto transitions =
          modes.transition_counts(dataset.series.size());
      bool any = false;
      for (std::size_t a = 0; a < modes.size(); ++a) {
        for (std::size_t b = 0; b < modes.size(); ++b) {
          if (transitions[a][b] == 0) continue;
          if (!any) {
            out << "\nmode transitions:\n";
            any = true;
          }
          out << "  (" << modes.mode(a).label << ") -> ("
              << modes.mode(b).label << ")";
          if (transitions[a][b] > 1) out << " x" << transitions[a][b];
          out << "\n";
        }
      }
    }
  }

  out << "\ndetected changes: " << result.events.size() << "\n";
  for (const DetectedEvent& e : result.events) {
    out << "  " << format_time(e.time) << "  phi=" << io::fixed(e.phi, 3)
        << "  baseline=" << io::fixed(e.baseline, 3)
        << "  drop=" << io::fixed(e.drop, 3) << "\n";
  }
}

}  // namespace fenrir::core
