#include "core/pipeline.h"

#include <ostream>
#include <sstream>

#include "io/table.h"
#include "obs/events.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/metrics_window.h"
#include "obs/span.h"
#include "obs/status_board.h"

namespace fenrir::core {

namespace {

void log_analyze_start(const Dataset& dataset) {
  static obs::Counter& runs = obs::registry().counter(
      "fenrir_analyze_runs_total", "analyze() pipeline invocations");
  static obs::Gauge& observations = obs::registry().gauge(
      "fenrir_analyze_observations", "observations in the last analyze()");
  runs.inc();
  observations.set(static_cast<double>(dataset.series.size()));
  obs::event_bus().emit(
      obs::Severity::kInfo, "analyze_started",
      "\"dataset\":\"" + obs::json_escape(dataset.name) +
          "\",\"observations\":" + std::to_string(dataset.series.size()));
  FENRIR_LOG(Info).field("dataset", dataset.name)
          .field("observations", dataset.series.size())
          .field("networks", dataset.networks.size())
      << "analyze: start";
}

/// Everything after the Φ matrix: clustering, modes, events, telemetry.
AnalysisResult analyze_from_matrix(const Dataset& dataset,
                                   const AnalysisConfig& config,
                                   SimilarityMatrix matrix) {
  Clustering clustering = [&] {
    obs::Span stage("hac_clustering");
    return cluster_adaptive(matrix, config.linkage, config.adaptive);
  }();
  ModeSet modes = [&] {
    obs::Span stage("mode_extraction");
    return ModeSet::build(dataset, clustering, config.min_mode_size);
  }();
  std::vector<DetectedEvent> events = [&] {
    obs::Span stage("event_detection");
    return detect_changes(dataset, config.detector, config.policy);
  }();

  static obs::Gauge& clusters = obs::registry().gauge(
      "fenrir_analyze_clusters", "clusters found by the last analyze()");
  static obs::Gauge& mode_count = obs::registry().gauge(
      "fenrir_analyze_modes", "modes reported by the last analyze()");
  static obs::Counter& event_count = obs::registry().counter(
      "fenrir_analyze_events_total", "change events detected by analyze()");
  clusters.set(static_cast<double>(clustering.cluster_count));
  mode_count.set(static_cast<double>(modes.size()));
  event_count.inc(events.size());
  {
    std::ostringstream os;
    os << "{\"dataset\":\"" << obs::json_escape(dataset.name)
       << "\",\"observations\":" << dataset.series.size()
       << ",\"networks\":" << dataset.networks.size()
       << ",\"clusters\":" << clustering.cluster_count
       << ",\"modes\":" << modes.size() << ",\"events\":" << events.size()
       << ",\"threshold\":" << obs::render_double(clustering.threshold) << "}";
    obs::status_board().publish("analyze", os.str());
  }
  obs::event_bus().emit(
      obs::Severity::kInfo, "analyze_finished",
      "\"dataset\":\"" + obs::json_escape(dataset.name) +
          "\",\"clusters\":" + std::to_string(clustering.cluster_count) +
          ",\"modes\":" + std::to_string(modes.size()) +
          ",\"events\":" + std::to_string(events.size()));
  obs::metrics_history().sample(true);
  FENRIR_LOG(Info).field("threshold", clustering.threshold)
          .field("clusters", clustering.cluster_count)
          .field("modes", modes.size())
          .field("events", events.size())
      << "analyze: done";
  return AnalysisResult{std::move(matrix), std::move(clustering),
                        std::move(modes), std::move(events)};
}

}  // namespace

AnalysisResult analyze(const Dataset& dataset, const AnalysisConfig& config) {
  obs::Span span("analyze");
  log_analyze_start(dataset);
  dataset.check_consistent();
  SimilarityMatrix matrix = [&] {
    obs::Span stage("phi_matrix");
    return SimilarityMatrix::compute(dataset, config.policy);
  }();
  return analyze_from_matrix(dataset, config, std::move(matrix));
}

AnalysisResult analyze(const Dataset& dataset, const AnalysisConfig& config,
                       SimilarityMatrix matrix) {
  obs::Span span("analyze");
  log_analyze_start(dataset);
  if (matrix.size() != dataset.series.size()) {
    throw std::invalid_argument(
        "analyze: matrix covers " + std::to_string(matrix.size()) +
        " observations, dataset has " +
        std::to_string(dataset.series.size()));
  }
  if (matrix.policy() != config.policy) {
    throw std::invalid_argument(
        "analyze: matrix was built under a different unknown policy");
  }
  dataset.check_consistent();
  return analyze_from_matrix(dataset, config, std::move(matrix));
}

namespace {

std::string range_str(const SimilarityMatrix::Range& r) {
  if (!r.any) return "n/a";
  return "[" + io::fixed(r.min, 2) + ", " + io::fixed(r.max, 2) + "]";
}

}  // namespace

void print_report(const Dataset& dataset, const AnalysisResult& result,
                  std::ostream& out) {
  out << "=== Fenrir analysis: " << dataset.name << " ===\n";
  out << dataset.series.size() << " observations, "
      << dataset.networks.size() << " networks, "
      << dataset.sites.real_site_count() << " sites; clustering threshold "
      << io::fixed(result.clustering.threshold, 2) << " ("
      << result.clustering.cluster_count << " clusters)\n\n";

  const ModeSet& modes = result.modes;
  if (modes.size() == 0) {
    out << "no routing modes of the required size\n";
  } else {
    io::TextTable table;
    table.header({"mode", "from", "to", "obs", "intra-phi", "recurs-like",
                  "median-phi"});
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const Mode& m = modes.mode(i);
      std::string recurs = "-";
      std::string rec_phi = "-";
      if (const auto r = modes.recurrence(result.matrix, i)) {
        recurs = "(" + modes.mode(r->earlier_mode).label + ")";
        rec_phi = io::fixed(r->median_phi, 2);
      }
      table.row("(" + m.label + ")", format_date(m.start), format_date(m.end),
                m.members.size(), range_str(modes.intra(result.matrix, i)),
                recurs, rec_phi);
    }
    table.print(out);

    if (modes.size() > 1) {
      out << "\nadjacent mode similarity:\n";
      for (std::size_t i = 0; i + 1 < modes.size(); ++i) {
        out << "  phi(M" << modes.mode(i).label << ", M"
            << modes.mode(i + 1).label << ") = "
            << range_str(modes.inter(result.matrix, i, i + 1)) << "\n";
      }

      // The mode graph: oscillation between regimes (a drain mode that
      // keeps re-appearing shows up as a cycle here).
      const auto transitions =
          modes.transition_counts(dataset.series.size());
      bool any = false;
      for (std::size_t a = 0; a < modes.size(); ++a) {
        for (std::size_t b = 0; b < modes.size(); ++b) {
          if (transitions[a][b] == 0) continue;
          if (!any) {
            out << "\nmode transitions:\n";
            any = true;
          }
          out << "  (" << modes.mode(a).label << ") -> ("
              << modes.mode(b).label << ")";
          if (transitions[a][b] > 1) out << " x" << transitions[a][b];
          out << "\n";
        }
      }
    }
  }

  out << "\ndetected changes: " << result.events.size() << "\n";
  for (const DetectedEvent& e : result.events) {
    out << "  " << format_time(e.time) << "  phi=" << io::fixed(e.phi, 3)
        << "  baseline=" << io::fixed(e.baseline, 3)
        << "  drop=" << io::fixed(e.drop, 3) << "\n";
  }
}

}  // namespace fenrir::core
