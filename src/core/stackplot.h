// fenrir::core — catchment stack series (paper Figures 1, 2a, 3a, 6a).
//
// The per-site aggregate A(t) over time: how many networks (or how much
// weight) each catchment holds at each observation. Rendered as CSV for
// plotting and as compact console summaries; drain events are visible as
// a site's series collapsing toward zero.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/vector.h"

namespace fenrir::core {

class StackSeries {
 public:
  /// Computes A(t) for every vector in the dataset; weighted if the
  /// dataset has weights.
  static StackSeries compute(const Dataset& dataset);

  std::size_t times() const noexcept { return times_.size(); }
  std::size_t site_count() const noexcept { return site_names_.size(); }

  TimePoint time(std::size_t t) const { return times_.at(t); }
  const std::string& site_name(SiteId s) const { return site_names_.at(s); }

  /// Mass of site s at observation t (count, or total weight).
  double value(std::size_t t, SiteId s) const {
    return values_.at(t).at(s);
  }
  /// Fraction of the observation total at site s (0 if the total is 0).
  double fraction(std::size_t t, SiteId s) const;

  /// CSV: time column plus one column per site.
  void write_csv(std::ostream& out) const;

  /// The observation (if any) where site @p s first drops below
  /// @p fraction of its preceding running maximum — a drain signature.
  std::optional<std::size_t> first_collapse(SiteId s,
                                            double fraction = 0.1) const;

 private:
  std::vector<TimePoint> times_;
  std::vector<std::string> site_names_;
  std::vector<std::vector<double>> values_;  // [t][site]
};

}  // namespace fenrir::core
