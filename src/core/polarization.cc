#include "core/polarization.h"

#include <algorithm>
#include <stdexcept>

namespace fenrir::core {

PolarizationReport detect_polarization(
    const RoutingVector& v, std::span<const geo::Coord> network_coords,
    const std::unordered_map<SiteId, geo::Coord>& site_coords,
    const PolarizationConfig& config) {
  if (network_coords.size() != v.assignment.size()) {
    throw std::invalid_argument("detect_polarization: coord size mismatch");
  }
  if (site_coords.empty()) {
    throw std::invalid_argument("detect_polarization: no site coordinates");
  }

  struct Accumulator {
    std::size_t networks = 0;
    double excess_sum = 0.0;
  };
  std::unordered_map<std::uint64_t, Accumulator> acc;

  PolarizationReport out;
  for (std::size_t n = 0; n < v.assignment.size(); ++n) {
    const SiteId serving = v.assignment[n];
    const auto serving_it = site_coords.find(serving);
    if (serving_it == site_coords.end()) continue;  // unknown/err/other
    ++out.known_networks;

    const double d_serving =
        geo::haversine_km(network_coords[n], serving_it->second);
    SiteId nearest = serving;
    double d_nearest = d_serving;
    for (const auto& [site, where] : site_coords) {
      const double d = geo::haversine_km(network_coords[n], where);
      if (d < d_nearest) {
        d_nearest = d;
        nearest = site;
      }
    }
    const double excess = d_serving - d_nearest;
    if (excess < config.min_excess_km) continue;

    ++out.polarized_networks;
    auto& a = acc[(std::uint64_t{serving} << 32) | nearest];
    ++a.networks;
    a.excess_sum += excess;
  }

  for (const auto& [key, a] : acc) {
    PolarizedGroup g;
    g.serving = static_cast<SiteId>(key >> 32);
    g.nearest = static_cast<SiteId>(key & 0xffffffffu);
    g.networks = a.networks;
    g.mean_excess_km = a.excess_sum / static_cast<double>(a.networks);
    out.groups.push_back(g);
  }
  std::sort(out.groups.begin(), out.groups.end(),
            [](const PolarizedGroup& a, const PolarizedGroup& b) {
              if (a.networks != b.networks) return a.networks > b.networks;
              return a.mean_excess_km > b.mean_excess_km;
            });
  return out;
}

}  // namespace fenrir::core
