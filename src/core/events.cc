#include "core/events.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace fenrir::core {

std::vector<double> consecutive_phi(const Dataset& dataset,
                                    UnknownPolicy policy) {
  const std::size_t n = dataset.series.size();
  std::vector<double> out(n, -1.0);
  const bool weighted = !dataset.weights.empty();
  for (std::size_t i = 1; i < n; ++i) {
    const RoutingVector& a = dataset.series[i - 1];
    const RoutingVector& b = dataset.series[i];
    if (!a.valid || !b.valid) continue;
    out[i] = weighted
                 ? gower_similarity(a, b, dataset.weights, policy)
                 : gower_similarity(a, b, policy);
  }
  return out;
}

std::vector<DetectedEvent> detect_changes_from_phi(
    const std::vector<double>& phi, const std::vector<TimePoint>& times,
    const DetectorConfig& config) {
  if (times.size() != phi.size()) {
    throw std::invalid_argument("detect_changes_from_phi: size mismatch");
  }
  std::vector<DetectedEvent> events;
  std::deque<double> window;

  const auto baseline_of = [&]() {
    std::vector<double> sorted(window.begin(), window.end());
    std::sort(sorted.begin(), sorted.end());
    return sorted[sorted.size() / 2];
  };
  const auto spread_of = [&](double median) {
    // Median absolute deviation, scaled to be comparable to a stddev.
    std::vector<double> dev;
    dev.reserve(window.size());
    for (const double v : window) dev.push_back(std::fabs(v - median));
    std::sort(dev.begin(), dev.end());
    return 1.4826 * dev[dev.size() / 2];
  };

  for (std::size_t i = 0; i < phi.size(); ++i) {
    if (phi[i] < 0.0) continue;  // no comparison at this slot
    bool is_event = false;
    if (window.size() >= config.min_history) {
      const double baseline = baseline_of();
      const double spread = spread_of(baseline);
      const double threshold =
          baseline - std::max(config.min_drop, config.z_threshold * spread);
      if (phi[i] < threshold) {
        is_event = true;
        events.push_back(DetectedEvent{i, times[i], phi[i], baseline,
                                       baseline - phi[i]});
      }
    }
    if (!is_event) {
      window.push_back(phi[i]);
      if (window.size() > config.window) window.pop_front();
    }
  }
  return events;
}

std::vector<DetectedEvent> detect_changes(const Dataset& dataset,
                                          const DetectorConfig& config,
                                          UnknownPolicy policy) {
  const auto phi = consecutive_phi(dataset, policy);
  std::vector<TimePoint> times;
  times.reserve(dataset.series.size());
  for (const auto& v : dataset.series) times.push_back(v.time);
  return detect_changes_from_phi(phi, times, config);
}

}  // namespace fenrir::core
