#include "core/compare_kernels.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/simd_dispatch.h"

namespace fenrir::core {

double in_order_sum(std::span<const double> w) {
  double total = 0.0;
  for (const double x : w) total += x;
  return total;
}

namespace {

template <typename T>
void pack_row(std::byte* dst, const RoutingVector& v) {
  T* out = reinterpret_cast<T*>(dst);
  for (std::size_t i = 0; i < v.assignment.size(); ++i) {
    out[i] = static_cast<T>(v.assignment[i]);
  }
}

// Blocked branchless match counter. The inner block accumulates into
// 32-bit lanes the compiler widens from byte/word compares (pcmpeq +
// psadbw-style reductions); the outer loop drains them into 64-bit sums
// well before they could wrap.
template <typename T>
MatchCounts count_matches_impl(const T* a, const T* b, std::size_t n) {
  MatchCounts out;
  constexpr std::size_t kBlock = 4096;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t end = std::min(n, i + kBlock);
    std::uint32_t m = 0, k = 0;
    for (std::size_t j = i; j < end; ++j) {
      const unsigned eq = a[j] == b[j];
      const unsigned an = a[j] != 0;  // kUnknownSite == 0 survives packing
      const unsigned bn = b[j] != 0;
      m += eq & an;
      k += an & bn;
    }
    out.matches += m;
    out.mutual_known += k;
    i = end;
  }
  return out;
}

// Weighted variant: same left-to-right accumulation as the scalar
// reference (reordering doubles changes the bits), but branchless
// selects instead of data-dependent branches.
template <typename T>
WeightedCounts weighted_impl(const T* a, const T* b, const double* w,
                             std::size_t n, UnknownPolicy policy,
                             double pessimistic_total) {
  WeightedCounts out;
  if (policy == UnknownPolicy::kPessimistic) {
    for (std::size_t i = 0; i < n; ++i) {
      const bool hit = a[i] == b[i] && a[i] != 0;
      out.matched += hit ? w[i] : 0.0;
    }
    out.denom = pessimistic_total;
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool known = a[i] != 0 && b[i] != 0;
    const bool hit = known && a[i] == b[i];
    out.denom += known ? w[i] : 0.0;
    out.matched += hit ? w[i] : 0.0;
  }
  return out;
}

std::size_t width_for(SiteId max_id) {
  if (max_id <= 0xff) return 1;
  if (max_id <= 0xffff) return 2;
  return 4;
}

// Typed change-set scan, bounded: bails at the (cap+1)-th mismatch.
// Mismatches are rare on the workloads that reach this path (that is why
// the delta layer exists), so the hot loop is a well-predicted equality
// test per element. The unbounded scan is this with cap = kNoCap — the
// bail branch never fires. Anchor probes call
// this against rows that are usually either near-identical (the probe
// wins) or near-total rewrites (bail after ~cap mismatches), so the
// abort is what keeps a failed probe cheap.
template <typename T>
bool delta_scan_bounded(const T* a, const T* b, std::size_t n,
                        std::size_t cap, std::vector<DeltaEntry>& out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      if (out.size() == cap) {
        out.clear();
        return false;
      }
      out.push_back({static_cast<std::uint32_t>(i),
                     static_cast<SiteId>(a[i]), static_cast<SiteId>(b[i])});
    }
  }
  return true;
}

}  // namespace

// Scalar tier of the dispatch table (simd_dispatch.h): thin typed
// wrappers over the oracle templates above. The unbounded delta scan is
// expressed as the bounded one with simd::kNoCap — out.size() can never
// reach SIZE_MAX, so the bail branch is dead and the loop body matches
// delta_scan exactly.
namespace simd {

MatchCounts count_u8_scalar(const std::uint8_t* a, const std::uint8_t* b,
                            std::size_t n) {
  return count_matches_impl(a, b, n);
}
MatchCounts count_u16_scalar(const std::uint16_t* a, const std::uint16_t* b,
                             std::size_t n) {
  return count_matches_impl(a, b, n);
}
MatchCounts count_u32_scalar(const std::uint32_t* a, const std::uint32_t* b,
                             std::size_t n) {
  return count_matches_impl(a, b, n);
}
bool delta_u8_scalar(const std::uint8_t* a, const std::uint8_t* b,
                     std::size_t n, std::size_t cap,
                     std::vector<DeltaEntry>& out) {
  return delta_scan_bounded(a, b, n, cap, out);
}
bool delta_u16_scalar(const std::uint16_t* a, const std::uint16_t* b,
                      std::size_t n, std::size_t cap,
                      std::vector<DeltaEntry>& out) {
  return delta_scan_bounded(a, b, n, cap, out);
}
bool delta_u32_scalar(const std::uint32_t* a, const std::uint32_t* b,
                      std::size_t n, std::size_t cap,
                      std::vector<DeltaEntry>& out) {
  return delta_scan_bounded(a, b, n, cap, out);
}
SiteId max_site_scalar(const SiteId* src, std::size_t n) {
  SiteId max_id = 0;
  for (std::size_t i = 0; i < n; ++i) max_id = std::max(max_id, src[i]);
  return max_id;
}
void pack_u8_scalar(const SiteId* src, std::uint8_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(src[i]);
  }
}
void pack_u16_scalar(const SiteId* src, std::uint16_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint16_t>(src[i]);
  }
}

std::int64_t swap_patch_u8_scalar(const std::uint8_t* row,
                                  const std::uint32_t* idx,
                                  const SiteId* before, const SiteId* after,
                                  std::size_t n, std::size_t /*row_len*/) {
  std::int64_t d_matches = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const SiteId b = row[idx[t]];
    d_matches += (after[t] == b);
    d_matches -= (before[t] == b);
  }
  return d_matches;
}

}  // namespace simd

SwapPatchU8Fn active_swap_patch_u8() noexcept {
  return simd::active().swap_u8;
}

PackedSeries PackedSeries::pack(const Dataset& dataset) {
  PackedSeries s;
  const simd::KernelTable& k = simd::active();
  SiteId max_id = 0;
  for (const RoutingVector& v : dataset.series) {
    if (v.assignment.empty()) continue;
    max_id = std::max(max_id, k.max_site(v.assignment.data(),
                                         v.assignment.size()));
  }
  s.width_ = width_for(max_id);
  for (const RoutingVector& v : dataset.series) s.append(v);
  return s;
}

void PackedSeries::append(const RoutingVector& v) {
  if (rows_ == 0 && networks_ == 0) {
    networks_ = v.assignment.size();
  } else if (v.assignment.size() != networks_) {
    throw std::invalid_argument("PackedSeries: vector size mismatch");
  }
  const simd::KernelTable& k = simd::active();
  const SiteId max_id =
      v.assignment.empty() ? 0
                           : k.max_site(v.assignment.data(),
                                        v.assignment.size());
  if (const std::size_t need = width_for(max_id); need > width_) {
    widen_to(need);
  }
  data_.resize((rows_ + 1 - mapped_.size()) * networks_ * width_);
  std::byte* dst = row_ptr(rows_);
  switch (width_) {
    case 1:
      k.pack_u8(v.assignment.data(), reinterpret_cast<std::uint8_t*>(dst),
                networks_);
      break;
    case 2:
      k.pack_u16(v.assignment.data(), reinterpret_cast<std::uint16_t*>(dst),
                 networks_);
      break;
    default:
      pack_row<std::uint32_t>(dst, v);
      break;
  }
  ++rows_;
}

void PackedSeries::pop_back() noexcept {
  if (rows_ == 0) return;
  --rows_;
  if (rows_ >= mapped_.size()) {
    data_.resize((rows_ - mapped_.size()) * networks_ * width_);
  } else {
    mapped_.pop_back();
    if (mapped_.empty()) keepalive_.reset();
  }
}

void PackedSeries::copy_row(std::size_t dst, std::size_t src) {
  if (dst >= rows_ || src >= rows_) {
    throw std::out_of_range("PackedSeries::copy_row");
  }
  if (dst == src) return;
  if (dst < mapped_.size()) materialize_mapped();
  std::memcpy(row_ptr(dst), row_ptr(src), networks_ * width_);
}

void PackedSeries::clear() noexcept {
  rows_ = 0;
  networks_ = 0;
  width_ = 1;
  data_.clear();
  mapped_.clear();
  keepalive_.reset();
}

void PackedSeries::materialize_mapped() {
  if (mapped_.empty()) return;
  const std::size_t stride = networks_ * width_;
  std::vector<std::byte> owned(rows_ * stride);
  for (std::size_t r = 0; r < mapped_.size(); ++r) {
    std::memcpy(owned.data() + r * stride, mapped_[r], stride);
  }
  std::memcpy(owned.data() + mapped_.size() * stride, data_.data(),
              data_.size());
  data_ = std::move(owned);
  mapped_.clear();
  keepalive_.reset();
}

void PackedSeries::widen_to(std::size_t width) {
  // value_at reads through row_ptr, so the rewrite below sees mapped
  // rows too; afterwards everything is owned at the new width and the
  // borrow can be dropped.
  std::vector<std::byte> wide(rows_ * networks_ * width);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t n = 0; n < networks_; ++n) {
      const SiteId v = value_at(r, n);
      std::byte* dst = wide.data() + (r * networks_ + n) * width;
      if (width == 2) {
        const auto x = static_cast<std::uint16_t>(v);
        std::memcpy(dst, &x, sizeof x);
      } else {
        std::memcpy(dst, &v, sizeof v);
      }
    }
  }
  data_ = std::move(wide);
  width_ = width;
  mapped_.clear();
  keepalive_.reset();
}

void PackedSeries::adopt_rows(std::size_t networks, std::size_t width,
                              std::span<const std::byte* const> rows,
                              std::shared_ptr<const void> keepalive) {
  if (rows_ != 0 || networks_ != 0) {
    throw std::logic_error("PackedSeries::adopt_rows: series not empty");
  }
  if (width != 1 && width != 2 && width != 4) {
    throw std::invalid_argument("PackedSeries::adopt_rows: bad width");
  }
  networks_ = networks;
  width_ = width;
  mapped_.assign(rows.begin(), rows.end());
  rows_ = mapped_.size();
  keepalive_ = std::move(keepalive);
}

void PackedSeries::append_packed(const std::byte* src, std::size_t src_width) {
  if (networks_ == 0 && rows_ == 0) {
    throw std::logic_error("PackedSeries::append_packed: networks unset");
  }
  if (src_width > width_) widen_to(src_width);
  data_.resize((rows_ + 1 - mapped_.size()) * networks_ * width_);
  std::byte* dst = row_ptr(rows_);
  if (src_width == width_) {
    std::memcpy(dst, src, networks_ * width_);
  } else {
    // Widening convert: the source row stayed narrow while the series
    // has already widened (host order on both sides).
    for (std::size_t n = 0; n < networks_; ++n) {
      SiteId v = 0;
      if (src_width == 1) {
        std::uint8_t x;
        std::memcpy(&x, src + n, sizeof x);
        v = x;
      } else if (src_width == 2) {
        std::uint16_t x;
        std::memcpy(&x, src + n * 2, sizeof x);
        v = x;
      } else {
        std::memcpy(&v, src + n * 4, sizeof v);
      }
      std::byte* out = dst + n * width_;
      if (width_ == 2) {
        const auto x = static_cast<std::uint16_t>(v);
        std::memcpy(out, &x, sizeof x);
      } else {
        std::memcpy(out, &v, sizeof v);
      }
    }
  }
  ++rows_;
}

MatchCounts PackedSeries::counts(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= rows_) throw std::out_of_range("PackedSeries::counts");
  const std::byte* a = row_ptr(i);
  const std::byte* b = row_ptr(j);
  const simd::KernelTable& k = simd::active();
  switch (width_) {
    case 1:
      return k.count_u8(reinterpret_cast<const std::uint8_t*>(a),
                        reinterpret_cast<const std::uint8_t*>(b), networks_);
    case 2:
      return k.count_u16(reinterpret_cast<const std::uint16_t*>(a),
                         reinterpret_cast<const std::uint16_t*>(b), networks_);
    default:
      return k.count_u32(reinterpret_cast<const std::uint32_t*>(a),
                         reinterpret_cast<const std::uint32_t*>(b), networks_);
  }
}

WeightedCounts PackedSeries::weighted_counts(std::size_t i, std::size_t j,
                                             std::span<const double> w,
                                             UnknownPolicy policy,
                                             double pessimistic_total) const {
  if (i >= rows_ || j >= rows_) {
    throw std::out_of_range("PackedSeries::weighted_counts");
  }
  if (w.size() != networks_) {
    throw std::invalid_argument("PackedSeries: weight size mismatch");
  }
  const std::byte* a = row_ptr(i);
  const std::byte* b = row_ptr(j);
  switch (width_) {
    case 1:
      return weighted_impl(reinterpret_cast<const std::uint8_t*>(a),
                           reinterpret_cast<const std::uint8_t*>(b), w.data(),
                           networks_, policy, pessimistic_total);
    case 2:
      return weighted_impl(reinterpret_cast<const std::uint16_t*>(a),
                           reinterpret_cast<const std::uint16_t*>(b), w.data(),
                           networks_, policy, pessimistic_total);
    default:
      return weighted_impl(reinterpret_cast<const std::uint32_t*>(a),
                           reinterpret_cast<const std::uint32_t*>(b), w.data(),
                           networks_, policy, pessimistic_total);
  }
}

SiteId PackedSeries::value_at(std::size_t row, std::size_t n) const {
  const std::byte* p = row_ptr(row) + n * width_;
  switch (width_) {
    case 1: {
      std::uint8_t x;
      std::memcpy(&x, p, sizeof x);
      return x;
    }
    case 2: {
      std::uint16_t x;
      std::memcpy(&x, p, sizeof x);
      return x;
    }
    default: {
      SiteId x;
      std::memcpy(&x, p, sizeof x);
      return x;
    }
  }
}

std::vector<DeltaEntry> PackedSeries::delta_between(std::size_t from,
                                                    std::size_t to) const {
  if (from >= rows_ || to >= rows_) {
    throw std::out_of_range("PackedSeries::delta_between");
  }
  std::vector<DeltaEntry> delta;
  delta_between_bounded(from, to, simd::kNoCap, delta);
  return delta;
}

bool PackedSeries::delta_between_bounded(std::size_t from, std::size_t to,
                                         std::size_t cap,
                                         std::vector<DeltaEntry>& out) const {
  if (from >= rows_ || to >= rows_) {
    throw std::out_of_range("PackedSeries::delta_between_bounded");
  }
  out.clear();
  const std::byte* a = row_ptr(from);
  const std::byte* b = row_ptr(to);
  const simd::KernelTable& k = simd::active();
  switch (width_) {
    case 1:
      return k.delta_u8(reinterpret_cast<const std::uint8_t*>(a),
                        reinterpret_cast<const std::uint8_t*>(b), networks_,
                        cap, out);
    case 2:
      return k.delta_u16(reinterpret_cast<const std::uint16_t*>(a),
                         reinterpret_cast<const std::uint16_t*>(b), networks_,
                         cap, out);
    default:
      return k.delta_u32(reinterpret_cast<const std::uint32_t*>(a),
                         reinterpret_cast<const std::uint32_t*>(b), networks_,
                         cap, out);
  }
}

namespace {

// The per-entry body of apply_delta with the other row's width resolved
// once; the matrix's append loop calls this |Δ| times per cached pair,
// so a per-entry width dispatch would dominate the patch itself.
template <typename T>
void apply_delta_typed(const T* row_b, std::span<const DeltaEntry> delta,
                       std::int64_t& d_matches, std::int64_t& d_known) {
  for (const DeltaEntry& d : delta) {
    const SiteId b = row_b[d.index];
    const bool b_known = b != kUnknownSite;
    d_matches -= (d.before == b && d.before != kUnknownSite);
    d_known -= (d.before != kUnknownSite && b_known);
    d_matches += (d.after == b && d.after != kUnknownSite);
    d_known += (d.after != kUnknownSite && b_known);
  }
}

}  // namespace

MatchCounts apply_delta(MatchCounts base, std::span<const DeltaEntry> delta,
                        const PackedSeries& series, std::size_t row_b) {
  std::int64_t d_matches = 0;
  std::int64_t d_known = 0;
  const std::byte* b = series.row_ptr(row_b);
  switch (series.width_) {
    case 1:
      apply_delta_typed(reinterpret_cast<const std::uint8_t*>(b), delta,
                        d_matches, d_known);
      break;
    case 2:
      apply_delta_typed(reinterpret_cast<const std::uint16_t*>(b), delta,
                        d_matches, d_known);
      break;
    default:
      apply_delta_typed(reinterpret_cast<const std::uint32_t*>(b), delta,
                        d_matches, d_known);
      break;
  }
  base.matches = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(base.matches) + d_matches);
  base.mutual_known = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(base.mutual_known) + d_known);
  return base;
}

PreparedDelta prepare_delta(std::span<const DeltaEntry> delta) {
  PreparedDelta p;
  for (const DeltaEntry& d : delta) {
    const bool before_known = d.before != kUnknownSite;
    const bool after_known = d.after != kUnknownSite;
    if (before_known && after_known) {
      p.idx_swap.push_back(d.index);
      p.before_swap.push_back(d.before);
      p.after_swap.push_back(d.after);
    } else if (after_known) {
      p.idx_gain.push_back(d.index);
      p.after_gain.push_back(d.after);
    } else if (before_known) {
      p.idx_lose.push_back(d.index);
      p.before_lose.push_back(d.before);
    }
  }
  return p;
}

MatchCounts apply_prepared(MatchCounts base, const PreparedDelta& delta,
                           const PackedSeries& series, std::size_t row_b) {
  return ColumnPatcher(series, row_b).apply(base, delta);
}

}  // namespace fenrir::core
