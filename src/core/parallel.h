// fenrir::core — minimal deterministic parallelism.
//
// The only expensive stage in Fenrir is embarrassingly parallel: the
// all-pairs Φ matrix (T² comparisons of N-element vectors). parallel_for
// splits an index range into stride loops with no work stealing and no
// shared mutable state beyond what the caller partitions, so results are
// bit-identical to the serial loop regardless of thread count or
// scheduling.
//
// Execution runs on a lazily started persistent worker pool (one pool
// per process, hardware_concurrency - 1 helper threads). Spawning a
// std::thread costs tens of microseconds; the incremental Φ path issues
// one parallel_for per appended row, where spawn-per-call overhead used
// to dominate small jobs. The pool replaces start/join with a
// condition-variable wakeup while keeping the observable contract of the
// original spawn-per-call implementation:
//
//  * the same stride schedule — logical worker w handles i = w, w+n,
//    w+2n, ...; strides are multiplexed over the available pool threads
//    (plus the calling thread) when n exceeds them;
//  * the same determinism — fn writes to disjoint state per index, so
//    results do not depend on which physical thread runs which stride;
//  * the same exception semantics — the lowest-numbered throwing stride
//    is rethrown after all strides finish; a throwing stride skips its
//    remaining indices, other strides run to completion;
//  * the same metrics — fenrir_parallel_jobs_total and the max/mean
//    stride busy-time imbalance ratio of the last job.
//
// Nested or concurrent parallel_for calls are safe: a call from inside a
// parallel_for body runs serially inline (the pool is occupied by its
// ancestor), and independent threads' calls are serialized one job at a
// time.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace fenrir::core {

namespace detail {

/// True while this thread is executing inside a parallel_for (as caller
/// or pool worker); nested calls then run serially inline instead of
/// waiting on the pool they already occupy.
bool& in_parallel_region() noexcept;

/// The process-wide persistent worker pool. Threads start on the first
/// multi-threaded parallel_for and live until process exit.
class WorkerPool {
 public:
  /// A type-erased stride job: run_stride(fn, w, strides, count) executes
  /// logical worker w's loop i = w, w+strides, ... — the callable stays a
  /// direct (devirtualized) call on the per-index hot path.
  struct Job {
    void (*run_stride)(void* fn, unsigned w, unsigned strides,
                       std::size_t count) = nullptr;
    void* fn = nullptr;
    unsigned strides = 0;
    std::size_t count = 0;
    std::exception_ptr* errors = nullptr;  // one slot per stride
    double* busy = nullptr;                // seconds spent per stride
    /// Dispatching thread's span cursor; workers adopt it so spans
    /// opened inside fn nest under the parallel_for call site.
    obs::internal::SpanNode* span_parent = nullptr;
  };

  static WorkerPool& instance();

  /// Runs every stride of @p job, the calling thread claiming strides
  /// alongside the pool workers. Blocks until all strides finished and
  /// no worker still references @p job. One job at a time; concurrent
  /// callers queue.
  void run(Job& job);

  ~WorkerPool();

 private:
  WorkerPool();
  struct State;
  void worker_main(unsigned index);
  void claim_strides(Job& job);

  // Implementation state lives in parallel.cc (pimpl-free: members are
  // declared there via the State struct to keep this header light).
  State* state_ = nullptr;
};

}  // namespace detail

/// Invokes fn(i) for every i in [0, count), distributing indices across
/// @p threads logical workers (0 = hardware concurrency) with a stride-n
/// schedule: worker w handles i = w, w+n, w+2n, ... Striding balances
/// loops whose per-index cost varies monotonically (the triangular
/// similarity matrix: row i compares i pairs), where contiguous chunks
/// would leave the last worker with almost all the work. fn must be safe
/// to call concurrently for distinct i. If strides throw, the exception
/// of the lowest-numbered throwing stride is rethrown after all strides
/// have finished (remaining indices of a throwing stride are skipped).
///
/// Stride busy time feeds the fenrir_parallel_* metrics (jobs run, and
/// the max/mean busy-time imbalance ratio of the last job) — observation
/// only, never a scheduling input.
///
/// @p grain is the minimum number of indices a stride must amortize a
/// pool wakeup over: the worker count is capped at count / grain, and a
/// job that cannot feed even two workers runs serially inline, skipping
/// pool dispatch entirely. Callers set grain ≈ (dispatch cost) / (cost
/// per index); the default of 1 preserves the historical behavior of
/// parallelizing any count ≥ 2. Affects time only, never values — the
/// stride schedule is deterministic for every (count, threads, grain).
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, unsigned threads = 0,
                  std::size_t grain = 1) {
  if (count == 0) return;
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (n > count) n = static_cast<unsigned>(count);
  if (grain > 1 && count / grain < static_cast<std::size_t>(n)) {
    n = static_cast<unsigned>(count / grain);
    if (n == 0) n = 1;
  }
  if (n == 1 || detail::in_parallel_region()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  static obs::Counter& jobs = obs::registry().counter(
      "fenrir_parallel_jobs_total", "parallel_for invocations that spawned");
  static obs::Gauge& imbalance = obs::registry().gauge(
      "fenrir_parallel_imbalance_ratio",
      "max/mean stride busy time of the last parallel_for");
  std::vector<std::exception_ptr> errors(n);
  std::vector<double> busy(n, 0.0);
  detail::WorkerPool::Job job;
  job.run_stride = [](void* f, unsigned w, unsigned strides,
                      std::size_t total) {
    auto& body = *static_cast<std::remove_reference_t<Fn>*>(f);
    for (std::size_t i = w; i < total; i += strides) body(i);
  };
  job.fn = const_cast<void*>(static_cast<const void*>(std::addressof(fn)));
  job.strides = n;
  job.count = count;
  job.errors = errors.data();
  job.busy = busy.data();
  job.span_parent = obs::internal::current_span_node();
  detail::WorkerPool::instance().run(job);
  jobs.inc();
  double max_busy = 0.0, sum_busy = 0.0;
  for (const double b : busy) {
    if (b > max_busy) max_busy = b;
    sum_busy += b;
  }
  if (sum_busy > 0.0) {
    imbalance.set(max_busy * static_cast<double>(n) / sum_busy);
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace fenrir::core
