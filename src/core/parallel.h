// fenrir::core — minimal deterministic parallelism.
//
// The only expensive stage in Fenrir is embarrassingly parallel: the
// all-pairs Φ matrix (T² comparisons of N-element vectors). parallel_for
// splits an index range over std::threads with static chunking — no work
// stealing, no shared mutable state beyond what the caller partitions —
// so results are bit-identical to the serial loop regardless of thread
// count or scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace fenrir::core {

/// Invokes fn(i) for every i in [0, count), distributing indices across
/// @p threads (0 = hardware concurrency) with a stride-n schedule:
/// worker w handles i = w, w+n, w+2n, ... Striding balances loops whose
/// per-index cost varies monotonically (the triangular similarity matrix:
/// row i compares i pairs), where contiguous chunks would leave the last
/// worker with almost all the work. fn must be safe to call concurrently
/// for distinct i and must not throw — callers validate inputs first.
inline void parallel_for(std::size_t count,
                         const std::function<void(std::size_t)>& fn,
                         unsigned threads = 0) {
  if (count == 0) return;
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (n > count) n = static_cast<unsigned>(count);
  if (n == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    workers.emplace_back([w, n, count, &fn] {
      for (std::size_t i = w; i < count; i += n) fn(i);
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace fenrir::core
