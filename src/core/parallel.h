// fenrir::core — minimal deterministic parallelism.
//
// The only expensive stage in Fenrir is embarrassingly parallel: the
// all-pairs Φ matrix (T² comparisons of N-element vectors). parallel_for
// splits an index range over std::threads with static chunking — no work
// stealing, no shared mutable state beyond what the caller partitions —
// so results are bit-identical to the serial loop regardless of thread
// count or scheduling.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace fenrir::core {

/// Invokes fn(i) for every i in [0, count), distributing indices across
/// @p threads (0 = hardware concurrency) with a stride-n schedule:
/// worker w handles i = w, w+n, w+2n, ... Striding balances loops whose
/// per-index cost varies monotonically (the triangular similarity matrix:
/// row i compares i pairs), where contiguous chunks would leave the last
/// worker with almost all the work. The callable is invoked directly (no
/// std::function indirection on the per-index hot path); fn must be safe
/// to call concurrently for distinct i. If workers throw, the exception
/// of the lowest-numbered throwing worker is rethrown after all workers
/// have joined (remaining indices of a throwing worker are skipped).
///
/// Worker busy time feeds the fenrir_parallel_* metrics (jobs run, and
/// the max/mean busy-time imbalance ratio of the last job) — observation
/// only, never a scheduling input.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, unsigned threads = 0) {
  if (count == 0) return;
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (n > count) n = static_cast<unsigned>(count);
  if (n == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  static obs::Counter& jobs = obs::registry().counter(
      "fenrir_parallel_jobs_total", "parallel_for invocations that spawned");
  static obs::Gauge& imbalance = obs::registry().gauge(
      "fenrir_parallel_imbalance_ratio",
      "max/mean worker busy time of the last parallel_for");
  std::vector<std::thread> workers;
  workers.reserve(n);
  std::vector<std::exception_ptr> errors(n);
  std::vector<double> busy(n, 0.0);
  for (unsigned w = 0; w < n; ++w) {
    workers.emplace_back([w, n, count, &fn, &errors, &busy] {
      const auto start = std::chrono::steady_clock::now();
      try {
        for (std::size_t i = w; i < count; i += n) fn(i);
      } catch (...) {
        errors[w] = std::current_exception();
      }
      busy[w] = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    });
  }
  for (auto& worker : workers) worker.join();
  jobs.inc();
  double max_busy = 0.0, sum_busy = 0.0;
  for (const double b : busy) {
    if (b > max_busy) max_busy = b;
    sum_busy += b;
  }
  if (sum_busy > 0.0) {
    imbalance.set(max_busy * static_cast<double>(n) / sum_busy);
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace fenrir::core
