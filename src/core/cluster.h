// fenrir::core — hierarchical agglomerative clustering (paper §2.6.2).
//
// Routing "modes" are groups of observation times whose vectors are
// mutually similar. We cluster on Gower distance (1-Φ) with HAC:
//
//   * SLINK (Sibson 1973, the paper's citation): optimal O(n²)/O(n)
//     single-linkage — the default.
//   * Nearest-neighbour-chain with Lance–Williams updates: single,
//     complete and average linkage in O(n²) — powering the linkage
//     ablation.
//
// Both produce a Dendrogram (merge list) that can be cut at any distance
// threshold; the adaptive threshold scan reimplements the paper's rule:
// sweep thresholds in [0,1] with step 0.01 and keep the first model with
// fewer than `max_clusters` clusters of which at least one holds
// `min_observations`+ valid observations.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "core/distance_matrix.h"

namespace fenrir::core {

enum class Linkage { kSingle, kComplete, kAverage };

/// A merge list: n-1 rows for n leaves. Cluster ids: 0..n-1 are leaves,
/// n+k is the cluster produced by merge k.
struct Dendrogram {
  struct Merge {
    std::size_t a = 0, b = 0;  // cluster ids merged
    double height = 0.0;       // distance at which they merge
  };
  std::size_t leaves = 0;
  std::vector<Merge> merges;
};

/// Flat clustering: one label per *series index*. Invalid (outage)
/// observations get label kNoise (-1).
struct Clustering {
  static constexpr int kNoise = -1;
  double threshold = 0.0;
  std::vector<int> labels;
  std::size_t cluster_count = 0;

  /// Series indices belonging to cluster c, in time order.
  std::vector<std::size_t> members(int c) const;
  /// Number of clusters with at least @p n members.
  std::size_t clusters_with_at_least(std::size_t n) const;
};

/// Builds the dendrogram over the matrix's valid observations.
/// SLINK is used when linkage == kSingle; NN-chain otherwise.
Dendrogram build_dendrogram(const SimilarityMatrix& matrix, Linkage linkage);

/// SLINK specifically (exposed for testing against NN-chain).
Dendrogram slink_dendrogram(const SimilarityMatrix& matrix);

/// Cuts a dendrogram at @p threshold: merges with height <= threshold are
/// applied. @p matrix supplies the valid-index mapping and must be the
/// one the dendrogram was built from.
Clustering cut_dendrogram(const Dendrogram& dendrogram,
                          const SimilarityMatrix& matrix, double threshold);

/// One-shot convenience.
Clustering cluster_hac(const SimilarityMatrix& matrix, Linkage linkage,
                       double threshold);

struct AdaptiveConfig {
  std::size_t max_clusters = 15;   // accept first model with < this many
  std::size_t min_observations = 2;  // ...of which one has at least this many
  double step = 0.01;
};

/// The paper's adaptive threshold selection. Falls back to threshold 1.0
/// (single cluster) if no step satisfies the rule.
Clustering cluster_adaptive(const SimilarityMatrix& matrix, Linkage linkage,
                            const AdaptiveConfig& config = {});

}  // namespace fenrir::core
