#include "core/time.h"

#include <charconv>
#include <cstdio>

namespace fenrir::core {

std::int64_t days_from_civil(const CivilDate& d) noexcept {
  return detail::days_from_civil_impl(d.year, d.month, d.day);
}

CivilDate civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;
  const unsigned month = mp + (mp < 10 ? 3 : -9);
  return CivilDate{static_cast<int>(y + (month <= 2)),
                   static_cast<int>(month), static_cast<int>(day)};
}

namespace {

std::optional<int> parse_int(std::string_view text) {
  int out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return out;
}

}  // namespace

std::optional<TimePoint> parse_time(std::string_view text) {
  if (text.size() < 10 || text[4] != '-' || text[7] != '-') return std::nullopt;
  const auto year = parse_int(text.substr(0, 4));
  const auto month = parse_int(text.substr(5, 2));
  const auto day = parse_int(text.substr(8, 2));
  if (!year || !month || !day || *month < 1 || *month > 12 || *day < 1 ||
      *day > 31) {
    return std::nullopt;
  }
  TimePoint t = from_date(*year, *month, *day);
  if (text.size() == 10) return t;
  // Optional " HH:MM" suffix.
  if (text.size() != 16 || text[10] != ' ' || text[13] != ':') {
    return std::nullopt;
  }
  const auto hour = parse_int(text.substr(11, 2));
  const auto minute = parse_int(text.substr(14, 2));
  if (!hour || !minute || *hour > 23 || *minute > 59) return std::nullopt;
  return t + *hour * kHour + *minute * kMinute;
}

std::string format_date(TimePoint t) {
  // Floor-divide so pre-1970 times format correctly.
  std::int64_t days = t / kDay;
  if (t % kDay < 0) --days;
  const CivilDate d = civil_from_days(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string format_time(TimePoint t) {
  std::int64_t days = t / kDay;
  std::int64_t rem = t % kDay;
  if (rem < 0) {
    --days;
    rem += kDay;
  }
  const CivilDate d = civil_from_days(days);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02ld:%02ld", d.year,
                d.month, d.day, static_cast<long>(rem / kHour),
                static_cast<long>((rem % kHour) / kMinute));
  return buf;
}

}  // namespace fenrir::core
