#include "core/modebook.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "obs/events.h"
#include "obs/lineage.h"
#include "obs/metrics.h"

namespace fenrir::core {

namespace {

obs::Histogram& scan_length_histogram() {
  static obs::Histogram& h = obs::registry().histogram(
      "fenrir_modebook_scan_length",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
      "representatives scanned per ModeBook::observe before the best "
      "match was settled");
  return h;
}

obs::Counter& new_modes_counter() {
  static obs::Counter& c = obs::registry().counter(
      "fenrir_modebook_new_modes_total", "modes founded by observations");
  return c;
}

obs::Counter& recurrences_counter() {
  static obs::Counter& c = obs::registry().counter(
      "fenrir_modebook_recurrences_total",
      "observations that re-entered a mode other than the previous one");
  return c;
}

/// The runner-up must be this close to the winner (and above the match
/// threshold) before the match is flagged ambiguous.
constexpr double kAmbiguityMargin = 0.02;

}  // namespace

ModeBook::Match ModeBook::observe(const RoutingVector& v) {
  Match out;
  if (!v.valid) {
    out.mode = history_.empty() ? 0 : history_.back();
    return out;
  }

  // Pack the observation once as a candidate row; every representative
  // comparison is then one packed kernel pass. If the vector founds a
  // new mode the row stays; otherwise it is popped again.
  packed_.append(v);
  const std::size_t candidate = packed_.rows() - 1;

  std::optional<std::size_t> best;
  double best_phi = -1.0;
  double second_phi = -1.0;
  std::size_t second = 0;
  std::size_t scanned = 0;
  MatchCounts best_counts;
  // Top-k candidates for the decision record, best first. Insertion
  // into a 4-slot array costs one compare per representative in the
  // common miss case — cheap next to the packed counts() pass.
  std::array<obs::DecisionCandidate, obs::kLineageTopK> top{};
  std::size_t top_count = 0;
  for (std::size_t m = 0; m < representatives_.size(); ++m) {
    ++scanned;
    const MatchCounts counts = packed_.counts(m, candidate);
    const double phi =
        phi_from_counts(counts, v.assignment.size(), config_.policy);
    if (phi > best_phi) {
      second_phi = best_phi;
      second = best.value_or(0);
      best_phi = phi;
      best = m;
      best_counts = counts;
    } else if (phi > second_phi) {
      second_phi = phi;
      second = m;
    }
    if (top_count < top.size() || phi > top[top_count - 1].phi) {
      std::size_t at = std::min(top_count, top.size() - 1);
      while (at > 0 && phi > top[at - 1].phi) {
        top[at] = top[at - 1];
        --at;
      }
      top[at] = {m, phi};
      if (top_count < top.size()) ++top_count;
    }
    // A perfect match cannot be beaten, only tied — and a later tie
    // loses to the earlier mode under the strict > above.
    if (best_phi >= 1.0) break;
  }
  scan_length_histogram().observe(static_cast<double>(scanned));

  if (best && best_phi >= config_.match_threshold) {
    out.mode = *best;
    out.phi = best_phi;
    out.is_recurrence = !history_.empty() && history_.back() != *best;
    if (config_.adapt_representative) {
      representatives_[*best] = v;
      packed_.copy_row(*best, candidate);
    }
    packed_.pop_back();
    if (out.is_recurrence) {
      recurrences_counter().inc();
      // Lazy fields: a long watch sees a recurrence per observation and
      // dedup suppresses most of them — render_double only for the kept.
      obs::event_bus().emit_with(
          obs::Severity::kNotice, "recurrence", [&] {
            std::string fields = "\"mode\":" + std::to_string(out.mode) +
                                 ",\"phi\":" + obs::render_double(out.phi);
            if (out.mode < last_seen_.size() && last_seen_[out.mode]) {
              fields += ",\"gap_seconds\":" +
                        std::to_string(v.time - *last_seen_[out.mode]);
            }
            return fields;
          });
    }
    // A close runner-up means the mode identity was nearly a coin flip —
    // worth an operator's eyes even though the earliest-mode tie rule
    // kept the decision deterministic.
    if (second_phi >= config_.match_threshold &&
        best_phi - second_phi < kAmbiguityMargin && second != *best) {
      obs::event_bus().emit(
          obs::Severity::kWarn, "ambiguous_match",
          "\"mode\":" + std::to_string(*best) +
              ",\"phi\":" + obs::render_double(best_phi) +
              ",\"runner_up\":" + std::to_string(second) +
              ",\"runner_up_phi\":" + obs::render_double(second_phi));
    }
  } else {
    out.mode = representatives_.size();
    out.phi = best_phi < 0 ? 0.0 : best_phi;
    out.is_new = true;
    representatives_.push_back(v);  // the candidate row stays in packed_
    new_modes_counter().inc();
    obs::event_bus().emit(obs::Severity::kNotice, "mode_created",
                          "\"mode\":" + std::to_string(out.mode) +
                              ",\"best_phi\":" + obs::render_double(out.phi) +
                              ",\"modes\":" +
                              std::to_string(representatives_.size()));
  }
  // Every verdict leaves a decision record (see CONTRIBUTING): the
  // struct is flat and the store renders JSON lazily, so the recording
  // cost is bench-gated within 5% of a recording-free observe.
  if (obs::LineageStore& lin = obs::lineage(); lin.enabled()) {
    obs::DecisionRecord rec;
    rec.obs_time = static_cast<std::int64_t>(v.time);
    rec.verdict = out.is_new          ? obs::Verdict::kNewMode
                  : out.is_recurrence ? obs::Verdict::kRecurrence
                                      : obs::Verdict::kRepeat;
    rec.mode = out.mode;
    rec.phi = out.phi;
    if (!out.is_new && out.mode < last_seen_.size() &&
        last_seen_[out.mode]) {
      rec.gap_seconds =
          static_cast<std::int64_t>(v.time - *last_seen_[out.mode]);
    }
    rec.networks = v.assignment.size();
    if (scanned > 0) {
      rec.matches = best_counts.matches;
      rec.mismatches = best_counts.mutual_known - best_counts.matches;
      rec.unknown = rec.networks - best_counts.mutual_known;
    }
    rec.scanned = scanned;
    rec.top = top;
    rec.top_count = static_cast<std::uint32_t>(top_count);
    lin.record(rec);
  }
  if (out.mode >= last_seen_.size()) last_seen_.resize(out.mode + 1);
  last_seen_[out.mode] = v.time;
  history_.push_back(out.mode);
  last_ = out;
  return out;
}

std::string ModeBook::status_json() const {
  std::string out = "{\"modes\":" + std::to_string(mode_count()) +
                    ",\"observations\":" + std::to_string(history_.size());
  if (last_) {
    out += ",\"last_mode\":" + std::to_string(last_->mode) +
           ",\"last_phi\":" + obs::render_double(last_->phi) +
           ",\"last_is_new\":" + (last_->is_new ? "true" : "false") +
           ",\"last_is_recurrence\":" +
           (last_->is_recurrence ? "true" : "false");
  }
  out += "}";
  return out;
}

void ModeBook::restore(std::vector<RoutingVector> representatives,
                       std::vector<std::size_t> history) {
  for (const std::size_t mode : history) {
    if (mode >= representatives.size()) {
      throw std::invalid_argument(
          "ModeBook::restore: history names mode " + std::to_string(mode) +
          " but only " + std::to_string(representatives.size()) +
          " representatives were given");
    }
  }
  PackedSeries packed;
  for (const RoutingVector& r : representatives) packed.append(r);
  representatives_ = std::move(representatives);
  packed_ = std::move(packed);
  history_ = std::move(history);
  // The snapshot carries no per-mode sighting times: gaps restart
  // unknown, and the first post-restore recurrence omits its gap.
  last_seen_.assign(representatives_.size(), std::nullopt);
}

}  // namespace fenrir::core
