#include "core/modebook.h"

#include <stdexcept>
#include <string>

namespace fenrir::core {

ModeBook::Match ModeBook::observe(const RoutingVector& v) {
  Match out;
  if (!v.valid) {
    out.mode = history_.empty() ? 0 : history_.back();
    return out;
  }

  std::optional<std::size_t> best;
  double best_phi = -1.0;
  for (std::size_t m = 0; m < representatives_.size(); ++m) {
    const double phi =
        gower_similarity(representatives_[m], v, config_.policy);
    if (phi > best_phi) {
      best_phi = phi;
      best = m;
    }
  }

  if (best && best_phi >= config_.match_threshold) {
    out.mode = *best;
    out.phi = best_phi;
    out.is_recurrence = !history_.empty() && history_.back() != *best;
    if (config_.adapt_representative) representatives_[*best] = v;
  } else {
    out.mode = representatives_.size();
    out.phi = best_phi < 0 ? 0.0 : best_phi;
    out.is_new = true;
    representatives_.push_back(v);
  }
  history_.push_back(out.mode);
  return out;
}

void ModeBook::restore(std::vector<RoutingVector> representatives,
                       std::vector<std::size_t> history) {
  for (const std::size_t mode : history) {
    if (mode >= representatives.size()) {
      throw std::invalid_argument(
          "ModeBook::restore: history names mode " + std::to_string(mode) +
          " but only " + std::to_string(representatives.size()) +
          " representatives were given");
    }
  }
  representatives_ = std::move(representatives);
  history_ = std::move(history);
}

}  // namespace fenrir::core
