#include "core/compare.h"

namespace fenrir::core {

double gower_similarity(const RoutingVector& a, const RoutingVector& b,
                        UnknownPolicy policy) {
  if (a.assignment.size() != b.assignment.size()) {
    throw std::invalid_argument("gower_similarity: size mismatch");
  }
  const std::size_t n = a.assignment.size();
  if (n == 0) return 0.0;
  std::size_t matches = 0;
  if (policy == UnknownPolicy::kPessimistic) {
    for (std::size_t i = 0; i < n; ++i) {
      matches += (a.assignment[i] == b.assignment[i] &&
                  a.assignment[i] != kUnknownSite);
    }
    return static_cast<double>(matches) / static_cast<double>(n);
  }
  std::size_t considered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.assignment[i] == kUnknownSite || b.assignment[i] == kUnknownSite) {
      continue;
    }
    ++considered;
    matches += (a.assignment[i] == b.assignment[i]);
  }
  if (considered == 0) return 0.0;
  return static_cast<double>(matches) / static_cast<double>(considered);
}

double gower_similarity(const RoutingVector& a, const RoutingVector& b,
                        std::span<const double> weights,
                        UnknownPolicy policy) {
  if (a.assignment.size() != b.assignment.size()) {
    throw std::invalid_argument("gower_similarity: size mismatch");
  }
  if (weights.size() != a.assignment.size()) {
    throw std::invalid_argument("gower_similarity: weight size mismatch");
  }
  const std::size_t n = a.assignment.size();
  double matched = 0.0;
  double denom = 0.0;
  if (policy == UnknownPolicy::kPessimistic) {
    for (std::size_t i = 0; i < n; ++i) {
      denom += weights[i];
      if (a.assignment[i] == b.assignment[i] &&
          a.assignment[i] != kUnknownSite) {
        matched += weights[i];
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (a.assignment[i] == kUnknownSite || b.assignment[i] == kUnknownSite) {
        continue;
      }
      denom += weights[i];
      if (a.assignment[i] == b.assignment[i]) matched += weights[i];
    }
  }
  if (denom <= 0.0) return 0.0;
  return matched / denom;
}

}  // namespace fenrir::core
