// fenrir::core — hop-level flow aggregation (paper Figures 7/8).
//
// For enterprise routing the paper widens the catchment notion to whole
// forward paths: at each hop k, which network carries each destination?
// SankeyFlows aggregates per-destination hop-label sequences into node
// masses per (hop, label) and flows per (hop, label → label), the data
// behind a Sankey diagram of the enterprise routing cone.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace fenrir::core {

class SankeyFlows {
 public:
  /// @p paths: one label sequence per destination network — the entity
  /// (e.g. AS name) at hops 0..H. Shorter sequences simply stop
  /// contributing past their length. Empty labels are skipped.
  static SankeyFlows from_paths(const std::vector<std::vector<std::string>>& paths);

  std::size_t hop_count() const noexcept { return node_mass_.size(); }

  /// Mass (destination count) of @p label at @p hop; 0 if absent.
  std::uint64_t node(std::size_t hop, const std::string& label) const;

  /// Fraction of hop total carried by @p label (0 if hop empty).
  double node_fraction(std::size_t hop, const std::string& label) const;

  struct Flow {
    std::size_t hop;  // from hop -> hop+1
    std::string from, to;
    std::uint64_t count;
  };
  /// All flows, descending by count (ties: hop, labels).
  std::vector<Flow> flows() const;

  /// Labels present at a hop, descending by mass.
  std::vector<std::pair<std::string, std::uint64_t>> nodes_at(
      std::size_t hop) const;

  /// CSV: hop,from,to,count rows.
  void write_csv(std::ostream& out) const;

 private:
  // node_mass_[hop][label]; flow_[hop][{from,to}]
  std::vector<std::map<std::string, std::uint64_t>> node_mass_;
  std::vector<std::map<std::pair<std::string, std::string>, std::uint64_t>>
      flow_;
};

}  // namespace fenrir::core
