// AVX2 tier of the Φ kernels (see simd_dispatch.h). Compiled with
// -mavx2 in its own TU so the rest of fenrir_core stays baseline-ISA;
// dispatch only lands here after __builtin_cpu_supports("avx2").
//
// The match kernels follow the classic byte-mask accumulation shape:
// pcmpeq produces 0xFF/0x00 lanes, subtracting the mask adds 0/1 per
// lane, and the per-lane accumulators are drained into wide sums before
// they can wrap (255 iterations for u8 via psadbw, 16k for u16 via
// pmaddwd, u32 lanes drain per block). Counts are exact integers, so Φ
// derived from them is bit-identical to the scalar oracle by
// construction — there is no float in sight.
#include "core/simd_dispatch.h"

#include <algorithm>

#if defined(FENRIR_BUILD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace fenrir::core::simd {

namespace {

inline std::uint64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

inline std::uint64_t hsum_epi32(__m256i v) {
  // Zero-extend the eight u32 lanes into u64 pairs before summing; the
  // lane values are block-bounded well below 2^32, so no wrap.
  const __m256i zero = _mm256_setzero_si256();
  const __m256i lo = _mm256_unpacklo_epi32(v, zero);
  const __m256i hi = _mm256_unpackhi_epi32(v, zero);
  return hsum_epi64(_mm256_add_epi64(lo, hi));
}

}  // namespace

MatchCounts count_u8_avx2(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t n) {
  MatchCounts out;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi8(-1);
  __m256i msum = zero, ksum = zero;  // u64 lanes
  std::size_t i = 0;
  while (i + 32 <= n) {
    // Byte accumulators hold at most one count per iteration; drain via
    // psadbw before 256 iterations could wrap them.
    const std::size_t iters = std::min<std::size_t>((n - i) / 32, 255);
    __m256i accm = zero, acck = zero;
    for (std::size_t t = 0; t < iters; ++t, i += 32) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const __m256i eq = _mm256_cmpeq_epi8(va, vb);
      const __m256i az = _mm256_cmpeq_epi8(va, zero);  // a == unknown
      const __m256i bz = _mm256_cmpeq_epi8(vb, zero);
      // match: equal and a known (b known follows from equality).
      const __m256i match = _mm256_andnot_si256(az, eq);
      const __m256i known =
          _mm256_andnot_si256(az, _mm256_andnot_si256(bz, ones));
      accm = _mm256_sub_epi8(accm, match);
      acck = _mm256_sub_epi8(acck, known);
    }
    msum = _mm256_add_epi64(msum, _mm256_sad_epu8(accm, zero));
    ksum = _mm256_add_epi64(ksum, _mm256_sad_epu8(acck, zero));
  }
  out.matches = hsum_epi64(msum);
  out.mutual_known = hsum_epi64(ksum);
  for (; i < n; ++i) {
    out.matches += (a[i] == b[i]) & (a[i] != 0);
    out.mutual_known += (a[i] != 0) & (b[i] != 0);
  }
  return out;
}

MatchCounts count_u16_avx2(const std::uint16_t* a, const std::uint16_t* b,
                           std::size_t n) {
  MatchCounts out;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones16 = _mm256_set1_epi16(1);
  const __m256i allset = _mm256_set1_epi16(-1);
  std::size_t i = 0;
  while (i + 16 <= n) {
    // Word accumulators: one count per iteration, pmaddwd-drained well
    // before 2^15 iterations (the madd operands are signed).
    const std::size_t iters = std::min<std::size_t>((n - i) / 16, 16'000);
    __m256i accm = zero, acck = zero;
    for (std::size_t t = 0; t < iters; ++t, i += 16) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const __m256i eq = _mm256_cmpeq_epi16(va, vb);
      const __m256i az = _mm256_cmpeq_epi16(va, zero);
      const __m256i bz = _mm256_cmpeq_epi16(vb, zero);
      const __m256i match = _mm256_andnot_si256(az, eq);
      const __m256i known =
          _mm256_andnot_si256(az, _mm256_andnot_si256(bz, allset));
      accm = _mm256_sub_epi16(accm, match);
      acck = _mm256_sub_epi16(acck, known);
    }
    out.matches += hsum_epi32(_mm256_madd_epi16(accm, ones16));
    out.mutual_known += hsum_epi32(_mm256_madd_epi16(acck, ones16));
  }
  for (; i < n; ++i) {
    out.matches += (a[i] == b[i]) & (a[i] != 0);
    out.mutual_known += (a[i] != 0) & (b[i] != 0);
  }
  return out;
}

MatchCounts count_u32_avx2(const std::uint32_t* a, const std::uint32_t* b,
                           std::size_t n) {
  MatchCounts out;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i allset = _mm256_set1_epi32(-1);
  std::size_t i = 0;
  while (i + 8 <= n) {
    // Dword accumulators: drain per block long before u32 wrap.
    const std::size_t iters = std::min<std::size_t>((n - i) / 8, 1u << 24);
    __m256i accm = zero, acck = zero;
    for (std::size_t t = 0; t < iters; ++t, i += 8) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const __m256i eq = _mm256_cmpeq_epi32(va, vb);
      const __m256i az = _mm256_cmpeq_epi32(va, zero);
      const __m256i bz = _mm256_cmpeq_epi32(vb, zero);
      const __m256i match = _mm256_andnot_si256(az, eq);
      const __m256i known =
          _mm256_andnot_si256(az, _mm256_andnot_si256(bz, allset));
      accm = _mm256_sub_epi32(accm, match);
      acck = _mm256_sub_epi32(acck, known);
    }
    out.matches += hsum_epi32(accm);
    out.mutual_known += hsum_epi32(acck);
  }
  for (; i < n; ++i) {
    out.matches += (a[i] == b[i]) & (a[i] != 0);
    out.mutual_known += (a[i] != 0) & (b[i] != 0);
  }
  return out;
}

namespace {

/// Shared push-with-cap body: mirrors the scalar bounded scan exactly —
/// the (cap+1)-th mismatch clears @p out and aborts.
template <typename T>
inline bool push_entry(std::vector<DeltaEntry>& out, std::size_t cap,
                       std::size_t index, T before, T after) {
  if (out.size() == cap) {
    out.clear();
    return false;
  }
  out.push_back({static_cast<std::uint32_t>(index),
                 static_cast<SiteId>(before), static_cast<SiteId>(after)});
  return true;
}

}  // namespace

bool delta_u8_avx2(const std::uint8_t* a, const std::uint8_t* b, std::size_t n,
                   std::size_t cap, std::vector<DeltaEntry>& out) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    std::uint32_t neq = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    while (neq != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(neq));
      neq &= neq - 1;
      if (!push_entry(out, cap, i + j, a[i + j], b[i + j])) return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] != b[i] && !push_entry(out, cap, i, a[i], b[i])) return false;
  }
  return true;
}

bool delta_u16_avx2(const std::uint16_t* a, const std::uint16_t* b,
                    std::size_t n, std::size_t cap,
                    std::vector<DeltaEntry>& out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // Each u16 lane owns two movemask bits; keep the even one so each
    // mismatch contributes exactly one set bit at position 2*lane.
    std::uint32_t neq = ~static_cast<std::uint32_t>(_mm256_movemask_epi8(
                            _mm256_cmpeq_epi16(va, vb))) &
                        0x55555555u;
    while (neq != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(neq)) >> 1;
      neq &= neq - 1;
      if (!push_entry(out, cap, i + j, a[i + j], b[i + j])) return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] != b[i] && !push_entry(out, cap, i, a[i], b[i])) return false;
  }
  return true;
}

bool delta_u32_avx2(const std::uint32_t* a, const std::uint32_t* b,
                    std::size_t n, std::size_t cap,
                    std::vector<DeltaEntry>& out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    std::uint32_t neq = ~static_cast<std::uint32_t>(_mm256_movemask_ps(
                            _mm256_castsi256_ps(
                                _mm256_cmpeq_epi32(va, vb)))) &
                        0xFFu;
    while (neq != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(neq));
      neq &= neq - 1;
      if (!push_entry(out, cap, i + j, a[i + j], b[i + j])) return false;
    }
  }
  for (; i < n; ++i) {
    if (a[i] != b[i] && !push_entry(out, cap, i, a[i], b[i])) return false;
  }
  return true;
}

SiteId max_site_avx2(const SiteId* src, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_max_epu32(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  }
  const __m128i h = _mm_max_epu32(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  const __m128i h2 = _mm_max_epu32(h, _mm_srli_si128(h, 8));
  const __m128i h3 = _mm_max_epu32(h2, _mm_srli_si128(h2, 4));
  SiteId max_id = static_cast<SiteId>(_mm_cvtsi128_si32(h3));
  for (; i < n; ++i) max_id = std::max(max_id, src[i]);
  return max_id;
}

// The narrowing packs use saturating pack instructions, which are exact
// here: append() widens the store before packing, so every value fits
// the destination and saturation never fires. packus interleaves
// 128-bit lanes, so a cross-lane permute restores element order.
void pack_u8_avx2(const SiteId* src, std::uint8_t* dst, std::size_t n) {
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 8));
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 16));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 24));
    const __m256i ab = _mm256_packus_epi32(a, b);
    const __m256i cd = _mm256_packus_epi32(c, d);
    const __m256i abcd = _mm256_packus_epi16(ab, cd);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_permutevar8x32_epi32(abcd, perm));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(src[i]);
}

void pack_u16_avx2(const SiteId* src, std::uint16_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 8));
    const __m256i ab = _mm256_packus_epi32(a, b);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_permute4x64_epi64(ab, _MM_SHUFFLE(3, 1, 2, 0)));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint16_t>(src[i]);
}

}  // namespace fenrir::core::simd

#endif  // FENRIR_BUILD_AVX2 && __AVX2__
