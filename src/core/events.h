// fenrir::core — change-point detection over a vector time series.
//
// The validation study (paper §3) identifies events by examining the
// similarity between consecutive vectors: a routing change appears as a
// dip in Φ(t, t+1) against the recent baseline. The detector keeps a
// trailing window of consecutive-pair similarities, estimates a robust
// baseline (median) and spread, and flags observations whose similarity
// drops below baseline − max(min_drop, z·spread). Values flagged as
// events are excluded from the baseline so a long disruption does not
// mask itself.
#pragma once

#include <cstddef>
#include <vector>

#include "core/compare.h"
#include "core/vector.h"

namespace fenrir::core {

/// Similarity of each consecutive valid pair: result[i] = Φ(series[i-1],
/// series[i]); index 0 and pairs spanning invalid vectors carry -1
/// ("no comparison").
std::vector<double> consecutive_phi(
    const Dataset& dataset, UnknownPolicy policy = UnknownPolicy::kPessimistic);

struct DetectorConfig {
  std::size_t window = 24;   // trailing comparisons forming the baseline
  std::size_t min_history = 6;  // don't flag before this many comparisons
  double z_threshold = 4.0;  // spread multiplier
  double min_drop = 0.02;    // absolute Φ drop that always counts
};

struct DetectedEvent {
  std::size_t index = 0;   // series index where the change lands
  TimePoint time = 0;
  double phi = 0.0;        // Φ(prev, this)
  double baseline = 0.0;   // median of the trailing window
  double drop = 0.0;       // baseline - phi
};

/// Runs the detector over the dataset.
std::vector<DetectedEvent> detect_changes(
    const Dataset& dataset, const DetectorConfig& config = {},
    UnknownPolicy policy = UnknownPolicy::kPessimistic);

/// Same detector over a precomputed consecutive-Φ sequence (entries < 0
/// are skipped); @p times supplies timestamps for reporting.
std::vector<DetectedEvent> detect_changes_from_phi(
    const std::vector<double>& phi, const std::vector<TimePoint>& times,
    const DetectorConfig& config = {});

}  // namespace fenrir::core
