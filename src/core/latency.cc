#include "core/latency.h"

#include <stdexcept>

#include "stats/stats.h"

namespace fenrir::core {

namespace {

bool usable(double rtt) { return rtt >= 0.0 && !std::isnan(rtt); }

}  // namespace

CatchmentLatency catchment_latency(const RoutingVector& v,
                                   std::span<const double> rtt_ms,
                                   std::span<const double> weights,
                                   std::size_t site_count) {
  if (rtt_ms.size() != v.assignment.size()) {
    throw std::invalid_argument("catchment_latency: rtt size mismatch");
  }
  if (!weights.empty() && weights.size() != v.assignment.size()) {
    throw std::invalid_argument("catchment_latency: weight size mismatch");
  }

  std::vector<std::vector<double>> samples(site_count);
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (std::size_t n = 0; n < v.assignment.size(); ++n) {
    const SiteId s = v.assignment[n];
    if (s == kUnknownSite || !usable(rtt_ms[n])) continue;
    samples.at(s).push_back(rtt_ms[n]);
    const double w = weights.empty() ? 1.0 : weights[n];
    weighted_sum += w * rtt_ms[n];
    weight_total += w;
  }

  CatchmentLatency out;
  out.sites.resize(site_count);
  for (std::size_t s = 0; s < site_count; ++s) {
    auto& per = out.sites[s];
    per.samples = samples[s].size();
    if (per.samples == 0) continue;
    per.p50 = stats::median(samples[s]);
    per.p90 = stats::p90(samples[s]);
    per.mean = stats::mean(samples[s]);
    out.total_samples += per.samples;
  }
  out.weighted_mean = weight_total > 0.0 ? weighted_sum / weight_total : 0.0;
  return out;
}

std::optional<double> site_p90(const RoutingVector& v,
                               std::span<const double> rtt_ms, SiteId site) {
  if (rtt_ms.size() != v.assignment.size()) {
    throw std::invalid_argument("site_p90: rtt size mismatch");
  }
  std::vector<double> samples;
  for (std::size_t n = 0; n < v.assignment.size(); ++n) {
    if (v.assignment[n] == site && usable(rtt_ms[n])) {
      samples.push_back(rtt_ms[n]);
    }
  }
  if (samples.empty()) return std::nullopt;
  return stats::p90(samples);
}

}  // namespace fenrir::core
