// AVX-512 tier of the Φ kernels (see simd_dispatch.h). Compiled with
// -mavx512f -mavx512bw in its own TU; dispatch lands here only after
// the runtime check for avx512f+bw passed.
//
// Unlike the AVX2 tier's byte-mask accumulators, AVX-512 compares
// straight into mask registers: one cmp per predicate, two popcounts
// per 512-bit chunk, no drain bookkeeping. Tails use maskz loads, so
// every element — including the last partial vector — rides the same
// lanes and there is no scalar remainder loop. Masked-off lanes load as
// zero and are killed by the a!=0 predicate, exactly like the scalar
// oracle's unknown handling. All counts are exact integers — Φ is
// bit-identical by construction.
#include "core/simd_dispatch.h"

#if defined(FENRIR_BUILD_AVX512) && defined(__AVX512F__) && \
    defined(__AVX512BW__)

#include <immintrin.h>

namespace fenrir::core::simd {

MatchCounts count_u8_avx512(const std::uint8_t* a, const std::uint8_t* b,
                            std::size_t n) {
  MatchCounts out;
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __mmask64 eq = _mm512_cmpeq_epu8_mask(va, vb);
    const __mmask64 an = _mm512_test_epi8_mask(va, va);  // a != 0
    const __mmask64 bn = _mm512_test_epi8_mask(vb, vb);
    out.matches += static_cast<std::uint64_t>(__builtin_popcountll(eq & an));
    out.mutual_known +=
        static_cast<std::uint64_t>(__builtin_popcountll(an & bn));
  }
  if (const std::size_t rem = n - i; rem != 0) {
    const __mmask64 m = (~std::uint64_t{0}) >> (64 - rem);
    const __m512i va = _mm512_maskz_loadu_epi8(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi8(m, b + i);
    const __mmask64 eq = _mm512_cmpeq_epu8_mask(va, vb);
    const __mmask64 an = _mm512_test_epi8_mask(va, va);
    const __mmask64 bn = _mm512_test_epi8_mask(vb, vb);
    out.matches += static_cast<std::uint64_t>(__builtin_popcountll(eq & an));
    out.mutual_known +=
        static_cast<std::uint64_t>(__builtin_popcountll(an & bn));
  }
  return out;
}

MatchCounts count_u16_avx512(const std::uint16_t* a, const std::uint16_t* b,
                             std::size_t n) {
  MatchCounts out;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __mmask32 eq = _mm512_cmpeq_epu16_mask(va, vb);
    const __mmask32 an = _mm512_test_epi16_mask(va, va);
    const __mmask32 bn = _mm512_test_epi16_mask(vb, vb);
    out.matches += static_cast<std::uint64_t>(__builtin_popcount(eq & an));
    out.mutual_known +=
        static_cast<std::uint64_t>(__builtin_popcount(an & bn));
  }
  if (const std::size_t rem = n - i; rem != 0) {
    const __mmask32 m = (~std::uint32_t{0}) >> (32 - rem);
    const __m512i va = _mm512_maskz_loadu_epi16(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi16(m, b + i);
    const __mmask32 eq = _mm512_cmpeq_epu16_mask(va, vb);
    const __mmask32 an = _mm512_test_epi16_mask(va, va);
    const __mmask32 bn = _mm512_test_epi16_mask(vb, vb);
    out.matches += static_cast<std::uint64_t>(__builtin_popcount(eq & an));
    out.mutual_known +=
        static_cast<std::uint64_t>(__builtin_popcount(an & bn));
  }
  return out;
}

MatchCounts count_u32_avx512(const std::uint32_t* a, const std::uint32_t* b,
                             std::size_t n) {
  MatchCounts out;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    const __mmask16 eq = _mm512_cmpeq_epu32_mask(va, vb);
    const __mmask16 an = _mm512_test_epi32_mask(va, va);
    const __mmask16 bn = _mm512_test_epi32_mask(vb, vb);
    out.matches += static_cast<std::uint64_t>(
        __builtin_popcount(static_cast<unsigned>(eq & an)));
    out.mutual_known += static_cast<std::uint64_t>(
        __builtin_popcount(static_cast<unsigned>(an & bn)));
  }
  if (const std::size_t rem = n - i; rem != 0) {
    const __mmask16 m =
        static_cast<__mmask16>((1u << rem) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi32(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi32(m, b + i);
    const __mmask16 eq = _mm512_cmpeq_epu32_mask(va, vb);
    const __mmask16 an = _mm512_test_epi32_mask(va, va);
    const __mmask16 bn = _mm512_test_epi32_mask(vb, vb);
    out.matches += static_cast<std::uint64_t>(
        __builtin_popcount(static_cast<unsigned>(eq & an)));
    out.mutual_known += static_cast<std::uint64_t>(
        __builtin_popcount(static_cast<unsigned>(an & bn)));
  }
  return out;
}

namespace {

template <typename T>
inline bool push_entry(std::vector<DeltaEntry>& out, std::size_t cap,
                       std::size_t index, T before, T after) {
  if (out.size() == cap) {
    out.clear();
    return false;
  }
  out.push_back({static_cast<std::uint32_t>(index),
                 static_cast<SiteId>(before), static_cast<SiteId>(after)});
  return true;
}

}  // namespace

bool delta_u8_avx512(const std::uint8_t* a, const std::uint8_t* b,
                     std::size_t n, std::size_t cap,
                     std::vector<DeltaEntry>& out) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    std::uint64_t neq = _mm512_cmpneq_epu8_mask(va, vb);
    while (neq != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(neq));
      neq &= neq - 1;
      if (!push_entry(out, cap, i + j, a[i + j], b[i + j])) return false;
    }
  }
  if (const std::size_t rem = n - i; rem != 0) {
    const __mmask64 m = (~std::uint64_t{0}) >> (64 - rem);
    const __m512i va = _mm512_maskz_loadu_epi8(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi8(m, b + i);
    std::uint64_t neq = _mm512_mask_cmpneq_epu8_mask(m, va, vb);
    while (neq != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(neq));
      neq &= neq - 1;
      if (!push_entry(out, cap, i + j, a[i + j], b[i + j])) return false;
    }
  }
  return true;
}

bool delta_u16_avx512(const std::uint16_t* a, const std::uint16_t* b,
                      std::size_t n, std::size_t cap,
                      std::vector<DeltaEntry>& out) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    std::uint32_t neq = _mm512_cmpneq_epu16_mask(va, vb);
    while (neq != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(neq));
      neq &= neq - 1;
      if (!push_entry(out, cap, i + j, a[i + j], b[i + j])) return false;
    }
  }
  if (const std::size_t rem = n - i; rem != 0) {
    const __mmask32 m = (~std::uint32_t{0}) >> (32 - rem);
    const __m512i va = _mm512_maskz_loadu_epi16(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi16(m, b + i);
    std::uint32_t neq = _mm512_mask_cmpneq_epu16_mask(m, va, vb);
    while (neq != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(neq));
      neq &= neq - 1;
      if (!push_entry(out, cap, i + j, a[i + j], b[i + j])) return false;
    }
  }
  return true;
}

bool delta_u32_avx512(const std::uint32_t* a, const std::uint32_t* b,
                      std::size_t n, std::size_t cap,
                      std::vector<DeltaEntry>& out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    std::uint32_t neq = _mm512_cmpneq_epu32_mask(va, vb);
    while (neq != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(neq));
      neq &= neq - 1;
      if (!push_entry(out, cap, i + j, a[i + j], b[i + j])) return false;
    }
  }
  if (const std::size_t rem = n - i; rem != 0) {
    const __mmask16 m = static_cast<__mmask16>((1u << rem) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi32(m, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi32(m, b + i);
    std::uint32_t neq = _mm512_mask_cmpneq_epu32_mask(m, va, vb);
    while (neq != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(neq));
      neq &= neq - 1;
      if (!push_entry(out, cap, i + j, a[i + j], b[i + j])) return false;
    }
  }
  return true;
}

SiteId max_site_avx512(const SiteId* src, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm512_max_epu32(acc, _mm512_loadu_si512(src + i));
  }
  if (const std::size_t rem = n - i; rem != 0) {
    const __mmask16 m = static_cast<__mmask16>((1u << rem) - 1u);
    // maskz lanes are zero, the identity of unsigned max.
    acc = _mm512_max_epu32(acc, _mm512_maskz_loadu_epi32(m, src + i));
  }
  return static_cast<SiteId>(_mm512_reduce_max_epu32(acc));
}

// vpmovdb/vpmovdw truncate, so these are exact for any input; the
// masked narrowing stores cover the tail with no scalar remainder.
void pack_u8_avx512(const SiteId* src, std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm512_cvtepi32_epi8(_mm512_loadu_si512(src + i)));
  }
  if (const std::size_t rem = n - i; rem != 0) {
    const __mmask16 m = static_cast<__mmask16>((1u << rem) - 1u);
    _mm512_mask_cvtepi32_storeu_epi8(dst + i, m,
                                     _mm512_maskz_loadu_epi32(m, src + i));
  }
}

void pack_u16_avx512(const SiteId* src, std::uint16_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm512_cvtepi32_epi16(_mm512_loadu_si512(src + i)));
  }
  if (const std::size_t rem = n - i; rem != 0) {
    const __mmask16 m = static_cast<__mmask16>((1u << rem) - 1u);
    _mm512_mask_cvtepi32_storeu_epi16(dst + i, m,
                                      _mm512_maskz_loadu_epi32(m, src + i));
  }
}

std::int64_t swap_patch_u8_avx512(const std::uint8_t* row,
                                  const std::uint32_t* idx,
                                  const SiteId* before, const SiteId* after,
                                  std::size_t n, std::size_t row_len) {
  // Each gather lane loads the 4 bytes at row + idx[t] and keeps the low
  // byte (little-endian), so a lane whose index lands in the row's last 3
  // elements would read past the row. idx is sorted ascending — peel that
  // suffix off into the scalar tail instead of bounds-masking every lane.
  std::size_t n_gather = n;
  while (n_gather > 0 && idx[n_gather - 1] + 4 > row_len) --n_gather;

  std::int64_t d_matches = 0;
  const __m512i low_byte = _mm512_set1_epi32(0xFF);
  std::size_t t = 0;
  for (; t + 16 <= n_gather; t += 16) {
    const __m512i vidx = _mm512_loadu_si512(idx + t);
    const __m512i gathered = _mm512_i32gather_epi32(vidx, row, 1);
    const __m512i b = _mm512_and_si512(gathered, low_byte);
    const __mmask16 eq_after =
        _mm512_cmpeq_epi32_mask(b, _mm512_loadu_si512(after + t));
    const __mmask16 eq_before =
        _mm512_cmpeq_epi32_mask(b, _mm512_loadu_si512(before + t));
    d_matches += __builtin_popcount(static_cast<unsigned>(eq_after));
    d_matches -= __builtin_popcount(static_cast<unsigned>(eq_before));
  }
  if (t < n_gather) {
    const __mmask16 m =
        static_cast<__mmask16>((1u << (n_gather - t)) - 1u);
    const __m512i vidx = _mm512_maskz_loadu_epi32(m, idx + t);
    // Masked gather touches memory only on active lanes.
    const __m512i gathered = _mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), m, vidx, row, 1);
    const __m512i b = _mm512_and_si512(gathered, low_byte);
    const __mmask16 eq_after = _mm512_mask_cmpeq_epi32_mask(
        m, b, _mm512_maskz_loadu_epi32(m, after + t));
    const __mmask16 eq_before = _mm512_mask_cmpeq_epi32_mask(
        m, b, _mm512_maskz_loadu_epi32(m, before + t));
    d_matches += __builtin_popcount(static_cast<unsigned>(eq_after));
    d_matches -= __builtin_popcount(static_cast<unsigned>(eq_before));
    t = n_gather;
  }
  for (; t < n; ++t) {
    const SiteId b = row[idx[t]];
    d_matches += (after[t] == b);
    d_matches -= (before[t] == b);
  }
  return d_matches;
}

}  // namespace fenrir::core::simd

#endif  // FENRIR_BUILD_AVX512 && __AVX512F__ && __AVX512BW__
