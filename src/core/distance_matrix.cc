#include "core/distance_matrix.h"

#include <algorithm>

#include "core/parallel.h"
#include "obs/metrics.h"

namespace fenrir::core {

namespace {

struct PhiMetrics {
  obs::Counter& appends;
  obs::Counter& rows_delta;
  obs::Counter& rows_kernel;
  obs::Gauge& delta_density;
  obs::Gauge& delta_speedup;
};

PhiMetrics& phi_metrics() {
  static PhiMetrics m{
      obs::registry().counter("fenrir_phi_appends_total",
                              "rows appended to similarity matrices"),
      obs::registry().counter(
          "fenrir_phi_rows_delta_total",
          "matrix rows computed by patching the previous row's counts"),
      obs::registry().counter("fenrir_phi_rows_kernel_total",
                              "matrix rows computed by the packed kernels"),
      obs::registry().gauge(
          "fenrir_phi_delta_density",
          "churn fraction |delta|/N at the last delta-vs-kernel decision"),
      obs::registry().gauge(
          "fenrir_phi_delta_speedup_ratio",
          "estimated per-pair work ratio N/(|delta|+1) of the last "
          "delta-path row (scalar scan cost over patch cost)")};
  return m;
}

}  // namespace

SimilarityMatrix::SimilarityMatrix(UnknownPolicy policy,
                                   std::vector<double> weights,
                                   unsigned threads)
    : policy_(policy), weights_(std::move(weights)), threads_(threads) {
  total_weight_ = in_order_sum(weights_);
}

SimilarityMatrix SimilarityMatrix::compute(const Dataset& dataset,
                                           UnknownPolicy policy,
                                           unsigned threads) {
  const bool weighted = !dataset.weights.empty();
  if (weighted && dataset.weights.size() != dataset.networks.size()) {
    throw std::invalid_argument("SimilarityMatrix: weight size mismatch");
  }
  SimilarityMatrix m(policy, dataset.weights, threads);
  for (const RoutingVector& v : dataset.series) m.append(v);
  return m;
}

SimilarityMatrix SimilarityMatrix::compute_reference(const Dataset& dataset,
                                                     UnknownPolicy policy) {
  const bool weighted = !dataset.weights.empty();
  if (weighted && dataset.weights.size() != dataset.networks.size()) {
    throw std::invalid_argument("SimilarityMatrix: weight size mismatch");
  }
  SimilarityMatrix m(policy, dataset.weights, 1);
  const std::size_t n = dataset.series.size();
  m.n_ = n;
  m.values_.assign(n * (n + 1) / 2, 0.0);
  m.valid_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.valid_[i] = dataset.series[i].valid ? 1 : 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!m.valid_[i]) continue;
    for (std::size_t j = 0; j <= i; ++j) {
      if (!m.valid_[j]) continue;
      const double phi =
          weighted ? gower_similarity(dataset.series[i], dataset.series[j],
                                      dataset.weights, policy)
                   : gower_similarity(dataset.series[i], dataset.series[j],
                                      policy);
      m.values_[m.tri_index(i, j)] = phi;
    }
  }
  return m;
}

void SimilarityMatrix::append(const RoutingVector& v) {
  if (packed_.rows() != n_) {
    throw std::logic_error(
        "SimilarityMatrix::append: matrix was not built incrementally "
        "(compute_reference matrices are read-only)");
  }
  if (!weights_.empty() && v.assignment.size() != weights_.size()) {
    throw std::invalid_argument("SimilarityMatrix: weight size mismatch");
  }
  const std::size_t i = n_;
  packed_.append(v);  // also rejects size mismatches against earlier rows
  n_ += 1;
  values_.resize(values_.size() + i + 1, 0.0);
  valid_.push_back(v.valid ? 1 : 0);
  phi_metrics().appends.inc();
  if (!v.valid) {
    // The slot keeps its timeline position; the next row has no valid
    // predecessor to patch from.
    prev_counts_usable_ = false;
    return;
  }

  const std::size_t nets = packed_.networks();
  const std::size_t row_base = i * (i + 1) / 2;
  const bool weighted = !weights_.empty();

  // Delta path: patch counts(i-1, j) into counts(i, j) using the change
  // set between rows i-1 and i. Integer-exact, so Φ stays bit-identical;
  // only worth it when the churn is sparse.
  std::vector<DeltaEntry> delta;
  bool use_delta = false;
  if (!weighted && prev_counts_usable_ && i > 0 && valid_[i - 1]) {
    delta = packed_.delta_between(i - 1, i);
    const double density =
        nets == 0 ? 1.0
                  : static_cast<double>(delta.size()) /
                        static_cast<double>(nets);
    phi_metrics().delta_density.set(density);
    use_delta = density <= kDeltaDensityThreshold;
  }
  if (use_delta) {
    phi_metrics().rows_delta.inc();
    phi_metrics().delta_speedup.set(static_cast<double>(nets) /
                                    static_cast<double>(delta.size() + 1));
  } else {
    phi_metrics().rows_kernel.inc();
  }

  std::vector<MatchCounts> row(i + 1);
  auto fill_column = [&](std::size_t j) {
    if (!valid_[j]) return;
    if (weighted) {
      values_[row_base + j] = phi_from_weighted(
          packed_.weighted_counts(i, j, weights_, policy_, total_weight_));
      return;
    }
    MatchCounts c;
    if (use_delta && j < i) {
      c = apply_delta(prev_counts_[j], delta, packed_, j);
    } else {
      c = packed_.counts(i, j);  // diagonal, or kernel-path row
    }
    row[j] = c;
    values_[row_base + j] = phi_from_counts(c, nets, policy_);
  };

  // Parallelize over columns only when the row carries enough work to
  // beat the pool dispatch; the cutoff affects time only, never values.
  const std::size_t per_pair = use_delta ? delta.size() + 1 : nets;
  const bool parallel =
      threads_ != 1 && (i + 1) * std::max<std::size_t>(per_pair, 1) >= 65536;
  if (parallel) {
    parallel_for(i + 1, fill_column, threads_);
  } else {
    for (std::size_t j = 0; j <= i; ++j) fill_column(j);
  }

  prev_counts_ = std::move(row);
  prev_counts_usable_ = !weighted;
}

std::size_t SimilarityMatrix::valid_count() const {
  std::size_t c = 0;
  for (const char v : valid_) c += (v != 0);
  return c;
}

std::vector<std::size_t> SimilarityMatrix::pair_keys(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) const {
  std::vector<std::size_t> keys;
  keys.reserve(a.size() * b.size());
  for (const std::size_t i : a) {
    if (!valid(i)) continue;
    for (const std::size_t j : b) {
      if (!valid(j) || i == j) continue;
      keys.push_back(tri_index(i, j));  // canonical for the unordered pair
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

SimilarityMatrix::Range SimilarityMatrix::range_between(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) const {
  Range out;
  for (const std::size_t key : pair_keys(a, b)) {
    const double p = values_[key];
    if (!out.any) {
      out.min = out.max = p;
      out.any = true;
    } else {
      out.min = std::min(out.min, p);
      out.max = std::max(out.max, p);
    }
  }
  return out;
}

SimilarityMatrix::Range SimilarityMatrix::range_within(
    const std::vector<std::size_t>& a) const {
  Range out;
  for (std::size_t x = 0; x < a.size(); ++x) {
    for (std::size_t y = x + 1; y < a.size(); ++y) {
      if (!valid(a[x]) || !valid(a[y])) continue;
      const double p = phi(a[x], a[y]);
      if (!out.any) {
        out.min = out.max = p;
        out.any = true;
      } else {
        out.min = std::min(out.min, p);
        out.max = std::max(out.max, p);
      }
    }
  }
  return out;
}

double SimilarityMatrix::median_between(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) const {
  const std::vector<std::size_t> keys = pair_keys(a, b);
  if (keys.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(keys.size());
  for (const std::size_t key : keys) values.push_back(values_[key]);
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace fenrir::core
