#include "core/distance_matrix.h"

#include "core/parallel.h"

#include <algorithm>

namespace fenrir::core {

SimilarityMatrix SimilarityMatrix::compute(const Dataset& dataset,
                                           UnknownPolicy policy,
                                           unsigned threads) {
  const std::size_t n = dataset.series.size();
  SimilarityMatrix m(n);
  const bool weighted = !dataset.weights.empty();
  if (weighted && dataset.weights.size() != dataset.networks.size()) {
    throw std::invalid_argument("SimilarityMatrix: weight size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    m.valid_[i] = dataset.series[i].valid ? 1 : 0;
  }
  // Rows write disjoint triangle slices, so row-parallelism is safe and
  // deterministic. Row costs grow linearly with the index; interleaving
  // rows across chunks would balance better, but static chunks keep the
  // memory access pattern contiguous and the skew is modest in practice.
  parallel_for(
      n,
      [&](std::size_t i) {
        if (!m.valid_[i]) return;
        for (std::size_t j = 0; j <= i; ++j) {
          if (!m.valid_[j]) continue;
          const double phi =
              weighted
                  ? gower_similarity(dataset.series[i], dataset.series[j],
                                     dataset.weights, policy)
                  : gower_similarity(dataset.series[i], dataset.series[j],
                                     policy);
          m.values_[m.tri_index(i, j)] = phi;
        }
      },
      threads);
  return m;
}

std::size_t SimilarityMatrix::valid_count() const {
  std::size_t c = 0;
  for (const char v : valid_) c += (v != 0);
  return c;
}

SimilarityMatrix::Range SimilarityMatrix::range_between(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) const {
  Range out;
  for (const std::size_t i : a) {
    if (!valid(i)) continue;
    for (const std::size_t j : b) {
      if (!valid(j) || i == j) continue;
      const double p = phi(i, j);
      if (!out.any) {
        out.min = out.max = p;
        out.any = true;
      } else {
        out.min = std::min(out.min, p);
        out.max = std::max(out.max, p);
      }
    }
  }
  return out;
}

SimilarityMatrix::Range SimilarityMatrix::range_within(
    const std::vector<std::size_t>& a) const {
  Range out;
  for (std::size_t x = 0; x < a.size(); ++x) {
    for (std::size_t y = x + 1; y < a.size(); ++y) {
      if (!valid(a[x]) || !valid(a[y])) continue;
      const double p = phi(a[x], a[y]);
      if (!out.any) {
        out.min = out.max = p;
        out.any = true;
      } else {
        out.min = std::min(out.min, p);
        out.max = std::max(out.max, p);
      }
    }
  }
  return out;
}

double SimilarityMatrix::median_between(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) const {
  std::vector<double> values;
  for (const std::size_t i : a) {
    if (!valid(i)) continue;
    for (const std::size_t j : b) {
      if (!valid(j) || i == j) continue;
      values.push_back(phi(i, j));
    }
  }
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace fenrir::core
