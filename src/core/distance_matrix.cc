#include "core/distance_matrix.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include "core/parallel.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace fenrir::core {

namespace {

struct PhiMetrics {
  obs::Counter& appends;
  obs::Counter& rows_delta;
  obs::Counter& rows_kernel;
  obs::Gauge& delta_density;
  obs::Gauge& delta_speedup;
  // Which anchor won the row (see the header's path taxonomy).
  obs::Counter& anchor_predecessor;
  obs::Counter& anchor_chained;
  obs::Counter& anchor_representative;
  obs::Counter& anchor_packed;
  obs::Counter& anchor_probes;
  obs::Counter& anchor_pins;
  obs::Counter& anchor_refreshes;
  obs::Gauge& anchor_est_delta;
  obs::Gauge& anchor_realized_delta;
  obs::Histogram& append_seconds;
};

PhiMetrics& phi_metrics() {
  static PhiMetrics m{
      obs::registry().counter("fenrir_phi_appends_total",
                              "rows appended to similarity matrices"),
      obs::registry().counter(
          "fenrir_phi_rows_delta_total",
          "matrix rows computed by patching an anchor's cached counts"),
      obs::registry().counter("fenrir_phi_rows_kernel_total",
                              "matrix rows computed by the packed kernels"),
      obs::registry().gauge(
          "fenrir_phi_delta_density",
          "churn fraction |delta|/N at the last delta-vs-kernel decision"),
      obs::registry().gauge(
          "fenrir_phi_delta_speedup_ratio",
          "estimated per-pair work ratio N/(|delta|+1) of the last "
          "delta-path row (scalar scan cost over patch cost)"),
      obs::registry().counter(
          "fenrir_phi_anchor_predecessor_total",
          "rows patched from the immediate predecessor anchor"),
      obs::registry().counter(
          "fenrir_phi_anchor_chained_total",
          "rows patched from a recent anchor reached via the chained "
          "bound or a probe"),
      obs::registry().counter(
          "fenrir_phi_anchor_representative_total",
          "rows patched from a representative (mode) anchor — the "
          "recurrence fast path"),
      obs::registry().counter(
          "fenrir_phi_anchor_packed_total",
          "rows where no anchor was cheap and the packed kernels ran"),
      obs::registry().counter(
          "fenrir_phi_anchor_probes_total",
          "exact change-set scans spent probing anchor candidates"),
      obs::registry().counter(
          "fenrir_phi_anchor_pins_total",
          "rows pinned as representative anchors (auto + pin_anchor)"),
      obs::registry().counter(
          "fenrir_phi_anchor_refreshes_total",
          "representative anchors re-anchored to the row they just "
          "explained (mode drift tracking)"),
      obs::registry().gauge(
          "fenrir_phi_anchor_est_delta",
          "chained upper bound on |delta| for the chosen anchor at the "
          "last delta-path row"),
      obs::registry().gauge(
          "fenrir_phi_anchor_realized_delta",
          "realized |delta| against the chosen anchor at the last "
          "delta-path row"),
      obs::registry().histogram(
          "fenrir_phi_append_seconds", obs::Histogram::duration_bounds(),
          "wall time of one SimilarityMatrix::append row")};
  return m;
}

/// Times the whole append — every exit path — into the latency
/// histogram the /metrics/history p99 series is built from. Two clock
/// reads per row, noise next to the row's own O(i) work.
struct AppendTimer {
  obs::Histogram& histogram;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  explicit AppendTimer(obs::Histogram& h) : histogram(h) {}
  ~AppendTimer() {
    histogram.observe(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
};

constexpr std::size_t kEstSaturated = std::numeric_limits<std::size_t>::max();

std::size_t sat_add(std::size_t a, std::size_t b) {
  return a > kEstSaturated - b ? kEstSaturated : a + b;
}

}  // namespace

SimilarityMatrix::SimilarityMatrix(UnknownPolicy policy,
                                   std::vector<double> weights,
                                   unsigned threads)
    : policy_(policy), weights_(std::move(weights)), threads_(threads) {
  total_weight_ = in_order_sum(weights_);
}

SimilarityMatrix SimilarityMatrix::compute(const Dataset& dataset,
                                           UnknownPolicy policy,
                                           unsigned threads) {
  const bool weighted = !dataset.weights.empty();
  if (weighted && dataset.weights.size() != dataset.networks.size()) {
    throw std::invalid_argument("SimilarityMatrix: weight size mismatch");
  }
  SimilarityMatrix m(policy, dataset.weights, threads);
  m.append_batch(dataset.series);
  return m;
}

SimilarityMatrix SimilarityMatrix::compute_reference(const Dataset& dataset,
                                                     UnknownPolicy policy) {
  const bool weighted = !dataset.weights.empty();
  if (weighted && dataset.weights.size() != dataset.networks.size()) {
    throw std::invalid_argument("SimilarityMatrix: weight size mismatch");
  }
  SimilarityMatrix m(policy, dataset.weights, 1);
  const std::size_t n = dataset.series.size();
  m.n_ = n;
  m.values_.assign_owned(n);
  m.valid_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.valid_[i] = dataset.series[i].valid ? 1 : 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!m.valid_[i]) continue;
    double* vrow = m.values_.owned_row(i);
    for (std::size_t j = 0; j <= i; ++j) {
      if (!m.valid_[j]) continue;
      const double phi =
          weighted ? gower_similarity(dataset.series[i], dataset.series[j],
                                      dataset.weights, policy)
                   : gower_similarity(dataset.series[i], dataset.series[j],
                                      policy);
      vrow[j] = phi;
    }
  }
  return m;
}

SimilarityMatrix::AnchorRow* SimilarityMatrix::find_anchor(std::size_t row) {
  for (AnchorRow& a : recent_) {
    if (a.row == row) return &a;
  }
  for (AnchorRow& a : representatives_) {
    if (a.row == row) return &a;
  }
  return nullptr;
}

void SimilarityMatrix::pin_representative(AnchorRow anchor) {
  for (const AnchorRow& a : representatives_) {
    if (a.row == anchor.row) return;
  }
  if (representative_limit_ == 0) return;
  phi_metrics().anchor_pins.inc();
  if (representatives_.size() >= representative_limit_) {
    auto oldest = std::min_element(
        representatives_.begin(), representatives_.end(),
        [](const AnchorRow& a, const AnchorRow& b) {
          return a.last_used < b.last_used;
        });
    *oldest = std::move(anchor);
    return;
  }
  representatives_.push_back(std::move(anchor));
}

void SimilarityMatrix::pin_anchor(std::size_t row) {
  if (row >= n_) throw std::out_of_range("SimilarityMatrix::pin_anchor");
  if (!weights_.empty() || !valid_[row] || representative_limit_ == 0) return;
  if (packed_.rows() != n_) {
    throw std::logic_error(
        "SimilarityMatrix::pin_anchor: compute_reference matrices carry no "
        "packed rows to anchor");
  }
  for (const AnchorRow& a : representatives_) {
    if (a.row == row) return;
  }
  AnchorRow anchor;
  anchor.row = row;
  anchor.last_used = append_clock_;
  if (const AnchorRow* existing = find_anchor(row)) {
    anchor.counts = existing->counts;
    anchor.est_delta = existing->est_delta;
  } else {
    // The row left the anchor set; rebuild its counts at kernel cost.
    anchor.counts.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      if (valid_[j]) anchor.counts[j] = packed_.counts(row, j);
    }
    anchor.est_delta = kEstSaturated;  // unknown distance to the latest row
  }
  pin_representative(std::move(anchor));
}

void SimilarityMatrix::set_anchor_limits(std::size_t recent,
                                        std::size_t representatives) {
  recent_limit_ = recent;
  representative_limit_ = representatives;
  while (recent_.size() > recent_limit_) recent_.pop_front();
  while (representatives_.size() > representative_limit_) {
    auto oldest = std::min_element(
        representatives_.begin(), representatives_.end(),
        [](const AnchorRow& a, const AnchorRow& b) {
          return a.last_used < b.last_used;
        });
    representatives_.erase(oldest);
  }
}

SimilarityMatrix::AnchorRow* SimilarityMatrix::select_anchor(
    std::size_t i, std::vector<DeltaEntry>& delta, bool& chose_rep) {
  PhiMetrics& metrics = phi_metrics();
  const std::size_t nets = packed_.networks();

  // Extend every anchor's chained bound by this row's step change set
  // (the triangle inequality holds through any intermediate row, valid
  // or not), then pick the cheapest anchor.
  std::vector<DeltaEntry> step;
  const bool anchors_on = !recent_.empty() || !representatives_.empty();
  if (anchors_on && i > 0) {
    step = packed_.delta_between(i - 1, i);
    for (AnchorRow& a : recent_) {
      a.est_delta = a.row == i - 1 ? step.size()
                                   : sat_add(a.est_delta, step.size());
    }
    for (AnchorRow& a : representatives_) {
      a.est_delta = a.row == i - 1 ? step.size()
                                   : sat_add(a.est_delta, step.size());
    }
  }

  // Candidates, recent first (newest to oldest), then representatives
  // not already listed.
  std::vector<AnchorRow*> candidates;
  if (anchors_on) {
    candidates.reserve(recent_.size() + representatives_.size());
    for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
      candidates.push_back(&*it);
    }
    for (AnchorRow& a : representatives_) {
      if (!std::any_of(recent_.begin(), recent_.end(),
                       [&](const AnchorRow& r) { return r.row == a.row; })) {
        candidates.push_back(&a);
      }
    }
  }

  const auto max_delta = static_cast<std::size_t>(
      kDeltaDensityThreshold * static_cast<double>(nets));
  AnchorRow* chosen = nullptr;
  delta.clear();
  std::size_t chosen_bound = kEstSaturated;
  bool probed = false;

  // 1. Chained bounds: if some anchor's running Σ|Δ| already clears the
  // threshold, the exact change set can only be smaller.
  for (AnchorRow* a : candidates) {
    if (a->est_delta < chosen_bound) {
      chosen_bound = a->est_delta;
      chosen = a;
    }
  }
  if (chosen != nullptr && chosen_bound <= max_delta) {
    if (chosen->row == i - 1) {
      delta = std::move(step);
    } else {
      delta = packed_.delta_between(chosen->row, i);
    }
  } else if (!candidates.empty() && candidates.size() * 4 <= i &&
             probe_cooldown_ == 0) {
    // 2. Probe: one bounded scan per candidate — the recurrence
    // rediscovery. The cap shrinks to the best change-set found so far,
    // so a candidate from the wrong mode bails after ~cap mismatches
    // instead of paying a full O(N) scan; the winner is still the
    // smallest change-set ≤ the density threshold, exactly as an
    // unbounded sweep would pick. Worth it only once the row is long
    // enough that the scans are small next to the O(T·N) kernel
    // fallback.
    chosen = nullptr;
    std::size_t best_size = kEstSaturated;
    std::vector<DeltaEntry> probe;
    for (AnchorRow* a : candidates) {
      metrics.anchor_probes.inc();
      const std::size_t cap =
          best_size == kEstSaturated ? max_delta : best_size - 1;
      if (packed_.delta_between_bounded(a->row, i, cap, probe)) {
        a->est_delta = probe.size();  // the bound re-anchors to exact
        best_size = probe.size();
        chosen = a;
        delta.swap(probe);
        if (best_size == 0) break;  // a duplicate row cannot be beaten
      }
      // On a bailed probe the anchor keeps its chained bound: the scan
      // only learned |Δ| > cap, which is a lower bound and must not
      // replace an upper one.
    }
    probed = true;
    if (chosen == nullptr) {
      delta.clear();
      probe_failures_ += 1;
      probe_cooldown_ = std::min<std::size_t>(
          std::size_t{1} << std::min<std::size_t>(probe_failures_, 6), 64);
    } else {
      chosen_bound = best_size;
      probe_failures_ = 0;
    }
  } else {
    chosen = nullptr;
  }

  const bool use_delta = chosen != nullptr;
  chose_rep =
      use_delta && std::any_of(representatives_.begin(),
                               representatives_.end(),
                               [&](const AnchorRow& a) { return &a == chosen; });
  if (use_delta) {
    chosen->est_delta = delta.size();
    chosen->last_used = append_clock_;
    probe_failures_ = 0;
    metrics.rows_delta.inc();
    metrics.delta_density.set(
        nets == 0 ? 1.0
                  : static_cast<double>(delta.size()) /
                        static_cast<double>(nets));
    metrics.delta_speedup.set(static_cast<double>(nets) /
                              static_cast<double>(delta.size() + 1));
    metrics.anchor_est_delta.set(static_cast<double>(chosen_bound));
    metrics.anchor_realized_delta.set(static_cast<double>(delta.size()));
    if (chosen->row == i - 1) {
      metrics.anchor_predecessor.inc();
    } else if (chose_rep) {
      metrics.anchor_representative.inc();
    } else {
      metrics.anchor_chained.inc();
    }
  } else {
    metrics.rows_kernel.inc();
    metrics.anchor_packed.inc();
    if (probe_cooldown_ > 0 && !probed) probe_cooldown_ -= 1;
    // No anchor explained this row: O(T·N) kernel fallback. One is a new
    // routing state; a storm means the anchor set stopped covering the
    // workload. Debug severity — the bus's per-type dedup condenses a
    // storm to its first burst plus a suppressed count.
    obs::event_bus().emit(obs::Severity::kDebug, "anchor_fallback",
                          "\"row\":" + std::to_string(i) +
                              ",\"candidates\":" +
                              std::to_string(candidates.size()));
  }
  return chosen;
}

std::vector<std::size_t> SimilarityMatrix::anchor_chain(
    std::size_t row, std::size_t max_depth) const {
  std::vector<std::size_t> out;
  std::size_t at = row;
  while (out.size() < max_depth && at < anchor_of_.size()) {
    const std::size_t base = anchor_of_[at];
    // Bases are always earlier rows, so the strict decrease also guards
    // against any malformed chain looping.
    if (base == kNoAnchorRow || base >= at) break;
    out.push_back(base);
    at = base;
  }
  return out;
}

void SimilarityMatrix::append(const RoutingVector& v) {
  if (packed_.rows() != n_) {
    throw std::logic_error(
        "SimilarityMatrix::append: matrix was not built incrementally "
        "(compute_reference matrices are read-only)");
  }
  if (!weights_.empty() && v.assignment.size() != weights_.size()) {
    throw std::invalid_argument("SimilarityMatrix: weight size mismatch");
  }
  const std::size_t i = n_;
  packed_.append(v);  // also rejects size mismatches against earlier rows
  n_ += 1;
  values_.push_row();
  valid_.push_back(v.valid ? 1 : 0);
  anchor_of_.resize(n_, kNoAnchorRow);
  append_clock_ += 1;
  PhiMetrics& metrics = phi_metrics();
  metrics.appends.inc();
  AppendTimer timer(metrics.append_seconds);
  const bool weighted = !weights_.empty();
  if (!v.valid) {
    // The slot keeps its timeline position. Anchors stay alive — their
    // chained bounds extend through the slot below — but their counts
    // rows need a placeholder so column indices keep lining up.
    for (AnchorRow& a : recent_) a.counts.emplace_back();
    for (AnchorRow& a : representatives_) a.counts.emplace_back();
    if (i > 0 && !weighted && (!recent_.empty() || !representatives_.empty())) {
      const std::size_t step = packed_.delta_between(i - 1, i).size();
      for (AnchorRow& a : recent_) a.est_delta = sat_add(a.est_delta, step);
      for (AnchorRow& a : representatives_) {
        a.est_delta = sat_add(a.est_delta, step);
      }
    }
    return;
  }

  const std::size_t nets = packed_.networks();
  double* vrow = values_.owned_row(i);  // new rows are always owned

  std::vector<DeltaEntry> delta;
  bool chose_rep = false;
  AnchorRow* chosen =
      weighted ? nullptr : select_anchor(i, delta, chose_rep);
  const bool use_delta = chosen != nullptr;
  // Chain lineage before the representative refresh below reassigns
  // chosen->row to i.
  if (use_delta) anchor_of_[i] = chosen->row;

  std::vector<MatchCounts> row(i + 1);
  const AnchorRow* anchor = chosen;  // stable across the parallel fill
  auto fill_column = [&](std::size_t j) {
    if (!valid_[j]) return;
    if (weighted) {
      vrow[j] = phi_from_weighted(
          packed_.weighted_counts(i, j, weights_, policy_, total_weight_));
      return;
    }
    MatchCounts c;
    if (use_delta && j < i) {
      // Overlap the next pair's random reads with this pair's patch; the
      // patch is otherwise bound by one serialised miss per delta entry.
      if (j + 2 < i && valid_[j + 2]) packed_.prefetch_delta(j + 2, delta);
      c = apply_delta(anchor->counts[j], delta, packed_, j);
    } else {
      c = packed_.counts(i, j);  // diagonal, or kernel-path row
    }
    row[j] = c;
    vrow[j] = phi_from_counts(c, nets, policy_);
  };

  // The grain makes small rows skip pool dispatch entirely (a delta row
  // over a short matrix is microseconds of work — a pool wakeup costs
  // more than it saves); the cutoff affects time only, never values.
  const std::size_t per_pair = use_delta ? delta.size() + 1 : nets;
  parallel_for(i + 1, fill_column, threads_,
               std::max<std::size_t>(
                   1, 65536 / std::max<std::size_t>(per_pair, 1)));

  if (weighted) return;

  // Every anchor learns its counts against the new row "for free":
  // counts(a, i) = counts(i, a), which the row just computed.
  for (AnchorRow& a : recent_) a.counts.push_back(row[a.row]);
  for (AnchorRow& a : representatives_) a.counts.push_back(row[a.row]);

  // A representative that explained this row re-anchors to it: the
  // anchor tracks the mode's *latest* state, so the next return pays
  // only the away-gap churn. Left at its original row, every
  // representative would drift toward the density threshold as the mode
  // churns and recurrence would decay back to kernel rows.
  if (chose_rep && !delta.empty()) {
    chosen->row = i;
    chosen->counts = row;  // exact counts(i, ·), just computed
    chosen->est_delta = 0;
    metrics.anchor_refreshes.inc();
  }

  // A kernel-fallback row is a routing state no anchor explained — the
  // online analogue of ModeBook registering a new mode — so it becomes
  // a representative anchor before the recency window rolls it out.
  AnchorRow fresh;
  fresh.row = i;
  fresh.est_delta = 0;
  fresh.last_used = append_clock_;
  if (!use_delta && representative_limit_ > 0) {
    AnchorRow rep = fresh;
    rep.counts = row;
    pin_representative(std::move(rep));
  }
  if (recent_limit_ > 0) {
    fresh.counts = std::move(row);
    recent_.push_back(std::move(fresh));
    while (recent_.size() > recent_limit_) recent_.pop_front();
  }
}

void SimilarityMatrix::append_batch(std::span<const RoutingVector> batch) {
  // Weighted matrices carry no cached counts to batch over — and the
  // one-row batch has nothing to amortize.
  if (!weights_.empty() || batch.size() == 1) {
    for (const RoutingVector& v : batch) append(v);
    return;
  }
  // Chunking bounds the transient per-row counts at ~kChunk·T entries
  // while keeping enough rows in flight for the column-outer fill to
  // reuse each old row from cache.
  constexpr std::size_t kChunk = 64;
  for (std::size_t off = 0; off < batch.size(); off += kChunk) {
    append_chunk(batch.subspan(off, std::min(kChunk, batch.size() - off)));
  }
}

void SimilarityMatrix::append_chunk(std::span<const RoutingVector> batch) {
  if (packed_.rows() != n_) {
    throw std::logic_error(
        "SimilarityMatrix::append: matrix was not built incrementally "
        "(compute_reference matrices are read-only)");
  }
  const std::size_t n0 = n_;
  const std::size_t k = batch.size();
  if (k == 0) return;
  PhiMetrics& metrics = phi_metrics();
  AppendTimer timer(metrics.append_seconds);  // one sample per chunk

  // Pass 0: pack every row and grow the value/validity stores, so the
  // planning pass can probe any batch row. One reservation up front —
  // a mid-loop reallocation would copy the whole packed store.
  reserve(n0 + k);
  for (const RoutingVector& v : batch) {
    packed_.append(v);
    valid_.push_back(v.valid ? 1 : 0);
    values_.push_row();
  }
  n_ = n0 + k;
  anchor_of_.resize(n_, kNoAnchorRow);

  // Pass A: sequential anchor planning — the exact selection sequence an
  // append() loop would run (selection never reads anchor counts, only
  // the chained bounds and packed rows, so the fills can be deferred).
  // Counts-carrying bookkeeping is deferred to pass C; an anchor
  // created or refreshed during the batch is recognizable there by its
  // in-batch row id.
  struct RowPlan {
    enum class Path { kInvalid, kKernel, kDelta } path = Path::kInvalid;
    std::size_t base = 0;  // global row id of the chosen anchor
    std::vector<DeltaEntry> delta;
    // The change-set classified by endpoint known-ness, once per row —
    // the fills replay it against every column without re-testing the
    // column-invariant kUnknownSite conditions apply_delta carries.
    PreparedDelta prep;
    // Pre-batch anchors can be evicted or refreshed later in the plan,
    // so their old-column counts are snapshotted here at selection time.
    std::vector<MatchCounts> base_counts;
  };
  std::vector<RowPlan> plan(k);
  for (std::size_t r = 0; r < k; ++r) {
    const std::size_t i = n0 + r;
    metrics.appends.inc();
    append_clock_ += 1;
    if (!batch[r].valid) {
      if (i > 0 && (!recent_.empty() || !representatives_.empty())) {
        const std::size_t step = packed_.delta_between(i - 1, i).size();
        for (AnchorRow& a : recent_) a.est_delta = sat_add(a.est_delta, step);
        for (AnchorRow& a : representatives_) {
          a.est_delta = sat_add(a.est_delta, step);
        }
      }
      continue;
    }
    bool chose_rep = false;
    std::vector<DeltaEntry> delta;
    AnchorRow* chosen = select_anchor(i, delta, chose_rep);
    if (chosen != nullptr) {
      plan[r].path = RowPlan::Path::kDelta;
      plan[r].base = chosen->row;
      anchor_of_[i] = chosen->row;
      if (chosen->row < n0) {
        plan[r].base_counts.assign(chosen->counts.begin(),
                                   chosen->counts.begin() +
                                       static_cast<std::ptrdiff_t>(n0));
      }
      plan[r].delta = std::move(delta);
      plan[r].prep = prepare_delta(plan[r].delta);
      if (chose_rep && !plan[r].delta.empty()) {
        // Representative refresh, counts deferred: the new row id is
        // what pass C rebuilds the counts from.
        chosen->row = i;
        chosen->est_delta = 0;
        metrics.anchor_refreshes.inc();
      }
    } else {
      plan[r].path = RowPlan::Path::kKernel;
      if (representative_limit_ > 0) {
        AnchorRow rep;
        rep.row = i;
        rep.est_delta = 0;
        rep.last_used = append_clock_;
        pin_representative(std::move(rep));
      }
    }
    if (recent_limit_ > 0) {
      AnchorRow fresh;
      fresh.row = i;
      fresh.est_delta = 0;
      fresh.last_used = append_clock_;
      recent_.push_back(std::move(fresh));
      while (recent_.size() > recent_limit_) recent_.pop_front();
    }
  }

  const std::size_t nets = packed_.networks();
  std::vector<std::vector<MatchCounts>> row_counts(k);
  std::size_t per_col = 1;
  for (std::size_t r = 0; r < k; ++r) {
    if (plan[r].path == RowPlan::Path::kInvalid) continue;
    row_counts[r].resize(n0 + r + 1);
    per_col +=
        plan[r].path == RowPlan::Path::kDelta ? plan[r].delta.size() + 1 : nets;
  }

  // Pass B1: columns against the pre-batch rows, column-outer — row j's
  // packed bytes are loaded once and stay cache-hot across every batch
  // row's patch, instead of being re-fetched k times as the append()
  // loop would. In-batch bases (predecessor chains) resolve within the
  // same column: base row r' < r was patched earlier in the inner loop.
  auto fill_old = [&](std::size_t j) {
    if (!valid_[j]) return;
    packed_.prefetch_row(j + 1 < n0 ? j + 1 : j);
    const ColumnPatcher patcher(packed_, j);
    for (std::size_t r = 0; r < k; ++r) {
      const RowPlan& p = plan[r];
      if (p.path == RowPlan::Path::kInvalid) continue;
      const std::size_t i = n0 + r;
      MatchCounts c;
      if (p.path == RowPlan::Path::kDelta) {
        const MatchCounts base =
            p.base < n0 ? p.base_counts[j] : row_counts[p.base - n0][j];
        c = patcher.apply(base, p.prep);
      } else {
        c = packed_.counts(i, j);
      }
      row_counts[r][j] = c;
      values_.owned_row(i)[j] = phi_from_counts(c, nets, policy_);
    }
  };
  parallel_for(n0, fill_old, threads_,
               std::max<std::size_t>(1, 65536 / per_col));

  // Pass B2: the k×k corner, row-major. Every base a delta row needs is
  // a pair among earlier batch rows (or a pre-batch anchor against an
  // earlier batch column), already in row_counts by symmetry:
  // counts(a, b) for a > b lives at row_counts[a - n0][b].
  for (std::size_t r = 0; r < k; ++r) {
    const RowPlan& p = plan[r];
    if (p.path == RowPlan::Path::kInvalid) continue;
    const std::size_t i = n0 + r;
    double* vrow = values_.owned_row(i);
    for (std::size_t s = 0; s <= r; ++s) {
      const std::size_t j = n0 + s;
      if (!valid_[j]) continue;
      MatchCounts c;
      if (s == r) {
        c = packed_.counts(i, i);  // diagonal, exactly as append()
      } else if (p.path == RowPlan::Path::kDelta) {
        const std::size_t b = p.base;
        const MatchCounts base = (b >= n0 && b - n0 > s)
                                     ? row_counts[b - n0][j]
                                     : row_counts[s][b];
        c = apply_prepared(base, p.prep, packed_, j);
      } else {
        c = packed_.counts(i, j);
      }
      row_counts[r][j] = c;
      vrow[j] = phi_from_counts(c, nets, policy_);
    }
  }

  // Pass C: anchor counts catch up with the batch. An anchor whose row
  // id is in-batch was created or refreshed there — its counts are that
  // row's computed counts, extended by the later rows; a pre-batch
  // anchor extends its existing counts by one entry per batch row
  // (counts(a, i_r) = counts(i_r, a), just computed — invalid rows get
  // the usual never-read placeholder).
  const auto rebuild = [&](AnchorRow& a) {
    std::size_t from = 0;
    if (a.row >= n0) {
      const std::size_t r0 = a.row - n0;
      a.counts = row_counts[r0];
      from = r0 + 1;
    }
    a.counts.reserve(n0 + k);
    for (std::size_t r = from; r < k; ++r) {
      a.counts.push_back(batch[r].valid ? row_counts[r][a.row]
                                        : MatchCounts{});
    }
  };
  for (AnchorRow& a : recent_) rebuild(a);
  for (AnchorRow& a : representatives_) rebuild(a);
}

void SimilarityMatrix::adopt_rows(std::size_t networks, std::size_t width,
                                  std::span<const AdoptedRow> rows,
                                  std::shared_ptr<const void> keepalive) {
  if (n_ != 0 || packed_.rows() != 0) {
    throw std::logic_error("SimilarityMatrix::adopt_rows: matrix not empty");
  }
  std::vector<const std::byte*> packed_rows;
  packed_rows.reserve(rows.size());
  for (const AdoptedRow& r : rows) packed_rows.push_back(r.packed);
  packed_.adopt_rows(networks, width, packed_rows, keepalive);
  valid_.reserve(rows.size());
  anchor_of_.reserve(rows.size());
  for (const AdoptedRow& r : rows) {
    values_.adopt_row(r.phi);
    valid_.push_back(r.valid ? 1 : 0);
    anchor_of_.push_back(r.anchor_of);
  }
  // The Φ rows and packed rows live in the same mapping, but the packed
  // store may drop its borrow independently (a widening append), so the
  // triangle pins the mapping too.
  values_.set_keepalive(std::move(keepalive));
  n_ = rows.size();
  append_clock_ = n_;
}

void SimilarityMatrix::append_precomputed(const AdoptedRow& row,
                                          std::size_t src_width) {
  const std::size_t i = n_;
  packed_.append_packed(row.packed, src_width);
  valid_.push_back(row.valid ? 1 : 0);
  anchor_of_.push_back(row.anchor_of);
  values_.push_row();
  std::memcpy(values_.owned_row(i), row.phi, (i + 1) * sizeof(double));
  n_ += 1;
  append_clock_ += 1;
  // Load paths run before any anchors exist; if a caller mixes this
  // with live appends anyway, keep the anchor invariants exact: every
  // anchor's counts column for the new row, at kernel cost.
  for (AnchorRow& a : recent_) {
    a.counts.push_back(row.valid && valid_[a.row] ? packed_.counts(a.row, i)
                                                  : MatchCounts{});
    a.est_delta = kEstSaturated;
  }
  for (AnchorRow& a : representatives_) {
    a.counts.push_back(row.valid && valid_[a.row] ? packed_.counts(a.row, i)
                                                  : MatchCounts{});
    a.est_delta = kEstSaturated;
  }
}

std::size_t SimilarityMatrix::valid_count() const {
  std::size_t c = 0;
  for (const char v : valid_) c += (v != 0);
  return c;
}

std::vector<std::pair<std::size_t, std::size_t>> SimilarityMatrix::pair_keys(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) const {
  std::vector<std::pair<std::size_t, std::size_t>> keys;
  keys.reserve(a.size() * b.size());
  for (const std::size_t i : a) {
    if (!valid(i)) continue;
    for (const std::size_t j : b) {
      if (!valid(j) || i == j) continue;
      // Canonical for the unordered pair: row-major, row >= col.
      keys.emplace_back(std::max(i, j), std::min(i, j));
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

SimilarityMatrix::Range SimilarityMatrix::range_between(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) const {
  Range out;
  for (const auto& [i, j] : pair_keys(a, b)) {
    const double p = values_.get(i, j);
    if (!out.any) {
      out.min = out.max = p;
      out.any = true;
    } else {
      out.min = std::min(out.min, p);
      out.max = std::max(out.max, p);
    }
  }
  return out;
}

SimilarityMatrix::Range SimilarityMatrix::range_within(
    const std::vector<std::size_t>& a) const {
  Range out;
  for (std::size_t x = 0; x < a.size(); ++x) {
    for (std::size_t y = x + 1; y < a.size(); ++y) {
      if (!valid(a[x]) || !valid(a[y])) continue;
      const double p = phi(a[x], a[y]);
      if (!out.any) {
        out.min = out.max = p;
        out.any = true;
      } else {
        out.min = std::min(out.min, p);
        out.max = std::max(out.max, p);
      }
    }
  }
  return out;
}

double SimilarityMatrix::median_between(
    const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) const {
  const auto keys = pair_keys(a, b);
  if (keys.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(keys.size());
  for (const auto& [i, j] : keys) values.push_back(values_.get(i, j));
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace fenrir::core
