// fenrir::core — all-pairs similarity heatmaps (paper Figures 2b/3b/5/6b).
//
// Renders a SimilarityMatrix the way the paper plots it: both axes are
// observation time, dark cells are similar pairs, so stable routing modes
// appear as dark triangles along the diagonal and routing changes as
// discontinuities in shading. Invalid (outage) rows/columns render white.
// Output forms: an 8-bit PGM image (optionally downsampled), a terminal
// ASCII rendering, and CSV for external plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "core/cluster.h"
#include "core/distance_matrix.h"
#include "io/pgm.h"

namespace fenrir::core {

/// PGM heatmap. If the matrix is larger than @p max_pixels on a side it is
/// box-downsampled (averaging Φ over valid cells in each box). Pixel value
/// = 255·(1-Φ): black = identical routing, matching the paper's shading.
io::GrayImage heatmap_image(const SimilarityMatrix& matrix,
                            std::size_t max_pixels = 1024);

/// Terminal rendering using a 10-step density ramp, at most @p max_chars
/// columns. Dark (dense) glyphs = similar. Invalid cells render ' '.
std::string heatmap_ascii(const SimilarityMatrix& matrix,
                          std::size_t max_chars = 64);

/// Full-resolution CSV: header row/col of time labels, Φ values in cells,
/// empty cells for invalid observations.
void write_heatmap_csv(const SimilarityMatrix& matrix, const Dataset& dataset,
                       std::ostream& out);

/// A colored mode strip: one column per observation, @p height pixels
/// tall, each cluster label painted in its own hue (noise/outage black).
/// Placed under a heatmap it annotates which mode each column belongs to
/// — the colored bars the paper's figures mark (i), (ii), ... with.
io::ColorImage mode_strip_image(const Clustering& clustering,
                                std::size_t height = 12);

}  // namespace fenrir::core
