#include "core/sankey.h"

#include <algorithm>
#include <ostream>

#include "io/csv.h"

namespace fenrir::core {

SankeyFlows SankeyFlows::from_paths(
    const std::vector<std::vector<std::string>>& paths) {
  SankeyFlows out;
  std::size_t max_len = 0;
  for (const auto& p : paths) max_len = std::max(max_len, p.size());
  out.node_mass_.resize(max_len);
  if (max_len > 1) out.flow_.resize(max_len - 1);

  for (const auto& p : paths) {
    for (std::size_t h = 0; h < p.size(); ++h) {
      if (p[h].empty()) continue;
      ++out.node_mass_[h][p[h]];
      if (h + 1 < p.size() && !p[h + 1].empty()) {
        ++out.flow_[h][{p[h], p[h + 1]}];
      }
    }
  }
  return out;
}

std::uint64_t SankeyFlows::node(std::size_t hop,
                                const std::string& label) const {
  if (hop >= node_mass_.size()) return 0;
  const auto it = node_mass_[hop].find(label);
  return it == node_mass_[hop].end() ? 0 : it->second;
}

double SankeyFlows::node_fraction(std::size_t hop,
                                  const std::string& label) const {
  if (hop >= node_mass_.size()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [_, mass] : node_mass_[hop]) total += mass;
  if (total == 0) return 0.0;
  return static_cast<double>(node(hop, label)) / static_cast<double>(total);
}

std::vector<SankeyFlows::Flow> SankeyFlows::flows() const {
  std::vector<Flow> out;
  for (std::size_t h = 0; h < flow_.size(); ++h) {
    for (const auto& [pair, count] : flow_[h]) {
      out.push_back(Flow{h, pair.first, pair.second, count});
    }
  }
  std::sort(out.begin(), out.end(), [](const Flow& a, const Flow& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.hop != b.hop) return a.hop < b.hop;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> SankeyFlows::nodes_at(
    std::size_t hop) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (hop >= node_mass_.size()) return out;
  out.assign(node_mass_[hop].begin(), node_mass_[hop].end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

void SankeyFlows::write_csv(std::ostream& out) const {
  io::CsvWriter csv(out);
  csv.row("hop", "from", "to", "count");
  for (const Flow& f : flows()) csv.row(f.hop, f.from, f.to, f.count);
}

}  // namespace fenrir::core
