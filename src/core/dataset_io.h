// fenrir::core — Dataset (de)serialization.
//
// Fenrir's on-disk interchange format is CSV, so vectors collected by any
// external measurement pipeline can be fed to the analysis CLI and so
// datasets built by the simulators can be archived and shared (the paper
// releases its enterprise and top-website datasets the same way).
//
// Layout (one file per dataset):
//
//   #fenrir-dataset,v1
//   name,<dataset name>
//   weights,<w1>,<w2>,...            (optional row)
//   time,valid,<net key1>,<net key2>,...
//   2020-03-01 00:00,1,LAX,unknown,err,...
//   2020-03-02 00:00,0,unknown,...   (collection outage)
//
// Network keys are decimal uint64 (a /24 block index, a VP id, an
// encoded prefix). Catchments are site names; "unknown"/"err"/"other"
// map to the reserved ids.
#pragma once

#include <iosfwd>
#include <stdexcept>

#include "core/vector.h"

namespace fenrir::core {

class DatasetIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes the dataset; throws DatasetIoError on an inconsistent dataset.
void save_dataset(const Dataset& dataset, std::ostream& out);

/// Parses a dataset; throws DatasetIoError on malformed input (bad
/// magic, ragged rows, unparsable times, unordered series).
Dataset load_dataset(std::istream& in);

/// Convenience file wrappers (throw DatasetIoError on I/O failure).
void save_dataset_file(const Dataset& dataset, const std::string& path);
Dataset load_dataset_file(const std::string& path);

}  // namespace fenrir::core
