// fenrir::core — Dataset (de)serialization.
//
// Fenrir's on-disk interchange format is CSV, so vectors collected by any
// external measurement pipeline can be fed to the analysis CLI and so
// datasets built by the simulators can be archived and shared (the paper
// releases its enterprise and top-website datasets the same way).
//
// Layout (one file per dataset):
//
//   #fenrir-dataset,v1
//   name,<dataset name>
//   weights,<w1>,<w2>,...            (optional row)
//   time,valid,<net key1>,<net key2>,...
//   2020-03-01 00:00,1,LAX,unknown,err,...
//   2020-03-02 00:00,0,unknown,...   (collection outage)
//
// Network keys are decimal uint64 (a /24 block index, a VP id, an
// encoded prefix). Catchments are site names; "unknown"/"err"/"other"
// map to the reserved ids.
#pragma once

#include <iosfwd>
#include <stdexcept>

#include "core/vector.h"

namespace fenrir::core {

class DatasetIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct LoadOptions {
  /// Salvage mode for damaged archives (a truncated scp, a collector
  /// that died mid-write). Instead of rejecting the whole file, the
  /// loader skips what it cannot parse — ragged rows, unparsable times,
  /// out-of-order rows, bad valid flags — drops duplicate network-key
  /// columns (first occurrence wins) and unusable weights rows, and
  /// logs one warning per damage category with a count. Structural
  /// damage (bad magic, unsupported version, missing header) still
  /// throws: there is nothing trustworthy left to salvage.
  bool lenient = false;
};

/// What lenient loading skipped; all zeros for an undamaged file.
struct LoadStats {
  std::size_t rows_kept = 0;
  std::size_t ragged_rows = 0;
  std::size_t bad_times = 0;
  std::size_t out_of_order_rows = 0;
  std::size_t bad_valid_flags = 0;
  std::size_t duplicate_networks = 0;  // dropped header columns
  bool weights_dropped = false;

  bool salvaged() const noexcept {
    return ragged_rows != 0 || bad_times != 0 || out_of_order_rows != 0 ||
           bad_valid_flags != 0 || duplicate_networks != 0 || weights_dropped;
  }
};

/// Writes the dataset; throws DatasetIoError on an inconsistent dataset.
void save_dataset(const Dataset& dataset, std::ostream& out);

/// Parses a dataset; throws DatasetIoError on malformed input (bad
/// magic, ragged rows, unparsable times, unordered series). With
/// options.lenient, damaged rows are skipped instead (see LoadOptions);
/// @p stats (optional) reports what was dropped. The default options
/// are byte-compatible with the historical strict loader.
Dataset load_dataset(std::istream& in, const LoadOptions& options = {},
                     LoadStats* stats = nullptr);

/// Convenience file wrappers (throw DatasetIoError on I/O failure).
void save_dataset_file(const Dataset& dataset, const std::string& path);
Dataset load_dataset_file(const std::string& path,
                          const LoadOptions& options = {},
                          LoadStats* stats = nullptr);

}  // namespace fenrir::core
