#include "core/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/trace_export.h"

namespace fenrir::core::detail {

bool& in_parallel_region() noexcept {
  thread_local bool flag = false;
  return flag;
}

struct WorkerPool::State {
  std::mutex run_mu;  // serializes run() callers: one job at a time

  std::mutex mu;  // guards everything below
  std::condition_variable wake;  // workers: a new job or stop
  std::condition_variable done;  // caller: all workers left the job
  Job* job = nullptr;
  std::uint64_t generation = 0;
  unsigned in_flight = 0;  // workers currently referencing `job`
  bool stop = false;
  bool started = false;
  std::vector<std::thread> workers;

  std::atomic<unsigned> next_stride{0};
};

WorkerPool& WorkerPool::instance() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::WorkerPool() : state_(new State) {}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->stop = true;
  }
  state_->wake.notify_all();
  for (std::thread& t : state_->workers) t.join();
  delete state_;
}

void WorkerPool::claim_strides(Job& job) {
  for (;;) {
    const unsigned w =
        state_->next_stride.fetch_add(1, std::memory_order_relaxed);
    if (w >= job.strides) return;
    const auto start = std::chrono::steady_clock::now();
    try {
      job.run_stride(job.fn, w, job.strides, job.count);
    } catch (...) {
      job.errors[w] = std::current_exception();
    }
    job.busy[w] = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  }
}

void WorkerPool::worker_main(unsigned index) {
  in_parallel_region() = true;  // nested parallel_for in fn runs inline
  obs::set_trace_thread_name("fenrir-worker-" + std::to_string(index));
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(state_->mu);
      state_->wake.wait(
          lk, [&] { return state_->stop || state_->generation != seen; });
      if (state_->stop) return;
      seen = state_->generation;
      if (state_->job != nullptr) {
        job = state_->job;
        ++state_->in_flight;
      }
    }
    if (job != nullptr) {
      {
        // Spans opened inside fn nest under the dispatching call site
        // rather than rooting at the top of the profile tree.
        obs::internal::SpanParentScope scope(job->span_parent);
        claim_strides(*job);
      }
      std::lock_guard<std::mutex> lk(state_->mu);
      if (--state_->in_flight == 0) state_->done.notify_all();
    }
  }
}

void WorkerPool::run(Job& job) {
  std::lock_guard<std::mutex> run_lock(state_->run_mu);
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    if (!state_->started) {
      state_->started = true;
      const unsigned hw = std::thread::hardware_concurrency();
      const unsigned helpers = hw > 1 ? hw - 1 : 0;
      state_->workers.reserve(helpers);
      for (unsigned i = 0; i < helpers; ++i) {
        state_->workers.emplace_back([this, i] { worker_main(i); });
      }
    }
    state_->job = &job;
    state_->next_stride.store(0, std::memory_order_relaxed);
    ++state_->generation;
  }
  state_->wake.notify_all();

  in_parallel_region() = true;
  claim_strides(job);
  in_parallel_region() = false;

  std::unique_lock<std::mutex> lk(state_->mu);
  state_->job = nullptr;  // workers waking from now on skip this job
  state_->done.wait(lk, [&] { return state_->in_flight == 0; });
}

}  // namespace fenrir::core::detail
