#include "rng/rng.h"

#include <algorithm>
#include <cmath>

namespace fenrir::rng {

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection to remove
  // modulo bias.
  if (bound == 0) return 0;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = gen_();
    // 128-bit multiply-high.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::exponential(double mean) noexcept {
  // Inverse CDF; guard against log(0).
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  // Irwin–Hall approximation: sum of 12 uniforms has mean 6, variance 1.
  double s = 0.0;
  for (int i = 0; i < 12; ++i) s += uniform01();
  return mean + stddev * (s - 6.0);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return static_cast<std::size_t>(uniform(n));
  // Cache the cumulative weights for the most recent (n, s); experiments
  // draw many variates from a single distribution, so one entry suffices.
  thread_local std::size_t cached_n = 0;
  thread_local double cached_s = -1.0;
  thread_local std::vector<double> cdf;
  if (cached_n != n || cached_s != s) {
    cdf.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      total += std::pow(static_cast<double>(k + 1), -s);
      cdf[k] = total;
    }
    cached_n = n;
    cached_s = s;
  }
  const double u = uniform01() * cdf.back();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::size_t>(it - cdf.begin());
}

}  // namespace fenrir::rng
