// fenrir::rng — deterministic, splittable pseudo-random number generation.
//
// Every Fenrir simulator draws randomness through this module so that a
// single 64-bit seed makes an entire experiment bit-reproducible. Two
// generators are provided:
//
//  * SplitMix64 — tiny stateless-style mixer, used for seeding and for
//    per-key hashing ("give me a stable random value for prefix P on day D").
//  * Xoshiro256ss — general-purpose generator (xoshiro256**), used for
//    sequential draws inside a simulator.
//
// Rng wraps Xoshiro256ss with the distribution helpers the simulators need
// (uniform integers/doubles, Bernoulli, exponential, Zipf, shuffling) and a
// split() operation that derives an independent child stream, so concurrent
// subsystems never share sequence state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

namespace fenrir::rng {

/// SplitMix64 step: advances @p state and returns the next 64-bit output.
/// Public-domain algorithm by Sebastiano Vigna.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a seed and a key: a stable "random function" value.
/// Used to give each (entity, epoch) pair reproducible randomness without
/// maintaining per-entity generator state.
constexpr std::uint64_t mix(std::uint64_t seed, std::uint64_t key) noexcept {
  std::uint64_t s = seed ^ (key * 0xd6e8feb86659fd93ULL);
  return splitmix64_next(s);
}

/// Three-way mix, for keys with two components (e.g. prefix + day).
constexpr std::uint64_t mix(std::uint64_t seed, std::uint64_t k1,
                            std::uint64_t k2) noexcept {
  return mix(mix(seed, k1), k2);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from @p seed via SplitMix64 (the procedure
  /// recommended by the xoshiro authors).
  explicit Xoshiro256ss(std::uint64_t seed = 0) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Deterministic random source with the distributions Fenrir's simulators
/// use. Copyable; copies continue the same sequence independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) noexcept : gen_(seed), seed_(seed) {}

  /// Derives an independent child generator. Children with distinct tags
  /// (and children of distinct parents) produce unrelated streams.
  [[nodiscard]] Rng split(std::uint64_t tag) const noexcept {
    return Rng(mix(seed_, 0x5eedc01dULL, tag));
  }

  std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform integer in [0, bound). @p bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// True with probability @p p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Approximately normal variate (sum of uniforms; adequate for jitter).
  double normal(double mean, double stddev) noexcept;

  /// Zipf-distributed rank in [0, n) with exponent @p s (s >= 0).
  /// Rank 0 is the most popular. Inverse-CDF sampling over a cached
  /// cumulative-weight table (built once per distinct (n, s)).
  std::size_t zipf(std::size_t n, double s);

  /// Picks a uniformly random element index of a non-empty span.
  template <typename T>
  std::size_t pick_index(std::span<const T> items) noexcept {
    return static_cast<std::size_t>(uniform(items.size()));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[static_cast<std::size_t>(uniform(i))]);
    }
  }

  std::uint64_t seed() const noexcept { return seed_; }

 private:
  Xoshiro256ss gen_;
  std::uint64_t seed_;
};

}  // namespace fenrir::rng
