#include "io/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

namespace fenrir::io {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e') {
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return;

  std::vector<std::size_t> width(cols, 0);
  const auto measure = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  };
  if (!header_.empty()) measure(header_);
  for (const auto& r : rows_) measure(r);

  const auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string cell = i < r.size() ? r[i] : std::string{};
      const std::size_t pad = width[i] - cell.size();
      if (i) out << "  ";
      if (looks_numeric(cell)) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < cols; ++i) total += width[i] + (i ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace fenrir::io
