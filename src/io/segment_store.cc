#include "io/segment_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "chaos/killpoint.h"
#include "core/dataset_io.h"
#include "core/parallel.h"
#include "io/snapshot.h"
#include "io/wire.h"
#include "obs/events.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/status_board.h"

namespace fenrir::io {

namespace {

using core::DatasetIoError;
using wire::fnv_init;
using wire::fnv_mix;
using wire::fnv_mix_u64;
using wire::patch_u64;
using wire::payload_checksum;
using wire::put_i64;
using wire::put_u32;
using wire::put_u64;
using wire::put_u64_array;
using wire::put_u8;
using wire::Reader;

constexpr std::uint8_t kIdentityNone = 0;
constexpr std::uint8_t kIdentityRowHashes = 1;
constexpr std::uint8_t kIdentityLegacyPrefix = 2;
constexpr std::uint32_t kFlagSealed = 1u;

struct SegMetrics {
  obs::Counter& sealed;
  obs::Counter& compacted;
  obs::Counter& retired;
  obs::Counter& mmap_bytes;
  obs::Counter& tail_flush;
  obs::Counter& tail_bytes;
  obs::Counter& checksum_verified;
};

SegMetrics& seg_metrics() {
  static SegMetrics m{
      obs::registry().counter("fenrir_segment_sealed_total",
                              "tail segments sealed and rotated"),
      obs::registry().counter(
          "fenrir_segment_compacted_total",
          "sealed segments merged away by compaction"),
      obs::registry().counter(
          "fenrir_segment_retired_total",
          "sealed segments retired by the retention policy"),
      obs::registry().counter(
          "fenrir_segment_mmap_bytes_total",
          "sealed segment bytes mapped for page adoption at load"),
      obs::registry().counter("fenrir_segment_tail_flush_total",
                              "tail flushes (pwrite + fsync + manifest)"),
      obs::registry().counter("fenrir_segment_tail_bytes_total",
                              "record bytes appended to tail segments"),
      obs::registry().counter(
          "fenrir_segment_checksum_verified_total",
          "segment payload checksums actually recomputed (once per "
          "mapped or compacted segment, never per save)")};
  return m;
}

DatasetIoError store_corrupt(const std::string& what) {
  obs::event_bus().emit(obs::Severity::kAlert, "segment_store_corrupt",
                        "\"error\":\"" + obs::json_escape(what) + "\"");
  return DatasetIoError(what);
}

std::size_t pad8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

/// Record byte size for global row @p g in a segment with @p tri_base.
std::size_t record_bytes(std::uint64_t g, std::uint64_t tri_base,
                         std::size_t networks, std::size_t width) {
  return 32 + pad8(networks * width) +
         8 * static_cast<std::size_t>(g - tri_base + 1);
}

std::uint64_t load_u64le(const std::byte* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(std::to_integer<unsigned>(p[i]))
           << (8 * i);
    }
    return v;
  }
}

/// Little-endian append of one packed assignment row, converting from
/// @p src_width (host order) to @p dst_width on the way when they
/// differ (compaction merges runs to their widest member).
void put_packed_le(std::string& out, const std::byte* src,
                   std::size_t networks, std::size_t src_width,
                   std::size_t dst_width) {
  if (src_width == dst_width &&
      std::endian::native == std::endian::little) {
    out.append(reinterpret_cast<const char*>(src), networks * src_width);
  } else {
    for (std::size_t n = 0; n < networks; ++n) {
      std::uint32_t v = 0;
      if (src_width == 1) {
        std::uint8_t x;
        std::memcpy(&x, src + n, 1);
        v = x;
      } else if (src_width == 2) {
        std::uint16_t x;
        std::memcpy(&x, src + n * 2, 2);
        v = x;
      } else {
        std::memcpy(&v, src + n * 4, 4);
      }
      for (std::size_t b = 0; b < dst_width; ++b) {
        out.push_back(static_cast<char>((v >> (8 * b)) & 0xFFu));
      }
    }
  }
  out.append(pad8(networks * dst_width) - networks * dst_width, '\0');
}

std::string encode_segment_header(std::uint32_t flags, std::uint64_t id,
                                  std::uint64_t base_row, std::uint64_t rows,
                                  std::uint64_t networks, std::uint64_t width,
                                  std::uint64_t tri_base,
                                  std::uint64_t payload_bytes,
                                  std::int64_t min_time,
                                  std::int64_t max_time) {
  std::string h;
  h.append(kSegmentMagic, sizeof(kSegmentMagic));
  put_u32(h, kSegmentVersion);
  put_u32(h, flags);
  put_u64(h, id);
  put_u64(h, base_row);
  put_u64(h, rows);
  put_u64(h, networks);
  put_u64(h, width);
  put_u64(h, tri_base);
  put_u64(h, payload_bytes);
  put_i64(h, min_time);
  put_i64(h, max_time);
  h.resize(kSegmentHeaderBytes, '\0');
  return h;
}

struct SegmentHeader {
  std::uint32_t flags = 0;
  std::uint64_t id = 0;
  std::uint64_t base_row = 0;
  std::uint64_t rows = 0;
  std::uint64_t networks = 0;
  std::uint64_t width = 0;
  std::uint64_t tri_base = 0;
  std::uint64_t payload_bytes = 0;
  std::int64_t min_time = 0;
  std::int64_t max_time = 0;
};

SegmentHeader decode_segment_header(const std::byte* data, std::size_t size,
                                    const std::string& name) {
  if (size < kSegmentHeaderBytes ||
      std::memcmp(data, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    throw store_corrupt("segment " + name +
                        ": bad magic — not a fenrir segment file (expected "
                        "it to start with FENRSEG1)");
  }
  Reader r{reinterpret_cast<const unsigned char*>(data), kSegmentHeaderBytes,
           sizeof(kSegmentMagic), "segment"};
  SegmentHeader h;
  const std::uint32_t version = r.get_u32();
  if (version != kSegmentVersion) {
    throw store_corrupt("segment " + name + ": version skew — file is v" +
                        std::to_string(version) + ", this build reads v" +
                        std::to_string(kSegmentVersion));
  }
  h.flags = r.get_u32();
  h.id = r.get_u64();
  h.base_row = r.get_u64();
  h.rows = r.get_u64();
  h.networks = r.get_u64();
  h.width = r.get_u64();
  h.tri_base = r.get_u64();
  h.payload_bytes = r.get_u64();
  h.min_time = r.get_i64();
  h.max_time = r.get_i64();
  if (h.width != 1 && h.width != 2 && h.width != 4) {
    throw store_corrupt("segment " + name +
                        ": inconsistent — packed width " +
                        std::to_string(h.width) + " is not 1, 2, or 4");
  }
  if (h.tri_base > h.base_row) {
    throw store_corrupt("segment " + name +
                        ": inconsistent — tri_base past base_row");
  }
  return h;
}

// --- POSIX helpers (EINTR-safe, DatasetIoError on failure) --------------

int open_or_throw(const std::filesystem::path& path, int flags, mode_t mode) {
  const int fd = ::open(path.c_str(), flags, mode);
  if (fd < 0) {
    throw DatasetIoError("cannot open " + path.string() + ": " +
                         std::strerror(errno));
  }
  return fd;
}

void pwrite_all(int fd, const void* data, std::size_t len, off_t off,
                const std::filesystem::path& path) {
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, p + done, len - done,
                               off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw DatasetIoError("cannot write " + path.string() + ": " +
                           std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

void pread_all(int fd, void* data, std::size_t len, off_t off,
               const std::filesystem::path& path) {
  char* p = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n =
        ::pread(fd, p + done, len - done, off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw DatasetIoError("cannot read " + path.string() + ": " +
                           std::strerror(errno));
    }
    if (n == 0) {
      throw store_corrupt("segment " + path.filename().string() +
                          ": truncated — the file ends before its recorded "
                          "payload");
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::filesystem::path& path) {
  if (::fsync(fd) != 0) {
    throw DatasetIoError("cannot fsync " + path.string() + ": " +
                         std::strerror(errno));
  }
}

void fsync_dir(const std::filesystem::path& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::string read_whole_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DatasetIoError("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw DatasetIoError("cannot read " + path.string());
  }
  return std::move(buffer).str();
}

/// One read-only mapping of a sealed segment, alive as long as any
/// matrix adopted pages from it.
struct Mapping {
  const std::byte* data = nullptr;
  std::size_t size = 0;
  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  Mapping(Mapping&& o) noexcept : data(o.data), size(o.size) {
    o.data = nullptr;
    o.size = 0;
  }
  ~Mapping() {
    if (data != nullptr) {
      ::munmap(const_cast<std::byte*>(data), size);
    }
  }
};

Mapping map_file(const std::filesystem::path& path, std::size_t need) {
  const int fd = open_or_throw(path, O_RDONLY, 0);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw DatasetIoError("cannot stat " + path.string() + ": " +
                         std::strerror(err));
  }
  if (static_cast<std::size_t>(st.st_size) < need) {
    ::close(fd);
    throw store_corrupt("segment " + path.filename().string() +
                        ": truncated — the file ends before its recorded "
                        "payload");
  }
  void* addr = ::mmap(nullptr, need, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);
  if (addr == MAP_FAILED) {
    throw DatasetIoError("cannot mmap " + path.string() + ": " +
                         std::strerror(err));
  }
  Mapping m;
  m.data = static_cast<const std::byte*>(addr);
  m.size = need;
  return m;
}

/// What load() keeps alive behind the matrix: the sealed mappings, the
/// tail's read-back bytes, and any host-order conversion buffers the
/// copy fallback produced.
struct LoadKeepalive {
  std::vector<Mapping> maps;
  std::string tail_bytes;
  std::vector<std::vector<double>> phi_buffers;
  std::vector<std::vector<std::byte>> packed_buffers;
};

struct RecordView {
  bool valid = false;
  std::int64_t time = 0;
  std::uint64_t anchor_of = kNoAnchor;
  std::uint64_t row_hash = 0;
  const std::byte* packed = nullptr;
  const std::byte* phi_bytes = nullptr;
  std::size_t phi_count = 0;
};

RecordView parse_record(const std::byte* rec, std::uint64_t g,
                        std::uint64_t tri_base, std::size_t networks,
                        std::size_t width) {
  RecordView v;
  v.valid = (load_u64le(rec) & 1) != 0;
  v.time = static_cast<std::int64_t>(load_u64le(rec + 8));
  v.anchor_of = load_u64le(rec + 16);
  v.row_hash = load_u64le(rec + 24);
  v.packed = rec + 32;
  v.phi_bytes = rec + 32 + pad8(networks * width);
  v.phi_count = static_cast<std::size_t>(g - tri_base + 1);
  return v;
}

std::uint64_t dataset_header_hash(const core::Dataset& dataset) {
  std::uint64_t h = fnv_init();
  fnv_mix_u64(h, dataset.networks.size());
  for (core::NetId id = 0; id < dataset.networks.size(); ++id) {
    fnv_mix_u64(h, dataset.networks.key(id));
  }
  fnv_mix_u64(h, dataset.weights.size());
  for (const double w : dataset.weights) {
    std::uint64_t bits;
    std::memcpy(&bits, &w, sizeof(bits));
    fnv_mix_u64(h, bits);
  }
  return h;
}

std::uint64_t dataset_names_hash(const core::Dataset& dataset,
                                 std::uint64_t max_site) {
  std::uint64_t h = fnv_init();
  fnv_mix_u64(h, max_site + 1);
  for (core::SiteId s = 0; s <= max_site; ++s) {
    const std::string& name = dataset.sites.name(s);
    fnv_mix_u64(h, name.size());
    fnv_mix(h, name.data(), name.size());
  }
  return h;
}

}  // namespace

std::uint64_t segment_row_hash(const core::RoutingVector& v) {
  std::uint64_t h = fnv_init();
  fnv_mix_u64(h, static_cast<std::uint64_t>(v.time));
  fnv_mix_u64(h, v.valid ? 1 : 0);
  fnv_mix_u64(h, v.assignment.size());
  for (const core::SiteId s : v.assignment) fnv_mix_u64(h, s);
  return h;
}

// SegmentCodec is the segment store's window into SimilarityMatrix and
// PackedSeries private state — the read-side twin of SnapshotCodec.
class SegmentCodec {
 public:
  static std::size_t networks(const core::SimilarityMatrix& m) {
    return m.packed_.networks_;
  }
  static std::size_t packed_width(const core::SimilarityMatrix& m) {
    return m.packed_.width_;
  }
  static const std::byte* packed_row(const core::SimilarityMatrix& m,
                                     std::size_t row) {
    return m.packed_.row_ptr(row);
  }
  static const double* phi_row(const core::SimilarityMatrix& m,
                               std::size_t row) {
    return m.values_.row(row);
  }
  static std::size_t anchor_of(const core::SimilarityMatrix& m,
                               std::size_t row) {
    return row < m.anchor_of_.size()
               ? m.anchor_of_[row]
               : core::SimilarityMatrix::kNoAnchorRow;
  }
};

// --- construction / recovery --------------------------------------------

SegmentStore::SegmentStore(std::filesystem::path dir, SegmentStoreConfig cfg)
    : dir_(std::move(dir)), cfg_(std::move(cfg)) {
  std::filesystem::create_directories(dir_);
  std::lock_guard<std::mutex> lock(state_mutex_);
  bool dirty = false;
  if (std::filesystem::exists(manifest_path())) {
    const std::string bytes = read_whole_file(manifest_path());
    decode_manifest(bytes);

    // Roll an interrupted lifecycle step forward. The manifest is the
    // source of truth; files only ever run *ahead* of it.
    if (tail_.has_value()) {
      const std::filesystem::path tp = tail_path(tail_->id);
      const std::filesystem::path sp = segment_path(tail_->id);
      const auto salvage = [&] {
        obs::event_bus().emit(
            obs::Severity::kWarn, "segment_tail_salvaged",
            "\"id\":" + std::to_string(tail_->id) + ",\"dropped_rows\":" +
                std::to_string(tail_->durable_rows));
        FENRIR_LOG(Warn)
                .field("id", tail_->id)
                .field("dropped_rows", tail_->durable_rows)
            << "torn tail dropped; sealed history retained";
        processed_ = tail_->base_row;
        std::error_code ec;
        std::filesystem::remove(tp, ec);
        tail_.reset();
        dirty = true;
      };
      if (std::filesystem::exists(tp)) {
        std::string head(kSegmentHeaderBytes, '\0');
        const int fd = open_or_throw(tp, O_RDWR, 0);
        struct stat st{};
        ::fstat(fd, &st);
        const std::size_t need =
            kSegmentHeaderBytes + tail_->payload_bytes;
        if (static_cast<std::size_t>(st.st_size) < need) {
          ::close(fd);
          salvage();  // the protocol was violated below us — drop the tail
        } else {
          pread_all(fd, head.data(), head.size(), 0, tp);
          const SegmentHeader h = decode_segment_header(
              reinterpret_cast<const std::byte*>(head.data()), head.size(),
              tp.filename().string());
          if ((h.flags & kFlagSealed) != 0) {
            // Crashed between the seal's header patch and its rename:
            // finish the rename and adopt the sealed segment below.
            ::close(fd);
            if (::rename(tp.c_str(), sp.c_str()) != 0) {
              throw DatasetIoError("cannot rename " + tp.string() +
                                   ": " + std::strerror(errno));
            }
            fsync_dir(dir_);
          } else {
            // Drop any appended-but-unmanifested suffix.
            if (static_cast<std::size_t>(st.st_size) > need) {
              if (::ftruncate(fd, static_cast<off_t>(need)) != 0) {
                const int err = errno;
                ::close(fd);
                throw DatasetIoError("cannot truncate " + tp.string() +
                                     ": " + std::strerror(err));
              }
            }
            tail_->rows = tail_->durable_rows;
            tail_->fd = fd;
          }
        }
      } else if (!std::filesystem::exists(sp)) {
        salvage();  // the tail vanished entirely
      }
      // A seal that crashed after its rename (with or without the
      // roll-forward above): the sealed file exists under seg-<id> but
      // the manifest still lists it as the tail.
      if (tail_.has_value() && tail_->fd < 0 &&
          std::filesystem::exists(sp)) {
        const std::string bytes2 = read_whole_file(sp);
        const SegmentHeader h = decode_segment_header(
            reinterpret_cast<const std::byte*>(bytes2.data()), bytes2.size(),
            sp.filename().string());
        if (bytes2.size() <
            kSegmentHeaderBytes + h.payload_bytes + kSegmentTrailerBytes) {
          throw store_corrupt("segment " + sp.filename().string() +
                              ": truncated — the file ends before its "
                              "recorded payload");
        }
        SegmentInfo info;
        info.id = h.id;
        info.base_row = h.base_row;
        info.rows = h.rows;
        info.tri_base = h.tri_base;
        info.width = h.width;
        info.payload_bytes = h.payload_bytes;
        info.checksum = static_cast<std::uint32_t>(load_u64le(
            reinterpret_cast<const std::byte*>(bytes2.data()) +
            kSegmentHeaderBytes + h.payload_bytes));
        info.min_time = h.min_time;
        info.max_time = h.max_time;
        sealed_.push_back(info);
        processed_ = std::max(processed_, info.base_row + info.rows);
        tail_.reset();
        dirty = true;
      }
    }
  }

  // Collect leftovers no committed state references: crashed atomic
  // writes, compaction outputs that never committed, orphaned tails.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name == "MANIFEST") continue;
    bool referenced = false;
    if (tail_.has_value() && entry.path() == tail_path(tail_->id)) {
      referenced = true;
    }
    for (const SegmentInfo& s : sealed_) {
      if (entry.path() == segment_path(s.id)) referenced = true;
    }
    if (!referenced) {
      std::error_code ec;
      std::filesystem::remove(entry.path(), ec);
    }
  }
  if (dirty) write_manifest_locked();
  publish_status_locked();
}

SegmentStore::~SegmentStore() {
  if (compactor_.joinable()) compactor_.join();
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (tail_.has_value() && tail_->fd >= 0) ::close(tail_->fd);
}

bool SegmentStore::looks_like_store(const std::filesystem::path& path) {
  return std::filesystem::is_directory(path) &&
         std::filesystem::exists(path / "MANIFEST");
}

std::filesystem::path SegmentStore::manifest_path() const {
  return dir_ / "MANIFEST";
}

std::filesystem::path SegmentStore::segment_path(std::uint64_t id) const {
  return dir_ / ("seg-" + std::to_string(id) + ".fenrseg");
}

std::filesystem::path SegmentStore::tail_path(std::uint64_t id) const {
  return dir_ / ("tail-" + std::to_string(id) + ".fenrseg");
}

// --- manifest -----------------------------------------------------------

std::string SegmentStore::encode_manifest_locked() const {
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  put_u32(out, kManifestVersion);
  const std::size_t length_at = out.size();
  put_u64(out, 0);  // total length, patched below
  put_u8(out, identity_mode_);
  put_u8(out, policy_ == core::UnknownPolicy::kKnownOnly ? 1 : 0);
  put_u8(out, has_modebook_ ? 1 : 0);
  put_u8(out, configured_ ? 1 : 0);
  put_u64(out, header_hash_);
  put_u64(out, names_hash_);
  put_u64(out, max_site_seen_);
  put_u64(out, legacy_prefix_hash_);
  put_u64(out, networks_);
  put_u64(out, weights_.size());
  put_u64_array(out, weights_.data(), weights_.size());
  put_u64(out, base_row_);
  put_u64(out, processed_);
  put_u64(out, next_segment_id_);
  put_i64(out, max_time_seen_);
  put_u64(out, sealed_.size());
  for (const SegmentInfo& s : sealed_) {
    put_u64(out, s.id);
    put_u64(out, s.base_row);
    put_u64(out, s.rows);
    put_u64(out, s.tri_base);
    put_u64(out, s.width);
    put_u64(out, s.payload_bytes);
    put_u32(out, s.checksum);
    put_i64(out, s.min_time);
    put_i64(out, s.max_time);
  }
  put_u8(out, tail_.has_value() ? 1 : 0);
  if (tail_.has_value()) {
    put_u64(out, tail_->id);
    put_u64(out, tail_->base_row);
    put_u64(out, tail_->tri_base);
    put_u64(out, tail_->width);
    put_u64(out, tail_->durable_rows);
    put_u64(out, tail_->payload_bytes);
    put_i64(out, tail_->min_time);
    put_i64(out, tail_->max_time);
  }
  if (has_modebook_) {
    put_u64(out, representatives_.size());
    for (const core::RoutingVector& rep : representatives_) {
      put_i64(out, rep.time);
      put_u8(out, rep.valid ? 1 : 0);
      put_u64(out, rep.assignment.size());
      for (const core::SiteId s : rep.assignment) put_u32(out, s);
    }
    put_u64(out, history_.size());
    for (const std::size_t m : history_) put_u64(out, m);
  }
  patch_u64(out, length_at, out.size() + 4);  // the CRC trailer follows
  put_u32(out, payload_checksum(out.data(), out.size()));
  return out;
}

void SegmentStore::decode_manifest(const std::string& bytes) {
  if (bytes.size() < sizeof(kManifestMagic) ||
      std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) !=
          0) {
    throw store_corrupt(
        "segment manifest: bad magic — not a fenrir segment-store manifest "
        "(expected it to start with FENRMANI)");
  }
  if (bytes.size() < 24) {
    throw store_corrupt(
        "segment manifest: truncated — the file ends inside the header");
  }
  Reader r{reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size(),
           sizeof(kManifestMagic), "segment manifest"};
  const std::uint32_t version = r.get_u32();
  if (version != kManifestVersion) {
    throw store_corrupt("segment manifest: version skew — file is v" +
                        std::to_string(version) + ", this build reads v" +
                        std::to_string(kManifestVersion));
  }
  const std::uint64_t total = r.get_u64();
  if (total > bytes.size()) {
    throw store_corrupt(
        "segment manifest: truncated — the file is shorter than its "
        "recorded length");
  }
  if (total < bytes.size()) {
    throw store_corrupt(
        "segment manifest: trailing bytes after the recorded length");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if constexpr (std::endian::native == std::endian::big) {
    stored_crc = __builtin_bswap32(stored_crc);
  }
  if (stored_crc != payload_checksum(bytes.data(), bytes.size() - 4)) {
    throw store_corrupt(
        "segment manifest: checksum mismatch — the file is corrupt (bit "
        "rot or a partial copy)");
  }
  r.size = bytes.size() - 4;

  identity_mode_ = r.get_u8();
  policy_ = r.get_u8() != 0 ? core::UnknownPolicy::kKnownOnly
                            : core::UnknownPolicy::kPessimistic;
  has_modebook_ = r.get_u8() != 0;
  configured_ = r.get_u8() != 0;
  header_hash_ = r.get_u64();
  names_hash_ = r.get_u64();
  max_site_seen_ = r.get_u64();
  legacy_prefix_hash_ = r.get_u64();
  networks_ = static_cast<std::size_t>(r.get_u64());
  const std::size_t weight_count = r.get_count(8);
  weights_.resize(weight_count);
  r.get_u64_array(weights_.data(), weight_count);
  base_row_ = r.get_u64();
  processed_ = r.get_u64();
  next_segment_id_ = r.get_u64();
  max_time_seen_ = r.get_i64();
  const std::size_t sealed_count = r.get_count(68);
  std::uint64_t expect_base = base_row_;
  sealed_.clear();
  for (std::size_t k = 0; k < sealed_count; ++k) {
    SegmentInfo s;
    s.id = r.get_u64();
    s.base_row = r.get_u64();
    s.rows = r.get_u64();
    s.tri_base = r.get_u64();
    s.width = r.get_u64();
    s.payload_bytes = r.get_u64();
    s.checksum = r.get_u32();
    s.min_time = r.get_i64();
    s.max_time = r.get_i64();
    if (s.base_row != expect_base || s.tri_base > s.base_row ||
        (s.width != 1 && s.width != 2 && s.width != 4)) {
      throw store_corrupt(
          "segment manifest: inconsistent — sealed segments do not tile "
          "the retained window");
    }
    expect_base = s.base_row + s.rows;
    sealed_.push_back(s);
  }
  tail_.reset();
  if (r.get_u8() != 0) {
    TailState t;
    t.id = r.get_u64();
    t.base_row = r.get_u64();
    t.tri_base = r.get_u64();
    t.width = r.get_u64();
    t.durable_rows = r.get_u64();
    t.rows = t.durable_rows;
    t.payload_bytes = r.get_u64();
    t.min_time = r.get_i64();
    t.max_time = r.get_i64();
    if (t.base_row != expect_base || t.tri_base > t.base_row ||
        (t.width != 1 && t.width != 2 && t.width != 4)) {
      throw store_corrupt(
          "segment manifest: inconsistent — the tail does not continue "
          "the sealed window");
    }
    expect_base = t.base_row + t.durable_rows;
    tail_ = t;
  }
  if (processed_ != expect_base) {
    throw store_corrupt(
        "segment manifest: inconsistent — processed count disagrees with "
        "the segment rows");
  }
  representatives_.clear();
  history_.clear();
  if (has_modebook_) {
    const std::size_t mode_count = r.get_count(17);
    representatives_.reserve(mode_count);
    for (std::size_t m = 0; m < mode_count; ++m) {
      core::RoutingVector rep;
      rep.time = r.get_i64();
      rep.valid = r.get_u8() != 0;
      const std::size_t size = r.get_count(4);
      rep.assignment.resize(size);
      for (std::size_t s = 0; s < size; ++s) {
        rep.assignment[s] = r.get_u32();
      }
      representatives_.push_back(std::move(rep));
    }
    const std::size_t history_count = r.get_count(8);
    history_.resize(history_count);
    for (std::size_t m = 0; m < history_count; ++m) {
      history_[m] = static_cast<std::size_t>(r.get_u64());
    }
  }
}

void SegmentStore::write_manifest_locked() {
  atomic_write_file(manifest_path(), encode_manifest_locked());
}

// --- identity / configuration ------------------------------------------

void SegmentStore::attach(const core::Dataset* dataset) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  dataset_ = dataset;
  if (dataset != nullptr && identity_mode_ == kIdentityNone) {
    identity_mode_ = kIdentityRowHashes;
    header_hash_ = dataset_header_hash(*dataset);
    names_hash_stale_ = true;
  }
}

void SegmentStore::configure(core::UnknownPolicy policy,
                             std::vector<double> weights) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (processed_ != 0) {
    throw std::logic_error("SegmentStore::configure: store has rows");
  }
  policy_ = policy;
  weights_ = std::move(weights);
  configured_ = true;
}

void SegmentStore::set_legacy_identity(std::uint64_t prefix_hash) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  identity_mode_ = kIdentityLegacyPrefix;
  legacy_prefix_hash_ = prefix_hash;
}

void SegmentStore::set_modebook_state(
    bool has_modebook, std::vector<core::RoutingVector> representatives,
    std::vector<std::size_t> history) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  has_modebook_ = has_modebook;
  representatives_ = std::move(representatives);
  history_ = std::move(history);
}

void SegmentStore::refresh_names_hash_locked() {
  if (!names_hash_stale_ || dataset_ == nullptr) return;
  names_hash_ = dataset_names_hash(*dataset_, max_site_seen_);
  names_hash_stale_ = false;
}

// --- tail lifecycle -----------------------------------------------------

void SegmentStore::open_tail_locked(std::uint64_t width) {
  TailState t;
  t.id = next_segment_id_++;
  t.base_row = processed_;
  t.tri_base = base_row_;
  t.width = width;
  const std::filesystem::path tp = tail_path(t.id);
  t.fd = open_or_throw(tp, O_RDWR | O_CREAT | O_TRUNC, 0644);
  const std::string header = encode_segment_header(
      0, t.id, t.base_row, 0, networks_, t.width, t.tri_base, 0, 0, 0);
  pwrite_all(t.fd, header.data(), header.size(), 0, tp);
  fsync_or_throw(t.fd, tp);
  tail_ = t;
}

void SegmentStore::ensure_tail_locked(std::size_t networks,
                                      std::uint64_t width) {
  if (networks_ == 0) networks_ = networks;
  if (networks != networks_) {
    throw std::invalid_argument("SegmentStore: network count mismatch");
  }
  if (tail_.has_value() && tail_->width != width) {
    if (tail_->rows > 0 || !pending_.empty()) {
      // The series widened mid-tail: records in one segment share one
      // width, so seal what we have and start a fresh tail.
      flush_locked(true);
    } else {
      ::close(tail_->fd);
      std::error_code ec;
      std::filesystem::remove(tail_path(tail_->id), ec);
      tail_.reset();
    }
  }
  if (tail_.has_value() && tail_->fd < 0) {
    tail_->fd = open_or_throw(tail_path(tail_->id), O_RDWR, 0);
  }
  if (!tail_.has_value()) open_tail_locked(width);
}

void SegmentStore::append_record_locked(
    bool valid, std::int64_t time, std::uint64_t anchor_of,
    std::uint64_t row_hash, std::size_t networks, std::uint64_t width,
    std::span<const std::byte> packed, std::span<const double> phi) {
  ensure_tail_locked(networks, width);
  const std::uint64_t g = processed_;
  if (phi.size() != static_cast<std::size_t>(g - tail_->tri_base + 1)) {
    throw std::invalid_argument(
        "SegmentStore: phi span does not cover the retained window");
  }
  put_u64(pending_, valid ? 1 : 0);
  put_i64(pending_, time);
  put_u64(pending_, anchor_of);
  put_u64(pending_, row_hash);
  put_packed_le(pending_, packed.data(), networks,
                packed.size() / std::max<std::size_t>(networks, 1),
                static_cast<std::size_t>(width));
  put_u64_array(pending_, phi.data(), phi.size());
  if (tail_->rows == 0) {
    tail_->min_time = time;
    tail_->max_time = time;
  } else {
    tail_->min_time = std::min(tail_->min_time, time);
    tail_->max_time = std::max(tail_->max_time, time);
  }
  tail_->rows += 1;
  max_time_seen_ = std::max(max_time_seen_, time);
  processed_ += 1;
}

void SegmentStore::spill(const core::RoutingVector& v,
                         const core::SimilarityMatrix& matrix) {
  if (matrix.size() == 0) {
    throw std::logic_error("SegmentStore::spill: matrix is empty");
  }
  spill_row(v, matrix, matrix.size() - 1);
}

void SegmentStore::spill_row(const core::RoutingVector& v,
                             const core::SimilarityMatrix& matrix,
                             std::size_t row) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!configured_) {
    policy_ = matrix.policy();
    weights_ = matrix.weights();
    configured_ = true;
  }
  if (row >= matrix.size()) {
    throw std::logic_error("SegmentStore::spill_row: row out of range");
  }
  const std::size_t local = row;
  const std::uint64_t g = processed_;
  if (g < local) {
    throw std::logic_error(
        "SegmentStore::spill: matrix is longer than the store's history");
  }
  const std::uint64_t session_base = g - local;
  const std::size_t networks = SegmentCodec::networks(matrix);
  const std::uint64_t width = SegmentCodec::packed_width(matrix);
  for (const core::SiteId s : v.assignment) {
    if (s > max_site_seen_) {
      max_site_seen_ = s;
      names_hash_stale_ = true;
    }
  }
  const std::size_t local_anchor = SegmentCodec::anchor_of(matrix, local);
  const std::uint64_t anchor =
      local_anchor == core::SimilarityMatrix::kNoAnchorRow
          ? kNoAnchor
          : static_cast<std::uint64_t>(local_anchor) + session_base;
  ensure_tail_locked(networks, width);
  // The tail stores Φ columns from its tri_base on; the matrix row holds
  // columns from the session base on. tri_base >= session_base always
  // (the base only advances), so the slice below is in range.
  const double* phi = SegmentCodec::phi_row(matrix, local) +
                      (tail_->tri_base - session_base);
  const std::size_t phi_count =
      static_cast<std::size_t>(g - tail_->tri_base + 1);
  append_record_locked(v.valid, v.time, anchor, segment_row_hash(v),
                       networks, width,
                       {SegmentCodec::packed_row(matrix, local),
                        networks * static_cast<std::size_t>(width)},
                       {phi, phi_count});
}

void SegmentStore::append_raw(bool valid, std::int64_t time,
                              std::uint64_t anchor_of,
                              std::uint64_t row_hash, std::size_t networks,
                              std::size_t width,
                              std::span<const std::byte> packed,
                              std::span<const double> phi) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  append_record_locked(valid, time, anchor_of, row_hash, networks, width,
                       packed, phi);
}

void SegmentStore::flush(const core::ModeBook* book) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (book != nullptr) {
    has_modebook_ = true;
    representatives_.clear();
    representatives_.reserve(book->mode_count());
    for (std::size_t m = 0; m < book->mode_count(); ++m) {
      representatives_.push_back(book->representative(m));
    }
    history_ = book->history();
  }
  flush_locked(false);
}

void SegmentStore::seal_active() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  flush_locked(true);
}

void SegmentStore::flush_locked(bool force_seal) {
  refresh_names_hash_locked();
  if (tail_.has_value() && !pending_.empty()) {
    const std::filesystem::path tp = tail_path(tail_->id);
    pwrite_all(tail_->fd, pending_.data(), pending_.size(),
               static_cast<off_t>(kSegmentHeaderBytes +
                                  tail_->payload_bytes),
               tp);
    fsync_or_throw(tail_->fd, tp);
    SegMetrics& m = seg_metrics();
    m.tail_flush.inc();
    m.tail_bytes.inc(pending_.size());
    tail_->payload_bytes += pending_.size();
    tail_->durable_rows = tail_->rows;
    pending_.clear();
    chaos::maybe_kill_at("segment_tail_flush");
  }
  write_manifest_locked();
  if (tail_.has_value() && tail_->durable_rows > 0 &&
      (force_seal || tail_->durable_rows >= cfg_.seal_rows)) {
    seal_tail_locked();
    std::vector<std::filesystem::path> retired;
    apply_retention_locked(retired);
    write_manifest_locked();
    for (const std::filesystem::path& p : retired) {
      std::error_code ec;
      std::filesystem::remove(p, ec);
    }
  }
  maybe_start_compaction_locked();
  publish_status_locked();
}

void SegmentStore::seal_tail_locked() {
  TailState& t = *tail_;
  const std::filesystem::path tp = tail_path(t.id);
  std::string payload(t.payload_bytes, '\0');
  pread_all(t.fd, payload.data(), payload.size(),
            static_cast<off_t>(kSegmentHeaderBytes), tp);
  const std::uint32_t crc =
      payload_checksum(payload.data(), payload.size());
  const std::string header = encode_segment_header(
      kFlagSealed, t.id, t.base_row, t.durable_rows, networks_, t.width,
      t.tri_base, t.payload_bytes, t.min_time, t.max_time);
  pwrite_all(t.fd, header.data(), header.size(), 0, tp);
  std::string trailer;
  put_u32(trailer, crc);
  put_u32(trailer, 0);
  trailer.append(kSegmentTrailerMagic, sizeof(kSegmentTrailerMagic));
  pwrite_all(t.fd, trailer.data(), trailer.size(),
             static_cast<off_t>(kSegmentHeaderBytes + t.payload_bytes), tp);
  fsync_or_throw(t.fd, tp);
  ::close(t.fd);
  const std::filesystem::path sp = segment_path(t.id);
  if (::rename(tp.c_str(), sp.c_str()) != 0) {
    throw DatasetIoError("cannot rename " + tp.string() + " over " +
                         sp.string() + ": " + std::strerror(errno));
  }
  fsync_dir(dir_);
  chaos::maybe_kill_at("segment_seal_rename");
  SegmentInfo info;
  info.id = t.id;
  info.base_row = t.base_row;
  info.rows = t.durable_rows;
  info.tri_base = t.tri_base;
  info.width = t.width;
  info.payload_bytes = t.payload_bytes;
  info.checksum = crc;
  info.min_time = t.min_time;
  info.max_time = t.max_time;
  sealed_.push_back(info);
  tail_.reset();
  seg_metrics().sealed.inc();
  obs::event_bus().emit(obs::Severity::kInfo, "segment_sealed",
                        "\"id\":" + std::to_string(info.id) +
                            ",\"rows\":" + std::to_string(info.rows) +
                            ",\"bytes\":" +
                            std::to_string(info.payload_bytes));
}

void SegmentStore::apply_retention_locked(
    std::vector<std::filesystem::path>& retired) {
  while (!sealed_.empty()) {
    const SegmentInfo& front = sealed_.front();
    bool retire = false;
    if (cfg_.retain_obs > 0 && processed_ > cfg_.retain_obs &&
        front.base_row + front.rows <= processed_ - cfg_.retain_obs) {
      retire = true;
    }
    if (!retire && cfg_.retain_seconds > 0 &&
        front.max_time < max_time_seen_ - cfg_.retain_seconds) {
      retire = true;
    }
    if (!retire) break;
    retired.push_back(segment_path(front.id));
    seg_metrics().retired.inc();
    sealed_.erase(sealed_.begin());
  }
  base_row_ = !sealed_.empty()
                  ? sealed_.front().base_row
                  : (tail_.has_value() ? tail_->base_row : processed_);
}

// --- accessors ----------------------------------------------------------

std::uint64_t SegmentStore::processed() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return processed_;
}

std::uint64_t SegmentStore::base_row() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return base_row_;
}

std::uint64_t SegmentStore::tail_rows() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return tail_.has_value() ? tail_->rows : 0;
}

std::uint64_t SegmentStore::cold_bytes() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::uint64_t total = 0;
  for (const SegmentInfo& s : sealed_) {
    total += kSegmentHeaderBytes + s.payload_bytes + kSegmentTrailerBytes;
  }
  return total;
}

bool SegmentStore::empty() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return processed_ == base_row_ && sealed_.empty() &&
         (!tail_.has_value() || tail_->rows == 0);
}

bool SegmentStore::legacy_identity() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return identity_mode_ == kIdentityLegacyPrefix;
}

core::UnknownPolicy SegmentStore::policy() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return policy_;
}

const std::vector<double>& SegmentStore::weights() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return weights_;
}

std::vector<SegmentInfo> SegmentStore::segments() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return sealed_;
}

void SegmentStore::publish_status_locked() const {
  std::uint64_t cold = 0;
  for (const SegmentInfo& s : sealed_) {
    cold += kSegmentHeaderBytes + s.payload_bytes + kSegmentTrailerBytes;
  }
  std::ostringstream os;
  os << "{\"segments\":" << sealed_.size()
     << ",\"tail_rows\":" << (tail_.has_value() ? tail_->rows : 0)
     << ",\"cold_bytes\":" << cold << ",\"base_row\":" << base_row_
     << ",\"processed\":" << processed_ << "}";
  obs::status_board().publish("storage", os.str());
}

// --- load ---------------------------------------------------------------

SegmentStore::Loaded SegmentStore::load(const core::Dataset* dataset) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  SegMetrics& metrics = seg_metrics();
  Loaded out{core::SimilarityMatrix(policy_, weights_, cfg_.threads),
             base_row_, processed_, has_modebook_, representatives_,
             history_};
  const std::uint64_t S = base_row_;
  const std::size_t retained = static_cast<std::size_t>(processed_ - S);
  if (retained == 0) return out;

  if (dataset != nullptr) {
    if (processed_ > dataset->series.size()) {
      throw DatasetIoError(
          "segment store: state is ahead of the dataset — " +
          std::to_string(processed_) + " observations recorded, " +
          std::to_string(dataset->series.size()) +
          " present; pass the full dataset or start fresh");
    }
    if (identity_mode_ == kIdentityLegacyPrefix) {
      if (dataset_prefix_hash(*dataset, processed_) !=
          legacy_prefix_hash_) {
        throw DatasetIoError(
            "segment store: prefix hash mismatch — this store was built "
            "from a different dataset (or one that was edited in place)");
      }
    } else if (identity_mode_ == kIdentityRowHashes) {
      bool names_ok = true;
      try {
        names_ok =
            header_hash_ == dataset_header_hash(*dataset) &&
            names_hash_ == dataset_names_hash(*dataset, max_site_seen_);
      } catch (const std::out_of_range&) {
        names_ok = false;  // the store references sites the dataset lacks
      }
      if (!names_ok) {
        throw DatasetIoError(
            "segment store: identity mismatch — the dataset's networks, "
            "weights, or site names disagree with the ones this store "
            "was built from");
      }
    }
  }

  auto keep = std::make_shared<LoadKeepalive>();
  struct SegView {
    const SegmentInfo* info;
    const std::byte* records;  // first record, inside the mapping
  };
  std::vector<SegView> views;
  views.reserve(sealed_.size());
  bool uniform_width = true;
  for (const SegmentInfo& s : sealed_) {
    const std::size_t need = kSegmentHeaderBytes +
                             static_cast<std::size_t>(s.payload_bytes) +
                             kSegmentTrailerBytes;
    Mapping m = map_file(segment_path(s.id), need);
    const std::string name = segment_path(s.id).filename().string();
    const SegmentHeader h = decode_segment_header(m.data, m.size, name);
    if ((h.flags & kFlagSealed) == 0 || h.id != s.id ||
        h.base_row != s.base_row || h.rows != s.rows ||
        h.tri_base != s.tri_base || h.width != s.width ||
        h.payload_bytes != s.payload_bytes || h.networks != networks_) {
      throw store_corrupt("segment " + name +
                          ": inconsistent — the header disagrees with the "
                          "manifest");
    }
    // Lazy-once checksum: computed at seal, verified here per mapped
    // segment — never recomputed on the save path the way the
    // monolithic snapshot re-hashed its whole buffer every interval.
    const std::uint32_t crc = payload_checksum(
        m.data + kSegmentHeaderBytes, static_cast<std::size_t>(s.payload_bytes));
    metrics.checksum_verified.inc();
    const std::uint32_t stored = static_cast<std::uint32_t>(
        load_u64le(m.data + kSegmentHeaderBytes + s.payload_bytes));
    if (crc != s.checksum || stored != s.checksum) {
      throw store_corrupt("segment " + name +
                          ": checksum mismatch — the file is corrupt (bit "
                          "rot or a partial copy)");
    }
    metrics.mmap_bytes.inc(need);
    keep->maps.push_back(std::move(m));
    views.push_back({&s, keep->maps.back().data + kSegmentHeaderBytes});
    if (s.width != sealed_.front().width) uniform_width = false;
  }
  if (tail_.has_value() && tail_->durable_rows > 0) {
    const std::filesystem::path tp = tail_path(tail_->id);
    keep->tail_bytes.resize(static_cast<std::size_t>(tail_->payload_bytes));
    const int fd = open_or_throw(tp, O_RDONLY, 0);
    try {
      pread_all(fd, keep->tail_bytes.data(), keep->tail_bytes.size(),
                static_cast<off_t>(kSegmentHeaderBytes), tp);
    } catch (...) {
      ::close(fd);
      throw;
    }
    ::close(fd);
  }

  const bool zero_copy =
      std::endian::native == std::endian::little && uniform_width;
  core::SimilarityMatrix& matrix = out.matrix;
  const std::uint64_t adopt_width =
      !sealed_.empty() ? sealed_.front().width
                       : (tail_.has_value() ? tail_->width : 1);

  std::vector<core::SimilarityMatrix::AdoptedRow> adopted;
  if (zero_copy) adopted.reserve(retained);
  const auto rebase_anchor = [&](std::uint64_t a) {
    return (a == kNoAnchor || a < S)
               ? core::SimilarityMatrix::kNoAnchorRow
               : static_cast<std::size_t>(a - S);
  };
  bool copy_initialized = false;
  const auto ensure_copy_matrix = [&] {
    if (copy_initialized) return;
    matrix.adopt_rows(networks_, static_cast<std::size_t>(adopt_width), {},
                      keep);
    copy_initialized = true;
  };
  const auto take_record = [&](const std::byte* rec, std::uint64_t g,
                               std::uint64_t tri_base, std::uint64_t width,
                               const std::string& name, bool in_tail) {
    const RecordView v = parse_record(rec, g, tri_base, networks_,
                                      static_cast<std::size_t>(width));
    if (dataset != nullptr && identity_mode_ == kIdentityRowHashes &&
        v.row_hash !=
            segment_row_hash(dataset->series[static_cast<std::size_t>(g)])) {
      throw DatasetIoError(
          "segment store: row hash mismatch at observation " +
          std::to_string(g) +
          " — the dataset is not the one this store was built from");
    }
    core::SimilarityMatrix::AdoptedRow row;
    row.valid = v.valid;
    row.anchor_of = rebase_anchor(v.anchor_of);
    // The record's Φ span starts at the segment's tri_base; the matrix
    // row starts at the store's base. tri_base <= S always.
    const std::size_t skip = static_cast<std::size_t>(S - tri_base);
    if constexpr (std::endian::native == std::endian::little) {
      row.packed = v.packed;
      row.phi = reinterpret_cast<const double*>(v.phi_bytes) + skip;
    } else {
      auto& phis = keep->phi_buffers.emplace_back();
      phis.resize(v.phi_count - skip);
      for (std::size_t k = 0; k < phis.size(); ++k) {
        const std::uint64_t bits =
            load_u64le(v.phi_bytes + 8 * (skip + k));
        std::memcpy(&phis[k], &bits, sizeof(double));
      }
      auto& pack = keep->packed_buffers.emplace_back();
      pack.resize(networks_ * static_cast<std::size_t>(width));
      for (std::size_t n = 0; n < networks_; ++n) {
        std::uint32_t val = 0;
        for (std::size_t b = 0; b < width; ++b) {
          val |= static_cast<std::uint32_t>(std::to_integer<unsigned>(
                     v.packed[n * width + b]))
                 << (8 * b);
        }
        std::memcpy(pack.data() + n * width, &val,
                    static_cast<std::size_t>(width));
      }
      row.packed = pack.data();
      row.phi = phis.data();
    }
    if (zero_copy && !in_tail) {
      adopted.push_back(row);
    } else {
      if (!copy_initialized && adopted.size() > 0) {
        // Seal the zero-copy prefix before switching to copies.
        matrix.adopt_rows(networks_, static_cast<std::size_t>(adopt_width),
                          adopted, keep);
        copy_initialized = true;
      }
      ensure_copy_matrix();
      matrix.append_precomputed(row, static_cast<std::size_t>(width));
    }
    (void)name;
  };

  for (const SegView& view : views) {
    const SegmentInfo& s = *view.info;
    const std::byte* rec = view.records;
    const std::string name = "seg-" + std::to_string(s.id);
    for (std::uint64_t r = 0; r < s.rows; ++r) {
      const std::uint64_t g = s.base_row + r;
      take_record(rec, g, s.tri_base, s.width, name, false);
      rec += record_bytes(g, s.tri_base, networks_,
                          static_cast<std::size_t>(s.width));
    }
    if (static_cast<std::uint64_t>(rec - view.records) != s.payload_bytes) {
      throw store_corrupt("segment " + name +
                          ": inconsistent — record sizes do not sum to the "
                          "recorded payload");
    }
  }
  if (zero_copy && !copy_initialized && !adopted.empty()) {
    matrix.adopt_rows(networks_, static_cast<std::size_t>(adopt_width),
                      adopted, keep);
    copy_initialized = true;
  }
  if (tail_.has_value() && tail_->durable_rows > 0) {
    const std::byte* rec =
        reinterpret_cast<const std::byte*>(keep->tail_bytes.data());
    const std::string name = "tail-" + std::to_string(tail_->id);
    for (std::uint64_t r = 0; r < tail_->durable_rows; ++r) {
      const std::uint64_t g = tail_->base_row + r;
      take_record(rec, g, tail_->tri_base, tail_->width, name, true);
      rec += record_bytes(g, tail_->tri_base, networks_,
                          static_cast<std::size_t>(tail_->width));
    }
  }
  if (matrix.size() != retained) {
    throw store_corrupt(
        "segment store: inconsistent — reconstructed " +
        std::to_string(matrix.size()) + " rows, manifest promised " +
        std::to_string(retained));
  }
  FENRIR_LOG(Debug)
          .field("rows", retained)
          .field("segments", sealed_.size())
          .field("zero_copy", zero_copy ? 1 : 0)
      << "segment store loaded";
  return out;
}

// --- verify -------------------------------------------------------------

bool SegmentStore::verify(std::string* error) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  try {
    std::uint64_t expect_base = base_row_;
    for (const SegmentInfo& s : sealed_) {
      const std::filesystem::path sp = segment_path(s.id);
      const std::string bytes = read_whole_file(sp);
      const std::string name = sp.filename().string();
      const SegmentHeader h = decode_segment_header(
          reinterpret_cast<const std::byte*>(bytes.data()), bytes.size(),
          name);
      if (bytes.size() != kSegmentHeaderBytes + h.payload_bytes +
                              kSegmentTrailerBytes ||
          (h.flags & kFlagSealed) == 0 || h.id != s.id ||
          h.base_row != s.base_row || h.rows != s.rows ||
          h.base_row != expect_base || h.payload_bytes != s.payload_bytes) {
        return fail("segment " + name +
                    ": header disagrees with the manifest");
      }
      const std::uint32_t crc = payload_checksum(
          bytes.data() + kSegmentHeaderBytes,
          static_cast<std::size_t>(h.payload_bytes));
      seg_metrics().checksum_verified.inc();
      if (crc != s.checksum) {
        return fail("segment " + name + ": checksum mismatch");
      }
      std::size_t off = 0;
      for (std::uint64_t r = 0; r < s.rows; ++r) {
        off += record_bytes(s.base_row + r, s.tri_base, networks_,
                            static_cast<std::size_t>(s.width));
      }
      if (off != h.payload_bytes) {
        return fail("segment " + name +
                    ": record sizes do not sum to the payload");
      }
      expect_base = s.base_row + s.rows;
    }
    if (tail_.has_value()) {
      const std::filesystem::path tp = tail_path(tail_->id);
      if (!std::filesystem::exists(tp)) {
        return fail("tail-" + std::to_string(tail_->id) + ": missing");
      }
      if (std::filesystem::file_size(tp) <
          kSegmentHeaderBytes + tail_->payload_bytes) {
        return fail("tail-" + std::to_string(tail_->id) + ": truncated");
      }
      if (tail_->base_row != expect_base) {
        return fail("tail-" + std::to_string(tail_->id) +
                    ": does not continue the sealed window");
      }
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  if (error != nullptr) error->clear();
  return true;
}

// --- compaction ---------------------------------------------------------

bool SegmentStore::find_compaction_run_locked(std::size_t& begin,
                                              std::size_t& count) const {
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  for (std::size_t i = 0; i < sealed_.size(); ++i) {
    if (sealed_[i].rows < cfg_.seal_rows) {
      if (run_len == 0) run_start = i;
      run_len += 1;
      if (run_len >= cfg_.compact_min_run) {
        // Extend to the end of the undersized run.
        std::size_t end = i + 1;
        while (end < sealed_.size() && sealed_[end].rows < cfg_.seal_rows) {
          end += 1;
        }
        begin = run_start;
        count = end - run_start;
        return true;
      }
    } else {
      run_len = 0;
    }
  }
  return false;
}

std::size_t SegmentStore::compact_run_locked(std::size_t begin,
                                             std::size_t count,
                                             std::uint64_t plan_base) {
  // Plan snapshot: sources are immutable sealed files, so the merge
  // itself needs no lock — compact_now() holds it anyway (simplicity
  // over concurrency for the synchronous path), the background thread
  // re-takes it only to commit.
  const std::vector<SegmentInfo> run(sealed_.begin() +
                                         static_cast<std::ptrdiff_t>(begin),
                                     sealed_.begin() +
                                         static_cast<std::ptrdiff_t>(
                                             begin + count));
  const std::uint64_t new_id = next_segment_id_++;

  std::uint64_t width = 1;
  std::uint64_t rows = 0;
  std::int64_t min_time = run.front().min_time;
  std::int64_t max_time = run.front().max_time;
  for (const SegmentInfo& s : run) {
    width = std::max(width, s.width);
    rows += s.rows;
    min_time = std::min(min_time, s.min_time);
    max_time = std::max(max_time, s.max_time);
  }

  // Read + checksum the sources on the shared pool (the sweep is pure
  // reads; parallel_for serializes safely against any main-thread use).
  std::vector<std::string> sources(run.size());
  std::vector<std::string> bad(run.size());
  core::parallel_for(
      run.size(),
      [&](std::size_t k) {
        const std::filesystem::path sp = segment_path(run[k].id);
        sources[k] = read_whole_file(sp);
        if (sources[k].size() < kSegmentHeaderBytes +
                                    run[k].payload_bytes +
                                    kSegmentTrailerBytes ||
            payload_checksum(sources[k].data() + kSegmentHeaderBytes,
                             static_cast<std::size_t>(
                                 run[k].payload_bytes)) != run[k].checksum) {
          bad[k] = sp.filename().string();
        }
        seg_metrics().checksum_verified.inc();
      },
      cfg_.threads, 1);
  for (const std::string& b : bad) {
    if (!b.empty()) {
      throw store_corrupt("segment " + b +
                          ": checksum mismatch — refusing to compact a "
                          "corrupt segment");
    }
  }

  // Re-encode every record at the merged width with tri_base advanced
  // to the store's current base — this is where retention's dead Φ
  // prefix actually leaves the disk.
  std::string payload;
  for (std::size_t k = 0; k < run.size(); ++k) {
    const SegmentInfo& s = run[k];
    const std::byte* rec =
        reinterpret_cast<const std::byte*>(sources[k].data()) +
        kSegmentHeaderBytes;
    for (std::uint64_t r = 0; r < s.rows; ++r) {
      const std::uint64_t g = s.base_row + r;
      const RecordView v =
          parse_record(rec, g, s.tri_base, networks_,
                       static_cast<std::size_t>(s.width));
      put_u64(payload, v.valid ? 1 : 0);
      put_i64(payload, v.time);
      put_u64(payload, v.anchor_of);
      put_u64(payload, v.row_hash);
      // Source packed bytes are little-endian on disk; re-emit them at
      // the merged width (byte-for-byte when widths already agree).
      if (s.width == width) {
        payload.append(reinterpret_cast<const char*>(v.packed),
                       pad8(networks_ * static_cast<std::size_t>(width)));
      } else {
        for (std::size_t n = 0; n < networks_; ++n) {
          std::uint32_t val = 0;
          for (std::size_t b = 0; b < s.width; ++b) {
            val |= static_cast<std::uint32_t>(std::to_integer<unsigned>(
                       v.packed[n * s.width + b]))
                   << (8 * b);
          }
          for (std::size_t b = 0; b < width; ++b) {
            payload.push_back(
                static_cast<char>((val >> (8 * b)) & 0xFFu));
          }
        }
        payload.append(pad8(networks_ * static_cast<std::size_t>(width)) -
                           networks_ * static_cast<std::size_t>(width),
                       '\0');
      }
      const std::size_t skip =
          static_cast<std::size_t>(plan_base - s.tri_base);
      payload.append(
          reinterpret_cast<const char*>(v.phi_bytes + 8 * skip),
          8 * (v.phi_count - skip));
      rec += record_bytes(g, s.tri_base, networks_,
                          static_cast<std::size_t>(s.width));
    }
  }

  const std::uint32_t crc = payload_checksum(payload.data(), payload.size());
  const std::filesystem::path cp =
      dir_ / ("cmp-" + std::to_string(new_id) + ".fenrseg");
  const int fd = open_or_throw(cp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  try {
    const std::string header = encode_segment_header(
        kFlagSealed, new_id, run.front().base_row, rows, networks_, width,
        plan_base, payload.size(), min_time, max_time);
    pwrite_all(fd, header.data(), header.size(), 0, cp);
    pwrite_all(fd, payload.data(), payload.size(),
               static_cast<off_t>(kSegmentHeaderBytes), cp);
    std::string trailer;
    put_u32(trailer, crc);
    put_u32(trailer, 0);
    trailer.append(kSegmentTrailerMagic, sizeof(kSegmentTrailerMagic));
    pwrite_all(fd, trailer.data(), trailer.size(),
               static_cast<off_t>(kSegmentHeaderBytes + payload.size()), cp);
    fsync_or_throw(fd, cp);
  } catch (...) {
    ::close(fd);
    ::unlink(cp.c_str());
    throw;
  }
  ::close(fd);
  const std::filesystem::path sp = segment_path(new_id);
  if (::rename(cp.c_str(), sp.c_str()) != 0) {
    const int err = errno;
    ::unlink(cp.c_str());
    throw DatasetIoError("cannot rename " + cp.string() + " over " +
                         sp.string() + ": " + std::strerror(err));
  }
  fsync_dir(dir_);
  chaos::maybe_kill_at("segment_compact_rename");

  // Commit: swap the run for the merged segment, manifest first, then
  // unlink the sources.
  SegmentInfo merged;
  merged.id = new_id;
  merged.base_row = run.front().base_row;
  merged.rows = rows;
  merged.tri_base = plan_base;
  merged.width = width;
  merged.payload_bytes = payload.size();
  merged.checksum = crc;
  merged.min_time = min_time;
  merged.max_time = max_time;
  sealed_.erase(sealed_.begin() + static_cast<std::ptrdiff_t>(begin),
                sealed_.begin() + static_cast<std::ptrdiff_t>(begin + count));
  sealed_.insert(sealed_.begin() + static_cast<std::ptrdiff_t>(begin),
                 merged);
  write_manifest_locked();
  for (const SegmentInfo& s : run) {
    std::error_code ec;
    std::filesystem::remove(segment_path(s.id), ec);
  }
  seg_metrics().compacted.inc(count);
  obs::event_bus().emit(obs::Severity::kInfo, "compaction_done",
                        "\"merged\":" + std::to_string(count) +
                            ",\"id\":" + std::to_string(new_id) +
                            ",\"rows\":" + std::to_string(rows));
  publish_status_locked();
  return count;
}

std::size_t SegmentStore::compact_now() {
  if (compactor_.joinable()) compactor_.join();
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::size_t begin = 0;
  std::size_t count = 0;
  if (!find_compaction_run_locked(begin, count)) return 0;
  return compact_run_locked(begin, count, base_row_);
}

void SegmentStore::maybe_start_compaction_locked() {
  if (!cfg_.background_compaction || compaction_running_) return;
  std::size_t begin = 0;
  std::size_t count = 0;
  if (!find_compaction_run_locked(begin, count)) return;
  const std::vector<SegmentInfo> plan(
      sealed_.begin() + static_cast<std::ptrdiff_t>(begin),
      sealed_.begin() + static_cast<std::ptrdiff_t>(begin + count));
  const std::uint64_t plan_base = base_row_;
  compaction_running_ = true;
  if (compactor_.joinable()) compactor_.join();
  compactor_ = std::thread([this, plan, plan_base] {
    try {
      std::lock_guard<std::mutex> lock(state_mutex_);
      // Revalidate under the lock: retention or another pass may have
      // moved the ground while this thread was being scheduled.
      std::size_t begin2 = sealed_.size();
      for (std::size_t i = 0; i < sealed_.size(); ++i) {
        if (sealed_[i].id == plan.front().id) {
          begin2 = i;
          break;
        }
      }
      bool ok = plan_base == base_row_ &&
                begin2 + plan.size() <= sealed_.size();
      for (std::size_t k = 0; ok && k < plan.size(); ++k) {
        ok = sealed_[begin2 + k].id == plan[k].id;
      }
      if (ok) compact_run_locked(begin2, plan.size(), plan_base);
    } catch (const std::exception& e) {
      FENRIR_LOG(Warn).field("error", e.what())
          << "background compaction failed";
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    compaction_running_ = false;
  });
}

// --- import -------------------------------------------------------------

void SegmentStore::import_snapshot(const Snapshot& snapshot,
                                   const std::filesystem::path& dir,
                                   const SegmentStoreConfig& cfg) {
  if (!snapshot.matrix.has_value()) {
    throw DatasetIoError(
        "segment import: the snapshot carries no matrix — nothing to "
        "convert");
  }
  if (looks_like_store(dir)) {
    throw DatasetIoError("segment import: " + dir.string() +
                         " already holds a segment store — refusing to "
                         "import over it");
  }
  const core::SimilarityMatrix& m = *snapshot.matrix;
  if (snapshot.processed != m.size()) {
    throw DatasetIoError(
        "segment import: the snapshot's processed count disagrees with "
        "its matrix");
  }
  SegmentStoreConfig import_cfg = cfg;
  import_cfg.background_compaction = false;
  SegmentStore store(dir, import_cfg);
  store.configure(m.policy(), m.weights());
  store.set_legacy_identity(snapshot.prefix_hash);
  store.set_modebook_state(snapshot.has_modebook, snapshot.representatives,
                           snapshot.history);
  const std::size_t networks = SegmentCodec::networks(m);
  const std::size_t width = SegmentCodec::packed_width(m);
  for (std::size_t i = 0; i < m.size(); ++i) {
    const std::uint64_t base = store.base_row_;  // no lock: single-threaded
    const std::size_t local_anchor = SegmentCodec::anchor_of(m, i);
    const std::uint64_t anchor =
        local_anchor == core::SimilarityMatrix::kNoAnchorRow
            ? kNoAnchor
            : static_cast<std::uint64_t>(local_anchor);
    store.append_raw(m.valid(i), 0, anchor, 0, networks, width,
                     {SegmentCodec::packed_row(m, i), networks * width},
                     {SegmentCodec::phi_row(m, i) + base,
                      i + 1 - static_cast<std::size_t>(base)});
    // Bound the pending buffer; flush also seals full tails, so an
    // import rotates at cfg.seal_rows just like a live watch would.
    if ((i + 1) % std::max<std::size_t>(1, std::min<std::size_t>(
                                               1024, cfg.seal_rows)) ==
        0) {
      store.flush();
    }
  }
  store.seal_active();
}

}  // namespace fenrir::io
