#include "io/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "chaos/killpoint.h"
#include "core/time.h"
#include "io/csv.h"
#include "io/wire.h"
#include "obs/events.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/status_board.h"

namespace fenrir::io {

namespace {

using core::DatasetIoError;
using wire::fnv_init;
using wire::fnv_mix;
using wire::fnv_mix_u64;
using wire::patch_u64;
using wire::payload_checksum;
using wire::put_u32;
using wire::put_u64;
using wire::put_u64_array;
using wire::put_u8;
using wire::Reader;

struct SnapMetrics {
  obs::Counter& save_total;
  obs::Counter& save_bytes;
  obs::Gauge& save_seconds;
  obs::Counter& load_total;
  obs::Counter& load_bytes;
  obs::Gauge& load_seconds;
  obs::Counter& corrupt;
};

SnapMetrics& snap_metrics() {
  static SnapMetrics m{
      obs::registry().counter("fenrir_snapshot_save_total",
                              "snapshot / watch-state files written"),
      obs::registry().counter("fenrir_snapshot_save_bytes_total",
                              "bytes written to snapshot files"),
      obs::registry().gauge("fenrir_snapshot_save_seconds",
                            "wall time of the last snapshot save"),
      obs::registry().counter("fenrir_snapshot_load_total",
                              "snapshot / watch-state files loaded"),
      obs::registry().counter("fenrir_snapshot_load_bytes_total",
                              "bytes read from snapshot files"),
      obs::registry().gauge("fenrir_snapshot_load_seconds",
                            "wall time of the last snapshot load"),
      obs::registry().counter(
          "fenrir_snapshot_corrupt_total",
          "snapshot loads rejected as corrupt, truncated, or version-skewed")};
  return m;
}

void publish_snapshot_fragment(const char* op,
                               const std::filesystem::path& path,
                               std::size_t bytes, double seconds,
                               const Snapshot& snapshot) {
  std::ostringstream os;
  os << "{\"last_op\":\"" << op << "\",\"path\":\""
     << obs::json_escape(path.string()) << "\",\"bytes\":" << bytes
     << ",\"seconds\":" << obs::render_double(seconds)
     << ",\"processed\":" << snapshot.processed << ",\"has_matrix\":"
     << (snapshot.matrix.has_value() ? "true" : "false")
     << ",\"modes\":" << snapshot.representatives.size() << "}";
  obs::status_board().publish("snapshot", os.str());
  obs::event_bus().emit(
      obs::Severity::kDebug,
      std::string_view(op) == "save" ? "snapshot_saved" : "snapshot_loaded",
      "\"path\":\"" + obs::json_escape(path.string()) +
          "\",\"bytes\":" + std::to_string(bytes) +
          ",\"processed\":" + std::to_string(snapshot.processed));
}

}  // namespace

// SnapshotCodec is the single friend of SimilarityMatrix and
// PackedSeries: it moves their private state to and from the wire
// without widening either class's public API.
class SnapshotCodec {
 public:
  static void encode_matrix(std::string& out,
                            const core::SimilarityMatrix& m) {
    const std::size_t n = m.n_;
    put_u64(out, n);
    put_u64(out, m.packed_.networks_);
    put_u64(out, m.packed_.width_);
    put_u64(out, m.weights_.size());
    put_u64_array(out, m.weights_.data(), m.weights_.size());
    for (const char v : m.valid_) put_u8(out, v ? 1 : 0);
    // A matrix resumed from a segment store may hold its oldest rows as
    // borrowed pages — write those row by row, then the owned rest in
    // one append. A fully-owned matrix takes only the bulk append.
    const std::size_t stride = m.packed_.networks_ * m.packed_.width_;
    for (const std::byte* row : m.packed_.mapped_) {
      out.append(reinterpret_cast<const char*>(row), stride);
    }
    out.append(reinterpret_cast<const char*>(m.packed_.data_.data()),
               m.packed_.data_.size());
    const std::size_t value_count = n * (n + 1) / 2;
    put_u64(out, value_count);
    for (std::size_t r = 0; r < m.values_.mapped_rows(); ++r) {
      put_u64_array(out, m.values_.row(r), r + 1);
    }
    put_u64_array(out, m.values_.owned_data(), m.values_.owned_count());
    static_assert(sizeof(core::MatchCounts) == 16,
                  "MatchCounts must stay two packed u64s — the snapshot "
                  "codec writes anchor counts as a flat word array");
    const auto encode_anchors = [&](const auto& anchors) {
      put_u64(out, anchors.size());
      for (const auto& a : anchors) {
        put_u64(out, a.row);
        put_u64(out, a.est_delta);
        put_u64(out, a.last_used);
        put_u64_array(out, a.counts.data(), a.counts.size() * 2);
      }
    };
    encode_anchors(m.recent_);
    encode_anchors(m.representatives_);
    put_u64(out, m.append_clock_);
    put_u64(out, m.probe_cooldown_);
    put_u64(out, m.probe_failures_);
  }

  static core::SimilarityMatrix decode_matrix(Reader& r,
                                              core::UnknownPolicy policy,
                                              unsigned threads) {
    const std::size_t n = r.get_count(1);
    const std::size_t networks = static_cast<std::size_t>(r.get_u64());
    const std::size_t width = static_cast<std::size_t>(r.get_u64());
    if (width != 1 && width != 2 && width != 4) {
      throw DatasetIoError(
          "snapshot: inconsistent matrix section — packed width " +
          std::to_string(width) + " is not 1, 2, or 4");
    }
    const std::size_t weight_count = r.get_count(8);
    std::vector<double> weights(weight_count);
    r.get_u64_array(weights.data(), weight_count);

    core::SimilarityMatrix m(policy, std::move(weights), threads);
    m.n_ = n;
    m.valid_.resize(n);
    for (char& v : m.valid_) v = r.get_u8() ? 1 : 0;
    if (n > 0 && networks > 0 && width > 0 &&
        n > (r.size - r.off) / networks / width) {
      throw DatasetIoError(
          "snapshot: malformed section — a count exceeds the recorded "
          "payload");
    }
    m.packed_.networks_ = networks;
    m.packed_.rows_ = n;
    m.packed_.width_ = width;
    m.packed_.data_.resize(n * networks * width);
    r.get_bytes(m.packed_.data_.data(), m.packed_.data_.size());
    const std::size_t value_count = r.get_count(8);
    if (value_count != n * (n + 1) / 2) {
      throw DatasetIoError(
          "snapshot: inconsistent matrix section — " +
          std::to_string(value_count) + " phi values for " +
          std::to_string(n) + " observations (expected n(n+1)/2)");
    }
    m.values_.assign_owned(n);
    r.get_u64_array(m.values_.owned_data(), value_count);
    const auto decode_anchors = [&](auto& anchors) {
      const std::size_t count = r.get_count(24 + 16 * n);
      for (std::size_t k = 0; k < count; ++k) {
        core::SimilarityMatrix::AnchorRow a;
        a.row = static_cast<std::size_t>(r.get_u64());
        if (a.row >= n) {
          throw DatasetIoError(
              "snapshot: inconsistent matrix section — anchor row " +
              std::to_string(a.row) + " out of range");
        }
        a.est_delta = static_cast<std::size_t>(r.get_u64());
        a.last_used = r.get_u64();
        a.counts.resize(n);
        r.get_u64_array(a.counts.data(), n * 2);
        anchors.push_back(std::move(a));
      }
    };
    decode_anchors(m.recent_);
    decode_anchors(m.representatives_);
    m.append_clock_ = r.get_u64();
    m.probe_cooldown_ = static_cast<std::size_t>(r.get_u64());
    m.probe_failures_ = static_cast<std::size_t>(r.get_u64());
    return m;
  }
};

std::uint64_t dataset_prefix_hash(const core::Dataset& dataset,
                                  std::size_t rows) {
  if (rows > dataset.series.size()) {
    throw std::invalid_argument(
        "dataset_prefix_hash: prefix longer than the dataset");
  }
  std::uint64_t h = fnv_init();
  fnv_mix_u64(h, dataset.networks.size());
  for (core::NetId id = 0; id < dataset.networks.size(); ++id) {
    fnv_mix_u64(h, dataset.networks.key(id));
  }
  core::SiteId max_site = core::kOtherSite;  // the reserved ids always exist
  fnv_mix_u64(h, rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const core::RoutingVector& v = dataset.series[r];
    fnv_mix_u64(h, static_cast<std::uint64_t>(v.time));
    fnv_mix_u64(h, v.valid ? 1 : 0);
    fnv_mix_u64(h, v.assignment.size());
    for (const core::SiteId s : v.assignment) {
      fnv_mix_u64(h, s);
      max_site = std::max(max_site, s);
    }
  }
  // The intern order over a prefix is fixed by the prefix, so hashing
  // the names behind every referenced id ties the ids above to labels.
  fnv_mix_u64(h, static_cast<std::uint64_t>(max_site) + 1);
  for (core::SiteId s = 0; s <= max_site; ++s) {
    const std::string& name = dataset.sites.name(s);
    fnv_mix_u64(h, name.size());
    fnv_mix(h, name.data(), name.size());
  }
  fnv_mix_u64(h, dataset.weights.size());
  for (const double w : dataset.weights) {
    std::uint64_t bits;
    std::memcpy(&bits, &w, sizeof(bits));
    fnv_mix_u64(h, bits);
  }
  return h;
}

std::string encode_snapshot(const Snapshot& snapshot) {
  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_u32(out, kSnapshotVersion);
  const std::size_t length_at = out.size();
  put_u64(out, 0);  // total length, patched below
  put_u64(out, snapshot.prefix_hash);
  put_u64(out, snapshot.processed);
  put_u8(out, snapshot.matrix.has_value() ? 1 : 0);
  put_u8(out, snapshot.has_modebook ? 1 : 0);
  put_u8(out, snapshot.matrix.has_value() &&
                      snapshot.matrix->policy() ==
                          core::UnknownPolicy::kKnownOnly
                  ? 1
                  : 0);
  put_u8(out, 0);
  if (snapshot.matrix.has_value()) {
    SnapshotCodec::encode_matrix(out, *snapshot.matrix);
  }
  if (snapshot.has_modebook) {
    put_u64(out, snapshot.representatives.size());
    for (const core::RoutingVector& rep : snapshot.representatives) {
      put_u64(out, static_cast<std::uint64_t>(rep.time));
      put_u8(out, rep.valid ? 1 : 0);
      put_u64(out, rep.assignment.size());
      for (const core::SiteId s : rep.assignment) put_u32(out, s);
    }
    put_u64(out, snapshot.history.size());
    for (const std::size_t m : snapshot.history) put_u64(out, m);
  }
  patch_u64(out, length_at, out.size() + 4);  // the CRC trailer follows
  put_u32(out, payload_checksum(out.data(), out.size()));
  return out;
}

Snapshot decode_snapshot(std::string_view bytes, unsigned threads) {
  const auto corrupt = [](const std::string& what) -> DatasetIoError {
    snap_metrics().corrupt.inc();
    // Alert severity: a corrupt resume artifact means hours of watch
    // state are gone — the one event an operator must not miss.
    obs::event_bus().emit(obs::Severity::kAlert, "snapshot_corrupt",
                          "\"error\":\"" + obs::json_escape(what) + "\"");
    return DatasetIoError(what);
  };
  if (bytes.size() < sizeof(kSnapshotMagic) ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    throw corrupt(
        "snapshot: bad magic — not a fenrir snapshot file (expected it to "
        "start with FENRSNAP)");
  }
  if (bytes.size() < 12) {
    throw corrupt(
        "snapshot: truncated — the file ends inside the header; re-create "
        "it from the dataset");
  }
  Reader header{reinterpret_cast<const unsigned char*>(bytes.data()),
                bytes.size(), sizeof(kSnapshotMagic)};
  const std::uint32_t version = header.get_u32();
  if (version != kSnapshotVersion) {
    throw corrupt("snapshot: version skew — file is v" +
                  std::to_string(version) + " but this build reads v" +
                  std::to_string(kSnapshotVersion) +
                  "; re-create the snapshot with this binary");
  }
  if (bytes.size() < 20) {
    throw corrupt(
        "snapshot: truncated — the file ends inside the header; re-create "
        "it from the dataset");
  }
  const std::uint64_t recorded = header.get_u64();
  if (recorded > bytes.size()) {
    throw corrupt("snapshot: truncated — the file holds " +
                  std::to_string(bytes.size()) + " of a recorded " +
                  std::to_string(recorded) +
                  " bytes; the tail is missing (interrupted copy or "
                  "save?)");
  }
  if (recorded < bytes.size()) {
    throw corrupt("snapshot: " + std::to_string(bytes.size() - recorded) +
                  " trailing bytes after the recorded length — the file "
                  "was appended to or mixed with another; re-create it");
  }
  if (recorded < 44) {  // header + flags + CRC: the smallest valid file
    throw corrupt(
        "snapshot: malformed header — recorded length is smaller than the "
        "fixed header");
  }
  const std::uint32_t stored_crc =
      Reader{reinterpret_cast<const unsigned char*>(bytes.data()),
             bytes.size(), bytes.size() - 4}
          .get_u32();
  const std::uint32_t computed_crc = payload_checksum(bytes.data(), bytes.size() - 4);
  if (stored_crc != computed_crc) {
    std::ostringstream os;
    os << "snapshot: checksum mismatch (stored " << std::hex << stored_crc
       << ", computed " << computed_crc
       << ") — the file is corrupt; re-create it from the dataset";
    throw corrupt(os.str());
  }

  Reader r{reinterpret_cast<const unsigned char*>(bytes.data()),
           bytes.size() - 4, 20};
  Snapshot snapshot;
  try {
    snapshot.prefix_hash = r.get_u64();
    snapshot.processed = static_cast<std::size_t>(r.get_u64());
    const bool has_matrix = r.get_u8() != 0;
    snapshot.has_modebook = r.get_u8() != 0;
    const core::UnknownPolicy policy = r.get_u8() != 0
                                           ? core::UnknownPolicy::kKnownOnly
                                           : core::UnknownPolicy::kPessimistic;
    r.get_u8();  // reserved
    if (has_matrix) {
      snapshot.matrix = SnapshotCodec::decode_matrix(r, policy, threads);
    }
    if (snapshot.has_modebook) {
      const std::size_t modes = r.get_count(17);
      snapshot.representatives.reserve(modes);
      for (std::size_t m = 0; m < modes; ++m) {
        core::RoutingVector rep;
        rep.time = static_cast<core::TimePoint>(r.get_i64());
        rep.valid = r.get_u8() != 0;
        rep.assignment.resize(r.get_count(4));
        for (core::SiteId& s : rep.assignment) s = r.get_u32();
        snapshot.representatives.push_back(std::move(rep));
      }
      snapshot.history.resize(r.get_count(8));
      for (std::size_t& m : snapshot.history) {
        m = static_cast<std::size_t>(r.get_u64());
        if (m >= snapshot.representatives.size()) {
          throw DatasetIoError(
              "snapshot: inconsistent modebook section — history names "
              "mode " +
              std::to_string(m) + " of " +
              std::to_string(snapshot.representatives.size()));
        }
      }
    }
    if (r.off != r.size) {
      throw DatasetIoError(
          "snapshot: malformed section — " +
          std::to_string(r.size - r.off) +
          " undeclared bytes between the sections and the checksum");
    }
  } catch (const DatasetIoError& e) {
    snap_metrics().corrupt.inc();
    obs::event_bus().emit(obs::Severity::kAlert, "snapshot_corrupt",
                          "\"error\":\"" + obs::json_escape(e.what()) + "\"");
    throw;
  }
  if (snapshot.matrix.has_value() &&
      snapshot.matrix->size() != snapshot.processed) {
    snap_metrics().corrupt.inc();
    obs::event_bus().emit(
        obs::Severity::kAlert, "snapshot_corrupt",
        "\"error\":\"inconsistent header: matrix rows vs processed\"");
    throw DatasetIoError(
        "snapshot: inconsistent header — the matrix holds " +
        std::to_string(snapshot.matrix->size()) + " rows but " +
        std::to_string(snapshot.processed) + " observations are recorded");
  }
  return snapshot;
}

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes) {
  const std::filesystem::path dir =
      path.has_parent_path() ? path.parent_path() : ".";
  const std::string tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  const auto fail = [&](const std::string& stage, int fd) -> DatasetIoError {
    const int err = errno;
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    return DatasetIoError("cannot " + stage + " " + tmp + ": " +
                          std::strerror(err));
  };
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw fail("create", -1);
  chaos::maybe_kill_during_save(0);  // a 0-byte schedule kills before data
  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::size_t chunk = std::min<std::size_t>(4096, bytes.size() - off);
    const ssize_t wrote = ::write(fd, bytes.data() + off, chunk);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw fail("write", fd);
    }
    off += static_cast<std::size_t>(wrote);
    chaos::maybe_kill_during_save(off);
  }
  if (::fsync(fd) != 0) throw fail("fsync", fd);
  if (::close(fd) != 0) throw fail("close", -1);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw DatasetIoError("cannot rename " + tmp + " over " + path.string() +
                         ": " + std::strerror(err));
  }
  // Make the rename durable: fsync the directory entry. Best-effort —
  // some filesystems refuse O_RDONLY directory fds.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void save_snapshot_file(const std::filesystem::path& path,
                        const Snapshot& snapshot) {
  const auto start = std::chrono::steady_clock::now();
  const std::string bytes = encode_snapshot(snapshot);
  atomic_write_file(path, bytes);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  SnapMetrics& m = snap_metrics();
  m.save_total.inc();
  m.save_bytes.inc(bytes.size());
  m.save_seconds.set(seconds);
  publish_snapshot_fragment("save", path, bytes.size(), seconds, snapshot);
  FENRIR_LOG(Debug).field("path", path.string()).field("bytes", bytes.size())
      << "snapshot saved";
}

Snapshot load_snapshot_file(const std::filesystem::path& path,
                            unsigned threads) {
  const auto start = std::chrono::steady_clock::now();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw DatasetIoError("cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw DatasetIoError("cannot read " + path.string());
  }
  const std::string bytes = std::move(buffer).str();
  Snapshot snapshot = decode_snapshot(bytes, threads);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  SnapMetrics& m = snap_metrics();
  m.load_total.inc();
  m.load_bytes.inc(bytes.size());
  m.load_seconds.set(seconds);
  publish_snapshot_fragment("load", path, bytes.size(), seconds, snapshot);
  FENRIR_LOG(Debug).field("path", path.string()).field("bytes", bytes.size())
      << "snapshot loaded";
  return snapshot;
}

// --- watch state ---------------------------------------------------------

namespace {

constexpr const char* kWatchStateMagic = "#fenrir-watchstate";
constexpr const char* kWatchStateVersion = "v1";

core::TimePoint parse_time_or_throw(const std::string& text) {
  const auto t = core::parse_time(text);
  if (!t) {
    throw DatasetIoError("watch state: cannot parse time '" + text + "'");
  }
  return *t;
}

/// The legacy CSV reader, verbatim semantics from the v1 fenrirctl:
/// site names re-intern, so the state survives dataset growth without a
/// hash. Returns a matrix-less Snapshot; the caller rebuilds the matrix
/// and the next save writes v2.
Snapshot load_watch_state_v1(core::Dataset& data, const std::string& text,
                             const std::filesystem::path& path) {
  const auto rows = parse_csv(text);
  if (rows.size() < 3 || rows[0].size() < 2 ||
      rows[0][0] != kWatchStateMagic) {
    throw DatasetIoError("not a watch state file (bad magic): " +
                         path.string());
  }
  if (rows[0][1] != kWatchStateVersion) {
    throw DatasetIoError("unsupported watch state version " + rows[0][1]);
  }
  if (rows[1].size() != 2 || rows[1][0] != "processed") {
    throw DatasetIoError("watch state: malformed processed row");
  }
  Snapshot snapshot;
  snapshot.processed = std::stoul(rows[1][1]);
  snapshot.has_modebook = true;
  if (rows[2].empty() || rows[2][0] != "history") {
    throw DatasetIoError("watch state: malformed history row");
  }
  for (std::size_t i = 1; i < rows[2].size(); ++i) {
    snapshot.history.push_back(std::stoul(rows[2][i]));
  }
  for (std::size_t r = 3; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() < 2 || row[0] != "mode") {
      throw DatasetIoError("watch state: malformed mode row");
    }
    if (row.size() - 2 != data.networks.size()) {
      throw DatasetIoError(
          "watch state disagrees with the dataset: representative has " +
          std::to_string(row.size() - 2) + " networks, dataset has " +
          std::to_string(data.networks.size()));
    }
    core::RoutingVector rep;
    rep.time = parse_time_or_throw(row[1]);
    rep.assignment.reserve(row.size() - 2);
    for (std::size_t i = 2; i < row.size(); ++i) {
      rep.assignment.push_back(data.sites.intern(row[i]));
    }
    snapshot.representatives.push_back(std::move(rep));
  }
  return snapshot;
}

}  // namespace

Snapshot load_watch_state(core::Dataset& dataset,
                          const std::filesystem::path& path,
                          unsigned threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DatasetIoError("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = std::move(buffer).str();
  Snapshot snapshot;
  if (bytes.size() >= sizeof(kSnapshotMagic) &&
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) ==
          0) {
    const auto start = std::chrono::steady_clock::now();
    snapshot = decode_snapshot(bytes, threads);
    if (snapshot.processed > dataset.series.size()) {
      throw DatasetIoError(
          "watch state is ahead of the dataset (" +
          std::to_string(snapshot.processed) + " processed, " +
          std::to_string(dataset.series.size()) +
          " observations on disk) — did the dataset shrink?");
    }
    const std::uint64_t expected =
        dataset_prefix_hash(dataset, snapshot.processed);
    if (expected != snapshot.prefix_hash) {
      throw DatasetIoError(
          "watch state disagrees with the dataset: the first " +
          std::to_string(snapshot.processed) +
          " observations are not the ones this state was saved from "
          "(prefix hash mismatch) — delete the state file to start over");
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    SnapMetrics& m = snap_metrics();
    m.load_total.inc();
    m.load_bytes.inc(bytes.size());
    m.load_seconds.set(seconds);
    publish_snapshot_fragment("load", path, bytes.size(), seconds, snapshot);
  } else {
    snapshot = load_watch_state_v1(dataset, bytes, path);
    if (snapshot.processed > dataset.series.size()) {
      throw DatasetIoError(
          "watch state is ahead of the dataset (" +
          std::to_string(snapshot.processed) + " processed, " +
          std::to_string(dataset.series.size()) +
          " observations on disk) — did the dataset shrink?");
    }
  }
  return snapshot;
}

void save_watch_state(const core::Dataset& dataset,
                      const core::ModeBook& book, std::size_t processed,
                      const core::SimilarityMatrix* matrix,
                      const std::filesystem::path& path) {
  Snapshot snapshot;
  snapshot.processed = processed;
  snapshot.prefix_hash = dataset_prefix_hash(dataset, processed);
  snapshot.has_modebook = true;
  snapshot.representatives.reserve(book.mode_count());
  for (std::size_t m = 0; m < book.mode_count(); ++m) {
    snapshot.representatives.push_back(book.representative(m));
  }
  snapshot.history = book.history();
  if (matrix != nullptr) snapshot.matrix = *matrix;  // copy: caller keeps it
  save_snapshot_file(path, snapshot);
}

void save_watch_state_v1(const core::Dataset& dataset,
                         const core::ModeBook& book, std::size_t processed,
                         const std::filesystem::path& path) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(kWatchStateMagic, kWatchStateVersion);
  csv.row("processed", processed);
  {
    std::vector<std::string> row{"history"};
    for (const std::size_t m : book.history()) {
      row.push_back(std::to_string(m));
    }
    csv.write_row(row);
  }
  for (std::size_t m = 0; m < book.mode_count(); ++m) {
    const core::RoutingVector& rep = book.representative(m);
    std::vector<std::string> row{"mode", core::format_time(rep.time)};
    row.reserve(rep.assignment.size() + 2);
    for (const core::SiteId s : rep.assignment) {
      row.push_back(dataset.sites.name(s));
    }
    csv.write_row(row);
  }
  atomic_write_file(path, out.str());
}

}  // namespace fenrir::io
