// fenrir::io — shared little-endian wire primitives.
//
// The FENRSNAP snapshot (io/snapshot.h) and the FENRSEG1 segment store
// (io/segment_store.h) speak the same byte dialect: integers
// little-endian, doubles as IEEE-754 bit patterns in a u64, bulk word
// arrays appended in one memcpy on little-endian hosts, and the same
// 4-lane multiply–rotate payload checksum. This header is that dialect,
// hoisted out of snapshot.cc's anonymous namespace so both formats stay
// byte-compatible by construction instead of by copy.
//
// Everything here is header-only and allocation-free except the
// std::string appends the put_* writers perform.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "core/dataset_io.h"

namespace fenrir::io::wire {

// Trailer checksum: four independent multiply–rotate lanes over 64-bit
// words, folded to 32 bits. The target is bit rot and truncation, not
// adversarial collisions, and resuming a long watch decodes tens of
// megabytes — a table-driven CRC at a few hundred MB/s would cost more
// than the rest of the decode combined, while the four lanes keep the
// multiplier latency off the critical path and run at memory speed.
inline std::uint32_t payload_checksum(const void* data, std::size_t size) {
  constexpr std::uint64_t kC1 = 0x9E3779B97F4A7C15ull;
  constexpr std::uint64_t kC2 = 0xD6E8FEB86659FD93ull;
  const auto mix = [](std::uint64_t h, std::uint64_t w) {
    h ^= w * kC2;
    h = (h << 27) | (h >> 37);
    return h * kC1;
  };
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h[4] = {kC1, kC2, kC1 ^ 0x5555555555555555ull,
                        kC2 ^ 0x3333333333333333ull};
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    std::uint64_t w[4];
    std::memcpy(w, p + i, 32);
    h[0] = mix(h[0], w[0]);
    h[1] = mix(h[1], w[1]);
    h[2] = mix(h[2], w[2]);
    h[3] = mix(h[3], w[3]);
  }
  std::uint64_t tail = 0;
  for (int k = 0; i < size; ++i, ++k) {
    tail |= static_cast<std::uint64_t>(p[i]) << (8 * k);
  }
  h[0] = mix(h[0], tail);
  std::uint64_t out = mix(mix(mix(h[0], h[1]), h[2]), h[3]) ^
                      static_cast<std::uint64_t>(size);
  out ^= out >> 32;
  return static_cast<std::uint32_t>(out);
}

// --- little-endian primitives -------------------------------------------

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_double(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

// Bulk little-endian append of @p count 8-byte words. The big sections
// (Φ values, anchor counts) are tens of megabytes on a long watch; a
// per-element put_u64 would dominate the save. On a little-endian host
// this is one append; the byte loop is the big-endian fallback.
inline void put_u64_array(std::string& out, const void* words,
                          std::size_t count) {
  if constexpr (std::endian::native == std::endian::little) {
    out.append(static_cast<const char*>(words), count * 8);
  } else {
    const auto* p = static_cast<const std::uint64_t*>(words);
    for (std::size_t i = 0; i < count; ++i) put_u64(out, p[i]);
  }
}

inline void patch_u64(std::string& out, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
}

inline void patch_u32(std::string& out, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
}

/// Bounds-checked reads over a validated payload. The length and CRC
/// checks run first, so an overrun here means internal inconsistency
/// (crafted or miswritten sections), not bit rot. @p what prefixes the
/// diagnostics so a snapshot failure and a segment failure stay
/// distinguishable ("snapshot: malformed section — ...").
struct Reader {
  const unsigned char* p;
  std::size_t size;
  std::size_t off = 0;
  const char* what = "snapshot";

  void need(std::size_t k) const {
    if (size - off < k) {
      throw core::DatasetIoError(
          std::string(what) +
          ": malformed section — a field extends past the recorded "
          "payload");
    }
  }
  std::uint8_t get_u8() {
    need(1);
    return p[off++];
  }
  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[off + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    off += 4;
    return v;
  }
  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[off + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    off += 8;
    return v;
  }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_double() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// A u64 count that is about to size a container: cap it by what the
  /// remaining payload could possibly hold for @p element_bytes-sized
  /// elements, so a crafted count cannot drive a huge allocation.
  std::size_t get_count(std::size_t element_bytes) {
    const std::uint64_t v = get_u64();
    if (element_bytes > 0 && v > (size - off) / element_bytes) {
      throw core::DatasetIoError(
          std::string(what) +
          ": malformed section — a count exceeds the recorded "
          "payload");
    }
    return static_cast<std::size_t>(v);
  }
  void get_bytes(void* dst, std::size_t k) {
    need(k);
    std::memcpy(dst, p + off, k);
    off += k;
  }
  /// Bulk read of @p count little-endian 8-byte words — the decode-side
  /// twin of put_u64_array, one memcpy on little-endian hosts.
  void get_u64_array(void* dst, std::size_t count) {
    if constexpr (std::endian::native == std::endian::little) {
      get_bytes(dst, count * 8);
    } else {
      auto* out = static_cast<std::uint64_t*>(dst);
      for (std::size_t i = 0; i < count; ++i) out[i] = get_u64();
    }
  }
};

// --- FNV-1a 64, the identity-hash primitive ------------------------------

inline std::uint64_t fnv_init() { return 1469598103934665603ULL; }

inline void fnv_mix(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
}

inline void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) {
  fnv_mix(h, &v, 8);
}

}  // namespace fenrir::io::wire
