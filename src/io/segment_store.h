// fenrir::io — FENRSEG1: a segmented, spill-as-you-go history store.
//
// The FENRSNAP snapshot re-encodes and rewrites the entire Φ stack on
// every save: O(history) bytes per interval, however little changed.
// The segment store replaces that with an append-only directory of
// immutable *sealed* segments plus one *active tail* segment:
//
//   <dir>/MANIFEST            crash-atomic index (tmp + rename)
//   <dir>/seg-<id>.fenrseg    sealed, self-checksummed, mmap-adopted
//   <dir>/tail-<id>.fenrseg   active tail, appended in place
//
// Each observation is spilled as one self-contained record — validity,
// time, anchor lineage, identity hash, the packed assignment row, and
// the row's Φ values — so a save interval writes O(new rows) bytes and
// one manifest, never the history. When the tail reaches
// `seal_rows` records it is sealed (checksum computed once, trailer
// written, renamed seg-<id>) and a fresh tail starts.
//
// Resume mmaps the sealed segments and *adopts* their pages directly
// into PackedSeries / TriangleStore storage (SimilarityMatrix::
// adopt_rows) — warm-start cost is flat in history length. The
// per-element copy fallback (append_precomputed) covers big-endian
// hosts, mixed-width segment runs, and tail records.
//
// Segment file layout (all integers little-endian, doubles as IEEE-754
// bit patterns; everything 8-aligned so doubles map directly):
//
//   header, 128 bytes:
//     magic "FENRSEG1" (8), u32 version (1), u32 flags (bit0 sealed),
//     u64 segment_id, u64 base_row (global row of record 0), u64 rows,
//     u64 networks, u64 width (1|2|4), u64 tri_base (global row the Φ
//     spans start at), u64 payload_bytes, i64 min_time, i64 max_time,
//     40 bytes reserved
//   per record, for global row g = base_row + r:
//     u64 meta (bit0 valid), i64 time, u64 anchor_of (global row or
//     ~0), u64 row_hash, networks·width packed bytes padded to a
//     multiple of 8, (g − tri_base + 1) × f64 Φ columns for global
//     rows tri_base..g
//   sealed trailer, 16 bytes:
//     u32 payload_checksum over [128, 128 + payload_bytes), u32 0,
//     magic "FENRSEGE" (8)
//
// Record offsets are pure arithmetic in (base_row, tri_base, networks,
// width) — no per-record index is stored or needed.
//
// tri_base is the retention lever: a tail created after retention
// advanced the store's base omits the dead Φ prefix entirely, and
// compaction rewrites cold segments the same way, so disk stays
// O(retained²/2) rather than O(processed²/2).
//
// Durability protocol (what the chaos killpoints exercise):
//   spill():  encode the record into a pending buffer (the Φ row is hot)
//   flush():  pwrite pending → fsync(tail) → [segment_tail_flush] →
//             atomic manifest write (tmp + rename, inherits the
//             byte-offset killpoints of io/snapshot.h)
//   seal:     after a flush, read the tail back, checksum, patch the
//             header, write the trailer, fsync, rename tail→seg →
//             [segment_seal_rename] → manifest; retention retires whole
//             front segments, manifest first, unlink after
//   compact:  merge a cold run into cmp-<id> → fsync →
//             [segment_compact_rename] → rename → manifest → unlink
// The manifest is the single source of truth: a tail longer than the
// manifest says is truncated back on open; a torn tail is dropped
// whole (sealed history survives — `segment_tail_salvaged` event); an
// interrupted seal or compaction is rolled forward or its leftovers
// collected.
//
// Identity: a store created by a live session records per-row FNV
// hashes plus header/name hashes, so resume verifies only the retained
// window (flat). A store imported from a FENRSNAP snapshot has no
// routing vectors to hash and falls back to the snapshot's whole-prefix
// hash (kLegacyPrefixHash), verified in O(processed) — acceptable for a
// one-time migration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/distance_matrix.h"
#include "core/modebook.h"
#include "core/vector.h"

namespace fenrir::io {

struct Snapshot;  // io/snapshot.h

inline constexpr char kSegmentMagic[8] = {'F', 'E', 'N', 'R',
                                          'S', 'E', 'G', '1'};
inline constexpr char kSegmentTrailerMagic[8] = {'F', 'E', 'N', 'R',
                                                 'S', 'E', 'G', 'E'};
inline constexpr char kManifestMagic[8] = {'F', 'E', 'N', 'R',
                                           'M', 'A', 'N', 'I'};
inline constexpr std::uint32_t kSegmentVersion = 1;
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 128;
inline constexpr std::size_t kSegmentTrailerBytes = 16;
inline constexpr std::uint64_t kNoAnchor = ~std::uint64_t{0};

/// FNV-1a 64 over one observation's identity (time, validity, size,
/// site ids) — the per-record twin of dataset_prefix_hash, verifiable
/// per retained row instead of over the whole prefix.
std::uint64_t segment_row_hash(const core::RoutingVector& v);

struct SegmentStoreConfig {
  /// Tail records before seal + rotate.
  std::size_t seal_rows = 256;
  /// Keep at least this many newest observations (0 = keep everything).
  std::uint64_t retain_obs = 0;
  /// Keep observations whose time is within this many seconds of the
  /// newest observation time (0 = keep everything). Observation time,
  /// not wall clock — retention stays deterministic.
  std::int64_t retain_seconds = 0;
  /// Threads for the restored matrix and compaction verify sweeps
  /// (parallel_for semantics: 0 = hardware, 1 = serial).
  unsigned threads = 1;
  /// Merge cold small segments in a background thread. compact_now()
  /// works either way.
  bool background_compaction = true;
  /// Minimum run of consecutive undersized sealed segments worth one
  /// merged segment.
  std::size_t compact_min_run = 4;
};

/// One sealed segment as the manifest records it (also the `segment ls`
/// row).
struct SegmentInfo {
  std::uint64_t id = 0;
  std::uint64_t base_row = 0;
  std::uint64_t rows = 0;
  std::uint64_t tri_base = 0;
  std::uint64_t width = 1;
  std::uint64_t payload_bytes = 0;
  std::uint32_t checksum = 0;
  std::int64_t min_time = 0;
  std::int64_t max_time = 0;
};

class SegmentStore {
 public:
  /// Opens (or creates) the store at @p dir, replaying the manifest and
  /// rolling interrupted lifecycle steps forward: truncates an
  /// over-long tail, salvages a torn one, completes a crashed seal
  /// rename, and collects unreferenced seg-*/tail-*/cmp-*/*.tmp.* files.
  /// Throws DatasetIoError on a corrupt manifest.
  SegmentStore(std::filesystem::path dir, SegmentStoreConfig cfg);
  ~SegmentStore();
  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// True iff @p path is a directory holding a segment-store MANIFEST —
  /// how `--resume` / `--matrix-cache` auto-detect the format.
  static bool looks_like_store(const std::filesystem::path& path);

  /// Converts a decoded FENRSNAP snapshot (which must carry a matrix)
  /// into a fresh store at @p dir: every row becomes a record, all
  /// segments are sealed, identity falls back to the snapshot's prefix
  /// hash. Loading the result reproduces the matrix bit-identically.
  static void import_snapshot(const Snapshot& snapshot,
                              const std::filesystem::path& dir,
                              const SegmentStoreConfig& cfg);

  /// Live-session identity source: header/name hashes come from here,
  /// and spill() hashes rows against it. Optional — a store driven by
  /// append_raw() (benches) or import never attaches one.
  void attach(const core::Dataset* dataset);

  /// Spills the newest matrix row (matrix.size()-1, global row
  /// processed()) into the pending buffer: packed bytes and Φ columns
  /// are copied out while hot. O(row) — nothing else is re-encoded.
  /// Rotates the tail first when the matrix's packed width changed.
  void spill(const core::RoutingVector& v,
             const core::SimilarityMatrix& matrix);

  /// spill() for an arbitrary matrix row: records @p row (whose global
  /// row must be processed(), i.e. rows are spilled in order) from a
  /// matrix that may already hold later rows — how `analyze
  /// --matrix-cache` persists the rows it appended in one batch.
  void spill_row(const core::RoutingVector& v,
                 const core::SimilarityMatrix& matrix, std::size_t row);

  /// Raw spill for callers without a live matrix (benches, import):
  /// @p packed is networks·width host-order bytes, @p phi the Φ columns
  /// for global rows base..processed() where base is the store's
  /// current base_row — exactly processed() − base_row() + 1 values.
  void append_raw(bool valid, std::int64_t time, std::uint64_t anchor_of,
                  std::uint64_t row_hash, std::size_t networks,
                  std::size_t width, std::span<const std::byte> packed,
                  std::span<const double> phi);

  /// Makes everything spilled so far durable: tail pwrite + fsync, then
  /// the manifest (with @p book's modebook state when given), then any
  /// due seal/rotate/retention, then maybe a background compaction.
  void flush(const core::ModeBook* book = nullptr);

  /// Seals the current tail regardless of size (import's last partial
  /// segment; tests). Includes a flush.
  void seal_active();

  /// Runs one compaction pass synchronously (waits for a background
  /// pass first if one is in flight). Returns segments merged away.
  std::size_t compact_now();

  /// Everything a resumed session needs; matrix rows are the retained
  /// window [base_row, processed).
  struct Loaded {
    core::SimilarityMatrix matrix;
    std::uint64_t base_row = 0;
    std::uint64_t processed = 0;
    bool has_modebook = false;
    std::vector<core::RoutingVector> representatives;
    std::vector<std::size_t> history;
  };

  /// Maps the sealed segments, verifies each segment's checksum once
  /// (fenrir_segment_checksum_verified_total counts the work), verifies
  /// identity against @p dataset when given (null skips — `segment ls`
  /// and round-trip tests), and builds the matrix by page adoption
  /// (little-endian, uniform sealed width) or per-record copy.
  /// Throws DatasetIoError on corruption or identity mismatch.
  Loaded load(const core::Dataset* dataset) const;

  /// Re-reads every sealed segment and the tail from disk and checks
  /// structure + checksums. Returns false and fills @p error on the
  /// first problem.
  bool verify(std::string* error) const;

  std::uint64_t processed() const;
  std::uint64_t base_row() const;
  std::uint64_t tail_rows() const;
  std::uint64_t cold_bytes() const;
  bool empty() const;
  bool legacy_identity() const;
  core::UnknownPolicy policy() const;
  const std::vector<double>& weights() const;
  std::vector<SegmentInfo> segments() const;

  /// Sets policy/weights on a store that has no rows yet (import and
  /// benches; spill() derives them from the matrix instead).
  void configure(core::UnknownPolicy policy, std::vector<double> weights);
  /// Switches identity to the legacy whole-prefix hash (import).
  void set_legacy_identity(std::uint64_t prefix_hash);
  /// Replaces the modebook state the next manifest will carry (import;
  /// live sessions pass the book to flush() instead).
  void set_modebook_state(bool has_modebook,
                          std::vector<core::RoutingVector> representatives,
                          std::vector<std::size_t> history);

 private:
  struct TailState {
    std::uint64_t id = 0;
    std::uint64_t base_row = 0;
    std::uint64_t tri_base = 0;
    std::uint64_t width = 1;
    std::uint64_t rows = 0;           // durable + pending
    std::uint64_t durable_rows = 0;   // covered by the manifest
    std::uint64_t payload_bytes = 0;  // durable, covered by the manifest
    std::int64_t min_time = 0;
    std::int64_t max_time = 0;
    int fd = -1;
  };

  std::filesystem::path manifest_path() const;
  std::filesystem::path segment_path(std::uint64_t id) const;
  std::filesystem::path tail_path(std::uint64_t id) const;

  // All private helpers below assume state_mutex_ is held.
  void write_manifest_locked();
  std::string encode_manifest_locked() const;
  void decode_manifest(const std::string& bytes);
  void open_tail_locked(std::uint64_t width);
  void ensure_tail_locked(std::size_t networks, std::uint64_t width);
  void append_record_locked(bool valid, std::int64_t time,
                            std::uint64_t anchor_of, std::uint64_t row_hash,
                            std::size_t networks, std::uint64_t width,
                            std::span<const std::byte> packed,
                            std::span<const double> phi);
  void flush_locked(bool force_seal);
  void seal_tail_locked();
  void apply_retention_locked(std::vector<std::filesystem::path>& retired);
  void refresh_names_hash_locked();
  void publish_status_locked() const;
  void maybe_start_compaction_locked();
  std::size_t compact_run_locked(std::size_t begin, std::size_t count,
                                 std::uint64_t plan_base);
  bool find_compaction_run_locked(std::size_t& begin,
                                  std::size_t& count) const;

  std::filesystem::path dir_;
  SegmentStoreConfig cfg_;
  const core::Dataset* dataset_ = nullptr;

  mutable std::mutex state_mutex_;
  core::UnknownPolicy policy_ = core::UnknownPolicy::kPessimistic;
  std::vector<double> weights_;
  bool configured_ = false;
  // 0 = none (raw/bench stores), 1 = per-row hashes (live sessions),
  // 2 = legacy whole-prefix hash (imports).
  std::uint8_t identity_mode_ = 0;
  std::uint64_t legacy_prefix_hash_ = 0;
  std::uint64_t header_hash_ = 0;
  std::uint64_t names_hash_ = 0;
  std::uint64_t max_site_seen_ = 0;
  bool names_hash_stale_ = false;
  std::size_t networks_ = 0;
  bool has_modebook_ = false;
  std::vector<core::RoutingVector> representatives_;
  std::vector<std::size_t> history_;

  std::uint64_t base_row_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t next_segment_id_ = 0;
  std::int64_t max_time_seen_ = 0;
  std::vector<SegmentInfo> sealed_;
  std::optional<TailState> tail_;
  std::string pending_;  // encoded records not yet written to the tail

  std::thread compactor_;
  bool compaction_running_ = false;
};

}  // namespace fenrir::io
