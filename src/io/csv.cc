#include "io/csv.h"

#include <ostream>

namespace fenrir::io {

std::vector<CsvRow> parse_csv(std::string_view text, char sep) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // have we seen any content in this row?
  std::size_t line = 1;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    field_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      field_started = true;
    } else if (c == sep) {
      end_field();
      field_started = true;
    } else if (c == '\r') {
      // swallow; LF (if any) ends the row
    } else if (c == '\n') {
      ++line;
      // A blank line yields no row; anything else ends the current row.
      if (field_started || !field.empty() || !row.empty()) end_row();
    } else {
      field.push_back(c);
      field_started = true;
    }
  }
  if (in_quotes) throw CsvError("unterminated quoted field", line);
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::string csv_escape(std::string_view field, char sep) {
  const bool needs_quotes =
      field.find_first_of(std::string{sep} + "\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << sep_;
    out_ << csv_escape(fields[i], sep_);
  }
  out_ << '\n';
}

}  // namespace fenrir::io
