#include "io/pgm.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace fenrir::io {

void GrayImage::write_pgm(std::ostream& out) const {
  out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size()));
}

void GrayImage::write_pgm_file(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open " + path.string() + " for writing");
  }
  write_pgm(out);
}

void ColorImage::write_ppm(std::ostream& out) const {
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  for (const Rgb& px : pixels_) {
    const char bytes[3] = {static_cast<char>(px.r), static_cast<char>(px.g),
                           static_cast<char>(px.b)};
    out.write(bytes, 3);
  }
}

void ColorImage::write_ppm_file(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open " + path.string() + " for writing");
  }
  write_ppm(out);
}

}  // namespace fenrir::io
