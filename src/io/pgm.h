// fenrir::io — PGM (portable graymap) image output.
//
// Heatmaps of all-pairs routing-vector similarity (the paper's Figures
// 2b/3b/5/6b) are written as 8-bit PGM images: universally readable,
// dependency-free, and directly comparable to the paper's grayscale plots
// (dark = similar).
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <stdexcept>
#include <vector>

namespace fenrir::io {

/// A row-major 8-bit grayscale image.
class GrayImage {
 public:
  GrayImage(std::size_t width, std::size_t height, std::uint8_t fill = 0)
      : width_(width), height_(height), pixels_(width * height, fill) {}

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }

  std::uint8_t& at(std::size_t x, std::size_t y) {
    check(x, y);
    return pixels_[y * width_ + x];
  }
  std::uint8_t at(std::size_t x, std::size_t y) const {
    check(x, y);
    return pixels_[y * width_ + x];
  }

  /// Writes binary PGM (P5).
  void write_pgm(std::ostream& out) const;
  void write_pgm_file(const std::filesystem::path& path) const;

 private:
  void check(std::size_t x, std::size_t y) const {
    if (x >= width_ || y >= height_) {
      throw std::out_of_range("GrayImage pixel out of range");
    }
  }

  std::size_t width_, height_;
  std::vector<std::uint8_t> pixels_;
};

/// A row-major 24-bit RGB image (PPM P6 output) for renderings where
/// shades are not enough — e.g. the mode strip, where each routing mode
/// gets its own hue.
class ColorImage {
 public:
  struct Rgb {
    std::uint8_t r = 0, g = 0, b = 0;
    friend bool operator==(const Rgb&, const Rgb&) = default;
  };

  ColorImage(std::size_t width, std::size_t height)
      : width_(width), height_(height), pixels_(width * height) {}
  ColorImage(std::size_t width, std::size_t height, Rgb fill)
      : width_(width), height_(height), pixels_(width * height, fill) {}

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }

  Rgb& at(std::size_t x, std::size_t y) {
    check(x, y);
    return pixels_[y * width_ + x];
  }
  const Rgb& at(std::size_t x, std::size_t y) const {
    check(x, y);
    return pixels_[y * width_ + x];
  }

  /// Writes binary PPM (P6).
  void write_ppm(std::ostream& out) const;
  void write_ppm_file(const std::filesystem::path& path) const;

 private:
  void check(std::size_t x, std::size_t y) const {
    if (x >= width_ || y >= height_) {
      throw std::out_of_range("ColorImage pixel out of range");
    }
  }

  std::size_t width_, height_;
  std::vector<Rgb> pixels_;
};

}  // namespace fenrir::io
