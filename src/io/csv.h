// fenrir::io — CSV reading and writing (RFC 4180 subset).
//
// Fenrir exchanges datasets (routing vectors, distance matrices, stack
// series) as CSV so they can be fed to external plotting. The codec
// supports quoted fields with embedded separators/quotes/newlines, a
// configurable separator (TSV), and header handling.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fenrir::io {

/// Error for malformed CSV input.
class CsvError : public std::runtime_error {
 public:
  CsvError(std::string message, std::size_t line)
      : std::runtime_error("csv:" + std::to_string(line) + ": " +
                           std::move(message)),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

using CsvRow = std::vector<std::string>;

/// Parses an entire CSV document. Handles quoted fields ("" escaping),
/// CRLF and LF line endings; a trailing newline does not produce an empty
/// final row. Throws CsvError on an unterminated quote.
std::vector<CsvRow> parse_csv(std::string_view text, char sep = ',');

/// Escapes a single field for CSV output if needed.
std::string csv_escape(std::string_view field, char sep = ',');

/// Streaming CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',')
      : out_(out), sep_(sep) {}

  void write_row(const std::vector<std::string>& fields);

  /// Variadic convenience: write_row("a", 3, 2.5).
  template <typename... Ts>
  void row(const Ts&... fields) {
    std::vector<std::string> out;
    out.reserve(sizeof...(fields));
    (out.push_back(to_field(fields)), ...);
    write_row(out);
  }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(std::string_view s) { return std::string(s); }
  template <typename T>
  static std::string to_field(const T& v) {
    return std::to_string(v);
  }

  std::ostream& out_;
  char sep_;
};

}  // namespace fenrir::io
