// fenrir::io — aligned text tables for console reports.
//
// Fenrir's benches print the paper's tables (e.g. Table 3 transition
// matrices, Table 4 confusion matrix) as aligned monospace tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fenrir::io {

class TextTable {
 public:
  /// Sets the header row (optional).
  void header(std::vector<std::string> cells);

  /// Appends a data row.
  void add_row(std::vector<std::string> cells);

  /// Variadic convenience mirroring CsvWriter::row.
  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> out;
    out.reserve(sizeof...(cells));
    (out.push_back(stringify(cells)), ...);
    add_row(std::move(out));
  }

  /// Renders with right-aligned numeric-looking cells, left-aligned text,
  /// two-space gutters, and a rule under the header.
  void print(std::ostream& out) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  static std::string stringify(const std::string& s) { return s; }
  static std::string stringify(const char* s) { return s; }
  template <typename T>
  static std::string stringify(const T& v) {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fixed(double value, int digits = 3);

}  // namespace fenrir::io
