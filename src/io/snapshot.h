// fenrir::io — versioned, checksummed binary snapshots of the Φ stack.
//
// Recurrence makes the archive a cache: a SimilarityMatrix over T
// observations took O(T²·N) to build, but on disk it is just bytes —
// packed rows at their native width, the lower Φ triangle, the anchors'
// cached counts, and the ModeBook's representatives. A snapshot loads in
// O(bytes), so `fenrirctl watch --resume` and `analyze --matrix-cache`
// continue a long series instead of recomputing it.
//
// Wire format (all integers little-endian; doubles as IEEE-754 bit
// patterns in a u64):
//
//   magic   8 bytes  "FENRSNAP"
//   u32     version  (2 — v1 is the legacy CSV watch state, no magic)
//   u64     total file length in bytes, including this header and the
//            checksum trailer (truncation check)
//   u64     dataset prefix hash (dataset_prefix_hash over `processed`)
//   u64     processed — observations of the dataset this state covers
//   u8      has_matrix, u8 has_modebook, u8 policy (0 = pessimistic,
//            1 = known-only; meaningful when has_matrix), u8 reserved
//   [matrix section, iff has_matrix]
//     u64 n, u64 networks, u64 width (1|2|4)
//     u64 weight_count, weight_count × u64 double bits
//     n × u8 valid flags
//     n·networks·width bytes of packed rows (native width, row-major)
//     u64 value_count (= n(n+1)/2), value_count × u64 double bits (the
//         lower triangle incl. diagonal)
//     u64 recent anchor count, then per anchor:
//         u64 row, u64 est_delta, u64 last_used,
//         n × (u64 matches, u64 mutual_known)
//     u64 representative anchor count, same per-anchor layout
//     u64 append_clock, u64 probe_cooldown, u64 probe_failures
//   [modebook section, iff has_modebook]
//     u64 mode_count, then per representative:
//         i64 time, u8 valid, u64 size, size × u32 SiteId
//     u64 history_count, history_count × u64 mode ids
//   u32     checksum over every byte before the trailer — a 4-lane
//            multiply–rotate word hash folded to 32 bits (see
//            payload_checksum in snapshot.cc); chosen over a table CRC
//            so verifying a multi-megabyte resume costs less than the
//            decode it protects
//
// Decoding checks, in order, each with a distinct actionable
// DatasetIoError: magic → version → recorded-vs-actual length
// (truncated tail / trailing garbage) → checksum (bit rot) → section
// bounds → cross-field consistency. Site and network ids inside the
// snapshot are only meaningful against the dataset they came from; the
// prefix hash is how a loader proves it is looking at the same one.
//
// Files are written atomically: bytes go to a temp file in the target
// directory, fsync, then rename over the destination — a kill mid-save
// (chaos/killpoint.h schedules one) leaves the previous state intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dataset_io.h"
#include "core/distance_matrix.h"
#include "core/modebook.h"
#include "core/vector.h"

namespace fenrir::io {

inline constexpr char kSnapshotMagic[8] = {'F', 'E', 'N', 'R',
                                           'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Everything a resumed session needs. `processed` counts dataset
/// observations (valid and invalid) already consumed; the matrix, when
/// present, has exactly that many rows.
struct Snapshot {
  std::uint64_t prefix_hash = 0;
  std::size_t processed = 0;
  std::optional<core::SimilarityMatrix> matrix;
  bool has_modebook = false;
  std::vector<core::RoutingVector> representatives;
  std::vector<std::size_t> history;
};

/// FNV-1a 64 over the identity of the dataset's first @p rows
/// observations: network count and keys, each row's time / validity /
/// site ids, the names behind every site id the prefix references (the
/// intern order over a prefix is determined by the prefix, so ids are
/// comparable iff the hashes are), and the weights' bit patterns.
/// Growing a dataset never changes the hash of its prefix.
std::uint64_t dataset_prefix_hash(const core::Dataset& dataset,
                                  std::size_t rows);

std::string encode_snapshot(const Snapshot& snapshot);

/// Decodes and validates; @p threads is applied to the restored matrix
/// (it is not part of the persisted state). Throws DatasetIoError with
/// a distinct message per failure mode (see the header comment).
Snapshot decode_snapshot(std::string_view bytes, unsigned threads = 1);

/// Writes @p bytes to @p path atomically: temp file in the same
/// directory, fsync, rename, fsync of the directory. Calls
/// chaos::maybe_kill_during_save() as it goes so a scheduled mid-save
/// kill lands between chunks. Throws DatasetIoError on any I/O failure.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view bytes);

/// encode + atomic write, with fenrir_snapshot_save_* metrics and a
/// "snapshot" StatusBoard fragment.
void save_snapshot_file(const std::filesystem::path& path,
                        const Snapshot& snapshot);

/// read + decode, with fenrir_snapshot_load_* metrics and a "snapshot"
/// StatusBoard fragment. Throws DatasetIoError (unreadable file, or any
/// decode failure).
Snapshot load_snapshot_file(const std::filesystem::path& path,
                            unsigned threads = 1);

/// Loads a `fenrirctl watch` state file — v2 binary snapshot (verified
/// against @p dataset via the prefix hash) or legacy v1 CSV (site names
/// re-interned into @p dataset, no matrix; the caller rebuilds one and
/// the next save upgrades the file to v2).
Snapshot load_watch_state(core::Dataset& dataset,
                          const std::filesystem::path& path,
                          unsigned threads = 1);

/// Saves a watch session as a v2 snapshot (atomic). @p matrix may be
/// null when the session kept none.
void save_watch_state(const core::Dataset& dataset,
                      const core::ModeBook& book, std::size_t processed,
                      const core::SimilarityMatrix* matrix,
                      const std::filesystem::path& path);

/// The legacy v1 CSV writer, kept so tests can prove a v1 state resumes
/// identically to v2. Atomic like every other state write.
void save_watch_state_v1(const core::Dataset& dataset,
                         const core::ModeBook& book, std::size_t processed,
                         const std::filesystem::path& path);

}  // namespace fenrir::io
