#include "measure/atlas.h"

#include <stdexcept>

#include "dns/message.h"
#include "measure/site_map.h"

namespace fenrir::measure {

void ServerIdentityMap::add(const std::string& site_token,
                            std::uint32_t site) {
  if (!by_token_.emplace(site_token, site).second) {
    throw std::invalid_argument("ServerIdentityMap: duplicate token " +
                                site_token);
  }
}

std::optional<std::uint32_t> ServerIdentityMap::site_of_identity(
    const std::string& identity) const {
  // Identity format "<instance>.<site>.<zone...>": the site token is the
  // second label. Anything else is unmappable.
  const auto first_dot = identity.find('.');
  if (first_dot == std::string::npos) return std::nullopt;
  const auto second_dot = identity.find('.', first_dot + 1);
  if (second_dot == std::string::npos) return std::nullopt;
  const std::string token =
      identity.substr(first_dot + 1, second_dot - first_dot - 1);
  const auto it = by_token_.find(token);
  if (it == by_token_.end()) return std::nullopt;
  return it->second;
}

std::string ServerIdentityMap::make_identity(std::uint32_t instance,
                                             const std::string& site_token) {
  return "b" + std::to_string(instance) + "." + site_token + ".example";
}

std::vector<std::uint8_t> AnycastDnsServer::handle(
    std::span<const std::uint8_t> query, std::uint32_t site) const {
  const dns::Message q = dns::Message::decode(query);
  if (q.questions.empty()) throw dns::DnsError("query without question");

  const std::string& token = site_tokens_.at(site);
  // Each site runs several replicated instances; which one answers is
  // arbitrary from the client's perspective.
  const std::uint32_t instance =
      1 + static_cast<std::uint32_t>(
              rng::mix(seed_, q.header.id, site) % 3);
  std::string identity = ServerIdentityMap::make_identity(instance, token);

  if (bogus_fraction_ > 0.0) {
    const std::uint64_t h = rng::mix(seed_, 0xb05e5ULL, q.header.id);
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < bogus_fraction_) {
      identity = "fw-" + std::to_string(h % 1000);  // middlebox junk
    }
  }
  return dns::make_hostname_bind_response(q, identity).encode();
}

AtlasProbe::AtlasProbe(const bgp::AsGraph& graph, AtlasConfig config)
    : graph_(&graph), config_(config) {
  rng::Rng r(config_.seed);
  // Candidate ASes: stubs with high probability, some tier-2s — roughly
  // the real Atlas skew toward edge networks.
  std::vector<bgp::AsIndex> candidates;
  for (bgp::AsIndex i = 0; i < graph.as_count(); ++i) {
    const auto tier = graph.node(i).tier;
    if (tier == bgp::AsTier::kStub) {
      candidates.push_back(i);
    } else if (tier == bgp::AsTier::kTier2 && r.bernoulli(0.5)) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    throw std::invalid_argument("AtlasProbe: graph has no candidate ASes");
  }
  vps_.reserve(config_.vp_count);
  for (std::size_t v = 0; v < config_.vp_count; ++v) {
    const bgp::AsIndex as = candidates[r.uniform(candidates.size())];
    geo::Coord loc = graph.node(as).location;
    loc.lat_deg += r.uniform_real(-1.5, 1.5);
    loc.lon_deg += r.uniform_real(-1.5, 1.5);
    vps_.push_back(
        AtlasVantagePoint{static_cast<std::uint32_t>(v), as, loc});
  }
}

std::vector<core::SiteId> AtlasProbe::measure(
    core::TimePoint time, const bgp::RoutingTable& routing,
    const AnycastDnsServer& server, const ServerIdentityMap& identity_map,
    const std::vector<core::SiteId>& site_to_core) const {
  std::vector<core::SiteId> out(vps_.size(), core::kErrorSite);
  for (std::size_t v = 0; v < vps_.size(); ++v) {
    // Transient query loss -> err, like an Atlas timeout.
    const std::uint64_t h = rng::mix(
        config_.seed, rng::mix(0xa71a5ULL, v, static_cast<std::uint64_t>(time)));
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < config_.query_loss) {
      continue;
    }
    const auto site = routing.catchment(vps_[v].as);
    if (!site) continue;  // no route to the prefix -> no reply -> err

    // Real wire exchange.
    const std::uint16_t qid = static_cast<std::uint16_t>(h);
    const auto query_bytes = dns::make_hostname_bind_query(qid).encode();
    std::vector<std::uint8_t> response_bytes;
    try {
      response_bytes = server.handle(query_bytes, *site);
    } catch (const dns::DnsError&) {
      continue;  // server-side failure behaves like a timeout
    }
    std::optional<std::string> identity;
    try {
      identity =
          dns::extract_server_identity(dns::Message::decode(response_bytes));
    } catch (const dns::DnsError&) {
      continue;  // mangled response -> err
    }
    if (!identity) continue;
    const auto mapped = identity_map.site_of_identity(*identity);
    out[v] = mapped ? map_site(site_to_core, *mapped, "atlas")
                    : core::kOtherSite;
  }
  return out;
}

std::vector<std::uint32_t> AtlasProbe::represented_blocks(
    const std::unordered_map<bgp::AsIndex, std::uint32_t>& blocks_of) const {
  std::unordered_map<bgp::AsIndex, std::uint32_t> vps_in_as;
  for (const auto& vp : vps_) ++vps_in_as[vp.as];

  std::vector<std::uint32_t> out;
  out.reserve(vps_.size());
  for (const auto& vp : vps_) {
    const auto blocks = blocks_of.find(vp.as);
    const std::uint32_t announced =
        blocks == blocks_of.end() ? 1 : std::max(1u, blocks->second);
    const std::uint32_t sharers = vps_in_as.at(vp.as);
    out.push_back(std::max(1u, (announced + sharers - 1) / sharers));
  }
  return out;
}

std::vector<double> AtlasProbe::measure_rtt(
    core::TimePoint time, const bgp::RoutingTable& routing,
    const std::vector<geo::Coord>& site_coords,
    const geo::LatencyModel& model) const {
  std::vector<double> out(vps_.size(), -1.0);
  for (std::size_t v = 0; v < vps_.size(); ++v) {
    const auto site = routing.catchment(vps_[v].as);
    if (!site) continue;
    rng::Rng r(rng::mix(config_.seed,
                        rng::mix(0x277ULL, v, static_cast<std::uint64_t>(time))));
    out[v] =
        model.rtt_ms_jittered(vps_[v].location, site_coords.at(*site), r);
  }
  return out;
}

}  // namespace fenrir::measure
