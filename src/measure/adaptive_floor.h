// fenrir::measure — an online coverage floor.
//
// PR 2's static coverage_floor fraction asks the operator to guess, per
// campaign, what "too little coverage" means — and a guess low enough to
// survive a flaky campaign (0.10) will never flag a healthy one that
// quietly sinks from 0.9 to 0.5. AdaptiveFloor derives the floor from
// the campaign's own history instead: an EWMA of accepted sweep
// coverage and an EWMA variance around it give
//
//   floor = clamp(mean - k*sigma - slack, min_floor, max_floor)
//
// so "degraded" means "outside this campaign's own recent band", with
// zero per-campaign hand tuning. Two disciplines keep it honest:
//
//   * the floor used to judge sweep s is computed from sweeps < s (the
//     observation never moves its own goalposts);
//   * sweeps that fall below the floor are NOT fed back into the EWMA —
//     an outage must not teach the floor that darkness is normal, and
//     recovery is judged against the pre-outage band (this is what lets
//     a federation member "rejoin" meaningfully).
//
// During warmup (fewer than `warmup` accepted samples) the static
// `initial` fraction applies, so the first sweeps of a campaign behave
// exactly like the PR 2 floor. State round-trips exactly through
// checkpoints via restore() (the campaign serializes mean/var as C99
// hexfloats, so resume is bit-identical).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace fenrir::measure {

class AdaptiveFloor {
 public:
  struct Config {
    /// EWMA smoothing for both the mean and the variance.
    double alpha = 0.25;
    /// Sigmas of slack below the mean before a sweep is flagged.
    double k = 4.0;
    /// Absolute slack on top of k*sigma — keeps a perfectly steady
    /// history (sigma ~ 0) from flagging an infinitesimal dip.
    double slack = 0.02;
    /// Accepted samples before the floor goes adaptive.
    std::size_t warmup = 3;
    /// Static floor used during warmup (a campaign's coverage_floor).
    double initial = 0.10;
    double min_floor = 0.01;
    double max_floor = 0.95;
  };

  AdaptiveFloor() : AdaptiveFloor(Config{}) {}
  explicit AdaptiveFloor(const Config& config) : config_(config) {}

  /// The floor a sweep observed *now* should be judged against.
  double floor() const noexcept {
    if (samples_ < config_.warmup) return config_.initial;
    const double f =
        mean_ - config_.k * std::sqrt(std::max(var_, 0.0)) - config_.slack;
    return std::clamp(f, config_.min_floor, config_.max_floor);
  }

  /// Feeds one accepted coverage sample. Callers skip sweeps that fell
  /// below floor() — see the header comment.
  void observe(double coverage) noexcept {
    if (samples_ == 0) {
      mean_ = coverage;
      var_ = 0.0;
    } else {
      const double d = coverage - mean_;
      mean_ += config_.alpha * d;
      var_ = (1.0 - config_.alpha) * (var_ + config_.alpha * d * d);
    }
    ++samples_;
  }

  const Config& config() const noexcept { return config_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return var_; }
  std::size_t samples() const noexcept { return samples_; }

  /// Exact state restore (checkpoint resume).
  void restore(double mean, double variance, std::size_t samples) noexcept {
    mean_ = mean;
    var_ = variance;
    samples_ = samples;
  }

 private:
  Config config_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace fenrir::measure
