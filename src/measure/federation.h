// fenrir::measure — a federated multi-prober campaign.
//
// One Campaign models one vantage point. The paper's recurring scans are
// federated in practice: several probers, each covering its own slice of
// the target list (with some deliberate overlap), each on its own
// schedule and its own imperfect clock, feeding one merge point that
// must keep producing a routing vector even while members fail.
// Federation is that merge point:
//
//   * each member is a full Campaign over a subset of the global target
//     list, with its own retry/breaker/floor discipline, its own
//     chaos::FaultPlan, and its own chaos::ClockModel — members stamp
//     observations in local time and the merge aligns them to
//     federation epochs through the model's inverse;
//   * every epoch the member views fold into one RoutingVector with
//     per-target provenance: which member's answer won, how stale it
//     is, and whether the fresh votes disagreed. Votes are weighted by
//     each member's own coverage history (an EWMA — a member that
//     answers 95% of its slice outvotes one limping at 40%), and
//     answers older than `staleness_bound` epochs age out entirely, so
//     a dead prober's last words cannot be served forever;
//   * a per-member health machine (healthy -> lagging -> dead ->
//     rejoined) driven by whether the member landed a valid sweep in
//     the epoch, with `prober_dead` / `prober_rejoined` events on the
//     bus and fenrir_federation_* metrics;
//   * the epoch-level coverage floor is adaptive (adaptive_floor.h):
//     "degraded" means outside the federation's own recent band, with
//     zero hand-tuned thresholds;
//   * checkpoint/resume over a directory (one CSV per member plus a
//     manifest). A federation killed mid-sweep in ANY member resumes to
//     bit-identical output: member state restores exactly, and the
//     merge fold is deterministically replayed from the restored member
//     series with all emission suppressed.
//
// Determinism: members advance in index order, one epoch at a time, and
// every merge rule breaks ties the same way (smallest SiteId, then
// smallest member index), so a federation is a pure function of its
// configuration — which is what the kill/resume and event-log-prefix
// properties in tests/measure_federation_test.cc pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "chaos/clock_model.h"
#include "core/modebook.h"
#include "measure/adaptive_floor.h"
#include "measure/campaign.h"

namespace fenrir::measure {

class FederationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One member prober's slot in the federation.
struct MemberConfig {
  std::string name;
  /// Global target indices this member covers (subsets may overlap).
  std::vector<std::size_t> targets;
  /// The member's clock relative to federation (true) time.
  chaos::ClockModel clock;
  /// True seconds into each epoch at which this member's sweep begins.
  core::TimePoint start_offset = 0;
  /// Per-member campaign discipline. `start` and `idle_gap` are derived
  /// by the federation (the sweep period is locked to the epoch length);
  /// everything else — rate, retries, breakers, floors — is the
  /// member's own.
  CampaignConfig campaign;
  /// Optional per-member fault plan (outages, loss, kills). Must
  /// outlive the federation.
  const chaos::FaultPlan* faults = nullptr;
};

struct FederationConfig {
  /// Size of the merged target universe; member target indices must be
  /// below this.
  std::size_t global_targets = 0;
  /// Federation (true-time) start of epoch 0.
  core::TimePoint start = 0;
  /// True seconds per federation epoch; every member's sweep period is
  /// locked to this, so "one sweep per epoch" holds by construction.
  core::TimePoint epoch_length = 0;
  /// Epochs a member's last answer stays servable; beyond this it ages
  /// out and the target goes unserved rather than stale.
  std::size_t staleness_bound = 3;
  /// Consecutive lagging epochs before a member is declared dead.
  int dead_after = 2;
  /// Seeds the adaptive epoch floor's warmup (then the floor tracks the
  /// federation's own accepted-epoch history).
  double coverage_floor = 0.10;
  AdaptiveFloor::Config floor_tuning;
};

enum class MemberHealth : std::uint8_t {
  kHealthy = 0,
  kLagging = 1,   // missed (or flunked) the current epoch
  kDead = 2,      // dead_after consecutive lagging epochs
  kRejoined = 3,  // back from the dead this epoch; healthy next
};

const char* to_string(MemberHealth h) noexcept;

/// No member served this target this epoch.
inline constexpr std::size_t kNoMember = static_cast<std::size_t>(-1);

/// Where one merged target's label came from.
struct TargetProvenance {
  std::size_t member = kNoMember;
  /// Epochs since the serving member last answered this target (0 =
  /// fresh this epoch).
  std::size_t staleness = 0;
  /// Fresh votes from distinct members named distinct sites.
  bool disagreed = false;
};

/// One epoch's provenance, rolled up for the decision lineage plane:
/// who mostly served the merged vector, how stale its worst answer
/// was, and how many targets had split votes.
struct ProvenanceSummary {
  std::size_t member = kNoMember;  // dominant serving member
  std::size_t max_staleness = 0;
  std::size_t disagreements = 0;
};

/// Rolls up one epoch's FederationResult::provenance row. Dominant
/// member = the one serving the most targets (ties to the smaller
/// index, the federation's usual tie-break).
ProvenanceSummary summarize_provenance(
    std::span<const TargetProvenance> epoch);

/// fold_phi over a federated series that ALSO classifies every epoch
/// through @p book, recording full decision lineage: each observation's
/// DecisionRecord carries the anchor chain the fold's matrix used for
/// that row plus the epoch's provenance summary (when provided —
/// provenance[r] explains series[r]; shorter spans leave later epochs
/// without provenance rather than erroring). Returns the same matrix
/// the campaign.h fold_phi would; verdicts are identical to calling
/// book.observe() per epoch — lineage observes, never steers.
core::SimilarityMatrix fold_phi(
    std::span<const core::RoutingVector> series, core::ModeBook& book,
    std::span<const ProvenanceSummary> provenance,
    core::UnknownPolicy policy = core::UnknownPolicy::kPessimistic,
    std::vector<double> weights = {}, unsigned threads = 0);

/// Per-epoch accounting. served + unserved == targets, and
/// fresh + stale == served; aged_out counts unserved targets that DID
/// have an answer, just one too old to trust.
struct EpochReport {
  std::size_t epoch = 0;
  core::TimePoint start = 0;
  core::TimePoint end = 0;
  std::size_t targets = 0;
  std::size_t fresh = 0;
  std::size_t stale = 0;
  std::size_t aged_out = 0;
  std::size_t unserved = 0;
  std::size_t disagreements = 0;
  std::size_t members_healthy = 0;
  std::size_t members_lagging = 0;
  std::size_t members_dead = 0;
  /// The adaptive floor this epoch was judged against.
  double floor = 0.0;
  bool low_coverage = false;

  std::size_t served() const noexcept { return fresh + stale; }
  double coverage() const noexcept {
    return targets == 0
               ? 0.0
               : static_cast<double>(served()) / static_cast<double>(targets);
  }
};

struct FederationResult {
  /// One merged vector per epoch (time = epoch's true start; invalid
  /// when the epoch fell below the adaptive floor).
  std::vector<core::RoutingVector> series;
  std::vector<EpochReport> reports;
  /// provenance[e][g] explains series[e].assignment[g].
  std::vector<std::vector<TargetProvenance>> provenance;
  /// A member's fault plan killed the run mid-sweep;
  /// save_checkpoint_dir() then captures everything needed to resume.
  bool interrupted = false;
};

class Federation {
 public:
  /// @p prober is the shared ground-truth prober over the GLOBAL target
  /// list (each member sees only its slice of it, through its own
  /// clock). Prober, config and every member fault plan must outlive
  /// the federation. Throws FederationError on inconsistent members.
  Federation(const TargetProber& prober, FederationConfig config,
             std::vector<MemberConfig> members);
  ~Federation();
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Streams one JSONL entry per member per epoch plus one per epoch
  /// into @p journal. Pass nullptr to detach.
  void set_journal(obs::Journal* journal) noexcept { journal_ = journal; }

  /// Runs epochs up to @p epoch_count, resuming where a previous run
  /// (or a restored checkpoint) left off. The result carries the FULL
  /// accumulated series, so a resumed federation returns the same
  /// result an uninterrupted one would. Never throws on injected
  /// faults.
  FederationResult run(std::size_t epoch_count);

  /// Serializes the full federation state into @p dir (created if
  /// missing): federation.csv plus one member_<i>.csv per member.
  void save_checkpoint_dir(const std::string& dir) const;

  /// Restores a checkpoint saved by a federation with the same
  /// configuration: members restore exactly, then the merge fold is
  /// replayed (emission suppressed) so the in-memory state is
  /// bit-identical to the moment of the kill.
  void load_checkpoint_dir(const std::string& dir);

  /// The federation epoch containing true instant @p t (clamped to 0
  /// before the start).
  std::size_t epoch_of(core::TimePoint t) const noexcept;

  std::size_t member_count() const noexcept { return members_.size(); }
  std::size_t target_count() const noexcept { return config_.global_targets; }
  const Campaign& member(std::size_t i) const;
  MemberHealth member_health(std::size_t i) const;
  std::size_t epochs_done() const noexcept { return reports_.size(); }
  const std::vector<core::RoutingVector>& series() const noexcept {
    return series_;
  }
  const std::vector<EpochReport>& reports() const noexcept { return reports_; }
  const std::vector<std::vector<TargetProvenance>>& provenance()
      const noexcept {
    return provenance_;
  }
  /// The adaptive floor the NEXT epoch will be judged against.
  double current_floor() const noexcept { return floor_.floor(); }
  /// Voting weight member @p i carries right now (its coverage EWMA).
  double member_weight(std::size_t i) const;

  /// The journal entry the fold writes for @p report — exposed so tests
  /// replay against the exact writer-side format.
  static std::string journal_entry(const EpochReport& report);

 private:
  struct MemberState;  // member campaign + clock + freshness tables

  /// Advances every member through epoch `epochs_done()` and folds
  /// their views into one merged vector. Returns false when a member's
  /// fault plan killed the run (state is left resumable).
  bool step_epoch();
  /// Merges the member views for @p epoch: provenance, health, events,
  /// metrics. Pure fold over member series — replayable.
  void fold_epoch(std::size_t epoch);
  void update_member_health(std::size_t index, std::size_t epoch, bool fresh);

  FederationConfig config_;
  std::vector<std::unique_ptr<MemberState>> members_;
  obs::Journal* journal_ = nullptr;

  /// True while load_checkpoint_dir() replays the fold: no events, no
  /// metrics, no journal, no logs — the replay must be invisible.
  bool replaying_ = false;

  AdaptiveFloor floor_;
  std::vector<core::RoutingVector> series_;
  std::vector<EpochReport> reports_;
  std::vector<std::vector<TargetProvenance>> provenance_;
};

}  // namespace fenrir::measure
