// fenrir::measure — probing schedules.
//
// The paper's USC traceroute scan is rate-limited: "We cover 1.6M /24
// networks ... The probing rate is 550 packets per second ... It takes
// around 8 hours to complete a full list scan", deliberately slow "to
// reduce the stress on the first hop". A SweepSchedule captures that
// discipline: targets are probed in order at a fixed rate, so each
// target has a deterministic probe instant inside its sweep, sweeps
// repeat back-to-back (or with an idle gap), and an observation
// timestamped "sweep k" actually mixes measurements spread over the
// sweep duration — a smear analysis code sometimes needs to reason
// about.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "core/time.h"

namespace fenrir::measure {

class SweepSchedule {
 public:
  /// @p targets probed at @p packets_per_second, with @p probes_per_target
  /// packets each (retries/hop counts), starting at @p start. An optional
  /// idle gap separates consecutive sweeps.
  SweepSchedule(std::size_t targets, double packets_per_second,
                std::size_t probes_per_target = 1,
                core::TimePoint start = 0, core::TimePoint idle_gap = 0)
      : targets_(targets),
        pps_(packets_per_second),
        probes_per_target_(probes_per_target),
        start_(start),
        idle_gap_(idle_gap) {
    if (targets == 0 || packets_per_second <= 0 || probes_per_target == 0) {
      throw std::invalid_argument("SweepSchedule: bad parameters");
    }
  }

  /// Seconds needed for one complete sweep (excluding the idle gap).
  double sweep_seconds() const noexcept {
    return static_cast<double>(targets_ * probes_per_target_) / pps_;
  }

  /// Full period including the idle gap, in seconds (>= 1s granularity
  /// since TimePoint is integral; rounded up so sweeps never overlap).
  core::TimePoint period() const noexcept {
    const auto active = static_cast<core::TimePoint>(sweep_seconds()) + 1;
    return active + idle_gap_;
  }

  /// The instant target @p index is probed in sweep @p sweep (0-based).
  core::TimePoint probe_time(std::size_t sweep, std::size_t index) const {
    if (index >= targets_) throw std::out_of_range("SweepSchedule: index");
    const double offset =
        static_cast<double>(index * probes_per_target_) / pps_;
    return start_ + static_cast<core::TimePoint>(sweep) * period() +
           static_cast<core::TimePoint>(offset);
  }

  /// Which sweep is in progress (or most recently started) at @p t.
  std::size_t sweep_at(core::TimePoint t) const noexcept {
    if (t <= start_) return 0;
    return static_cast<std::size_t>((t - start_) / period());
  }

  /// Target index being probed at @p t, if the sweep is active then
  /// (the idle gap and post-sweep slack return targets_, i.e. "none").
  std::size_t target_at(core::TimePoint t) const noexcept {
    if (t < start_) return targets_;
    const core::TimePoint into = (t - start_) % period();
    const double idx =
        static_cast<double>(into) * pps_ / static_cast<double>(probes_per_target_);
    const auto i = static_cast<std::size_t>(idx);
    return i < targets_ ? i : targets_;
  }

  std::size_t targets() const noexcept { return targets_; }

 private:
  std::size_t targets_;
  double pps_;
  std::size_t probes_per_target_;
  core::TimePoint start_;
  core::TimePoint idle_gap_;
};

}  // namespace fenrir::measure
