// fenrir::measure — a resilient measurement-campaign runner.
//
// Every prober in this directory models loss but nothing *recovers* from
// it: a lost probe is silently kUnknownSite and a killed campaign
// restarts from zero. Campaign wraps any prober (via the per-target
// TargetProber view) and adds the recovery discipline a months-long
// paper campaign actually needs:
//
//   * bounded retry with exponential backoff — unanswered targets are
//     re-probed in waves after the sweep's main pass, at the schedule's
//     packet rate, so retries cost simulated time, not magic;
//   * a per-target health tracker with a circuit breaker — targets that
//     retry out sweep after sweep stop being probed for a cooldown and
//     the reason is recorded (re-probing persistently dark blocks is how
//     real campaigns waste their probe budget);
//   * quorum merging — when several probers cover the same targets the
//     majority label wins and disagreement downgrades the sweep's
//     confidence;
//   * graceful degradation — every sweep emits a RoutingVector plus a
//     SweepReport whose buckets account for every target exactly
//     (answered + retried_out + broken + unrouted == targets); sweeps
//     below the coverage floor are marked invalid instead of poisoning
//     core::analyze();
//   * checkpoint/resume — the full campaign state serializes to a
//     dataset_io-style CSV, so a campaign killed mid-sweep (for real, or
//     by a chaos::FaultPlan) resumes at the interrupted target and
//     produces bit-identical output to an uninterrupted run.
//
// Determinism: probe instants come from SweepSchedule arithmetic and
// probers are pure functions of (target, instant), so a campaign is a
// pure function of its configuration — which is what makes the resume
// guarantee testable (tests/chaos_campaign_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "core/distance_matrix.h"
#include "core/time.h"
#include "core/vector.h"
#include "measure/adaptive_floor.h"
#include "measure/schedule.h"

namespace fenrir::obs {
class Journal;
}  // namespace fenrir::obs

namespace fenrir::measure {

class CampaignError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class ProbeStatus : std::uint8_t {
  kAnswered,  // got a catchment label
  kNoReply,   // timeout — dark target, transient loss, broken route
  kUnrouted,  // target in unrouted space: no retry will ever help
};

struct ProbeReply {
  core::SiteId site = core::kUnknownSite;
  ProbeStatus status = ProbeStatus::kNoReply;
};

/// Per-target view of a prober. The whole-sweep probers (verfploeter,
/// atlas, ednscs, traceroute) adapt to this with a lambda or a small
/// wrapper; implementations must be deterministic in (index, when).
class TargetProber {
 public:
  virtual ~TargetProber() = default;
  virtual std::size_t target_count() const = 0;
  /// Stable network key of target @p index (a /24 block, a VP id...).
  virtual std::uint64_t target_key(std::size_t index) const = 0;
  virtual ProbeReply probe(std::size_t index, core::TimePoint when) const = 0;
};

/// Lambda-backed TargetProber, the cheapest way to adapt anything.
class FnProber : public TargetProber {
 public:
  using Fn = std::function<ProbeReply(std::size_t, core::TimePoint)>;
  FnProber(std::vector<std::uint64_t> keys, Fn fn)
      : keys_(std::move(keys)), fn_(std::move(fn)) {
    if (!fn_) throw CampaignError("FnProber: null probe function");
  }
  std::size_t target_count() const override { return keys_.size(); }
  std::uint64_t target_key(std::size_t index) const override {
    return keys_.at(index);
  }
  ProbeReply probe(std::size_t index, core::TimePoint when) const override {
    return fn_(index, when);
  }

 private:
  std::vector<std::uint64_t> keys_;
  Fn fn_;
};

struct RetryPolicy {
  /// Total probes a target may receive per sweep (first attempt included).
  int max_attempts = 3;
  /// Simulated seconds between the main pass and the first retry wave.
  core::TimePoint backoff = 30;
  /// Each further wave waits backoff * multiplier^(wave-1).
  double backoff_multiplier = 2.0;
};

struct BreakerPolicy {
  /// Consecutive retried-out sweeps before the target's breaker opens.
  int open_after = 3;
  /// Sweeps skipped while open; then one half-open trial probe decides.
  std::size_t cooldown_sweeps = 2;
};

/// Opt-in adaptive coverage floor (adaptive_floor.h). When enabled, the
/// static coverage_floor only seeds the warmup; after that the floor
/// tracks the campaign's own accepted-sweep history (EWMA - k*sigma),
/// and the breaker's open_after threshold scales with the same signal:
/// at ambient EWMA coverage c, a target must miss ceil(open_after / c)
/// consecutive sweeps before its breaker trips — ambient loss is not
/// evidence against one target.
struct AdaptiveFloorPolicy {
  bool enabled = false;
  /// Tuning for the EWMA band; `initial` is overridden by the
  /// campaign's coverage_floor so the warmup matches the static path.
  AdaptiveFloor::Config config;
};

struct CampaignConfig {
  /// SweepSchedule discipline (the paper's 550 pps USC scan by default).
  double packets_per_second = 550.0;
  core::TimePoint start = 0;
  core::TimePoint idle_gap = 0;
  RetryPolicy retry;
  BreakerPolicy breaker;
  /// Sweeps with answered/targets below the floor are emitted
  /// valid = false. With adaptive.enabled this fraction only seeds the
  /// warmup; the floor then follows sweep history.
  double coverage_floor = 0.10;
  AdaptiveFloorPolicy adaptive;
};

/// Why a target's circuit breaker is open.
enum class BreakReason : std::uint8_t { kNone = 0, kPersistentlyDark = 1 };

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1 };

struct TargetHealth {
  std::uint32_t consecutive_misses = 0;
  BreakerState state = BreakerState::kClosed;
  /// First sweep allowed to send a half-open trial probe (when open).
  std::uint32_t reopen_sweep = 0;
  BreakReason reason = BreakReason::kNone;
  std::uint32_t trips = 0;

  bool is_default() const noexcept {
    return consecutive_misses == 0 && state == BreakerState::kClosed &&
           reopen_sweep == 0 && reason == BreakReason::kNone && trips == 0;
  }
};

/// Per-sweep coverage/confidence accounting. The four outcome buckets
/// partition the target set exactly; accounted() is the invariant the
/// chaos property test asserts under every fault plan.
struct SweepReport {
  std::size_t sweep = 0;
  core::TimePoint start = 0;
  core::TimePoint end = 0;  // after the last retry wave
  std::size_t targets = 0;
  std::size_t answered = 0;
  std::size_t retried_out = 0;
  std::size_t broken = 0;   // skipped: breaker open
  std::size_t unrouted = 0;
  std::size_t retries = 0;  // probes beyond the first attempt
  /// Targets where probers returned conflicting known labels.
  std::size_t disagreements = 0;
  /// The coverage floor this sweep was judged against (the static
  /// fraction, or the adaptive floor derived from earlier sweeps).
  double floor = 0.0;
  bool low_coverage = false;
  bool collector_gap = false;

  double coverage() const noexcept {
    return targets == 0
               ? 0.0
               : static_cast<double>(answered) / static_cast<double>(targets);
  }
  /// Quorum agreement among answered targets (1.0 for a lone prober).
  double confidence() const noexcept {
    return answered == 0 ? 1.0
                         : 1.0 - static_cast<double>(disagreements) /
                                     static_cast<double>(answered);
  }
  bool accounted() const noexcept {
    return answered + retried_out + broken + unrouted == targets;
  }
};

struct CampaignResult {
  /// One vector per completed sweep (time = sweep start). Invalid when
  /// below the coverage floor or inside a collector gap.
  std::vector<core::RoutingVector> series;
  std::vector<SweepReport> reports;
  /// True when a chaos::FaultPlan kill interrupted the run mid-sweep;
  /// save_checkpoint() then captures everything needed to resume.
  bool interrupted = false;
};

/// Merges independently collected vectors covering the same network
/// universe: per network, the majority known label wins (ties break to
/// the smallest SiteId); networks with conflicting known votes count as
/// disagreements and downgrade confidence. Time/validity come from the
/// first view.
struct QuorumMerge {
  core::RoutingVector vector;
  std::size_t disagreements = 0;
  /// 1 - disagreements / networks-with-known-votes. When NO network had
  /// any known vote (a lone prober that answered nothing), agreement is
  /// undefined and this is NaN — deliberately not 1.0, so silence can
  /// never be mistaken for consensus. Check with std::isnan.
  double confidence = 1.0;
};
QuorumMerge merge_quorum(std::span<const core::RoutingVector> views);

/// Folds an epoch/sweep series — a Campaign's series(), a Federation's
/// merged series, or any buffered slice of either — into the all-pairs
/// Φ matrix through SimilarityMatrix::append_batch(): one batched fold
/// instead of per-epoch appends, so anchor selection and the packed-row
/// column fills amortize across the whole slice. Bit-identical to an
/// append() loop (and to compute() over a Dataset carrying the same
/// series); @p weights / @p threads as in SimilarityMatrix::compute().
core::SimilarityMatrix fold_phi(
    std::span<const core::RoutingVector> series,
    core::UnknownPolicy policy = core::UnknownPolicy::kPessimistic,
    std::vector<double> weights = {}, unsigned threads = 0);

class Campaign {
 public:
  /// All probers must report the same target_count; keys come from the
  /// first. Probers and the optional fault plan must outlive the
  /// campaign. Throws CampaignError on an empty or mismatched set.
  Campaign(std::vector<const TargetProber*> probers, CampaignConfig config);

  /// Injects faults (loss bursts, outages, collector gaps, kills). Pass
  /// nullptr to disable. With no plan — or an empty one — the campaign
  /// is exactly the retry/breaker/coverage machinery, nothing else.
  void set_fault_plan(const chaos::FaultPlan* plan) noexcept {
    plan_ = plan;
  }

  /// Streams one JSONL entry per finished sweep (plus one per breaker
  /// transition) into @p journal — the write-ahead record a killed
  /// campaign leaves behind (obs/journal.h; schema in DESIGN.md §9).
  /// Pass nullptr to detach. The journal must outlive the campaign.
  void set_journal(obs::Journal* journal) noexcept { journal_ = journal; }

  /// The journal entry finish_sweep() would write for @p report —
  /// exposed so tests and `fenrirctl journal` replay against the exact
  /// writer-side format.
  static std::string journal_entry(const SweepReport& report, bool valid);

  /// Runs sweeps up to @p sweep_count (resuming mid-sweep if a
  /// checkpoint said so). The result carries the FULL accumulated
  /// series, so a resumed campaign returns the same result an
  /// uninterrupted one would. Never throws on injected faults.
  CampaignResult run(std::size_t sweep_count);

  /// Like run() but without materializing a result copy — the driver
  /// reads series()/reports() in place (measure::Federation advances
  /// members one epoch at a time this way). Returns false when a fault
  /// plan kill interrupted the run; state is left resumable.
  bool advance(std::size_t sweep_count);

  /// Serializes the complete campaign state (position, partial sweep,
  /// health table, finished series/reports) as dataset_io-style CSV.
  /// SiteIds are stored numerically: resume with the same site table.
  void save_checkpoint(std::ostream& out) const;
  void save_checkpoint_file(const std::string& path) const;

  /// Restores a checkpoint into a campaign constructed with the same
  /// probers and config. Throws CampaignError on malformed input or a
  /// target-count mismatch.
  void load_checkpoint(std::istream& in);
  void load_checkpoint_file(const std::string& path);

  std::size_t target_count() const noexcept { return targets_; }
  std::size_t next_sweep() const noexcept { return sweep_; }
  const chaos::FaultClock& clock() const noexcept { return clock_; }
  const TargetHealth& health(std::size_t index) const {
    return health_.at(index);
  }
  const SweepSchedule& schedule() const noexcept { return schedule_; }
  /// Finished sweeps so far, in place (what run() copies out).
  const std::vector<core::RoutingVector>& series() const noexcept {
    return series_;
  }
  const std::vector<SweepReport>& reports() const noexcept {
    return reports_;
  }
  /// The floor the NEXT sweep will be judged against.
  double current_floor() const noexcept;
  /// The breaker threshold in effect (scaled by ambient coverage when
  /// the adaptive floor is enabled).
  int effective_open_after() const noexcept;

 private:
  /// Per-target outcome within the current sweep.
  enum class Outcome : std::uint8_t {
    kPending = 0,   // not yet probed this sweep
    kAnswered = 1,
    kRetrying = 2,  // first attempt failed; queued for retry waves
    kRetriedOut = 3,
    kBroken = 4,    // skipped, breaker open
    kUnrouted = 5,
  };

  ProbeReply probe_slot(std::size_t index, core::TimePoint when);
  void begin_sweep();
  /// Runs the current sweep from next_index_. Returns false when a kill
  /// fired (state is left resumable), true when the sweep completed.
  bool run_current_sweep();
  void run_retry_waves();
  void finish_sweep();
  void update_health();

  std::vector<const TargetProber*> probers_;
  CampaignConfig config_;
  std::size_t targets_;
  SweepSchedule schedule_;
  const chaos::FaultPlan* plan_ = nullptr;
  obs::Journal* journal_ = nullptr;
  chaos::FaultClock clock_;

  // Campaign position.
  std::size_t sweep_ = 0;
  std::size_t next_index_ = 0;
  bool in_sweep_ = false;
  std::size_t kills_fired_ = 0;

  // Current-sweep working state (meaningful while in_sweep_).
  std::vector<Outcome> outcome_;
  std::vector<core::SiteId> assignment_;
  SweepReport tally_;

  // Cross-sweep state.
  std::vector<TargetHealth> health_;
  AdaptiveFloor floor_;
  std::vector<core::RoutingVector> series_;
  std::vector<SweepReport> reports_;
};

}  // namespace fenrir::measure
