#include "measure/traceroute.h"

#include <cmath>
#include <stdexcept>

namespace fenrir::measure {

TracerouteProbe::TracerouteProbe(bgp::AsGraph& graph, bgp::AsIndex enterprise,
                                 TracerouteConfig config,
                                 netbase::Ipv4Addr infra_base)
    : graph_(&graph),
      enterprise_(enterprise),
      config_(config),
      infra_base_block_(netbase::block24_index(infra_base)) {
  if (enterprise >= graph.as_count()) {
    throw std::out_of_range("TracerouteProbe: bad enterprise AS");
  }
  // One infrastructure /24 per AS so hop addresses attribute back to
  // their owner through ordinary longest-prefix matching.
  for (bgp::AsIndex as = 0; as < graph.as_count(); ++as) {
    graph.announce_prefix(
        netbase::block24_from_index(infra_base_block_ + as), as);
  }
}

netbase::Ipv4Addr TracerouteProbe::router_addr(bgp::AsIndex as,
                                               int which) const {
  const std::uint32_t host =
      1 + static_cast<std::uint32_t>(which) % 250;
  return netbase::Ipv4Addr(((infra_base_block_ + as) << 8) | host);
}

std::optional<bgp::AsIndex> TracerouteProbe::hop_owner(
    const bgp::AsGraph& graph, netbase::Ipv4Addr addr) const {
  if (addr.is_private()) return std::nullopt;
  return graph.origin_of(addr);
}

bool TracerouteProbe::filters_icmp(bgp::AsIndex as) const {
  if (const auto it = filter_override_.find(as);
      it != filter_override_.end()) {
    return it->second;
  }
  if (as == enterprise_) return false;  // we answer our own probes
  const std::uint64_t h = rng::mix(config_.seed, 0xf117e2ULL, as);
  return static_cast<double>(h >> 11) * 0x1.0p-53 <
         config_.filtering_as_fraction;
}

TracerouteResult TracerouteProbe::trace(
    core::TimePoint time, std::uint32_t dst_block,
    std::span<const bgp::AsIndex> forward_path) const {
  TracerouteResult result;
  const auto respond = [&](std::uint64_t salt, double prob) {
    // Probability any of the configured attempts answers.
    const double p_any =
        1.0 - std::pow(1.0 - prob, config_.attempts_per_hop);
    const std::uint64_t h = rng::mix(
        config_.seed,
        rng::mix(salt, dst_block, static_cast<std::uint64_t>(time)));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < p_any;
  };

  // Internal enterprise hops: private addressing, always responsive.
  for (int i = 0; i < config_.enterprise_internal_hops; ++i) {
    if (static_cast<int>(result.hops.size()) >= config_.max_hops) {
      return result;
    }
    result.hops.push_back(
        TracerouteHop{netbase::Ipv4Addr(10, 0, static_cast<std::uint8_t>(i),
                                        1)});
  }

  // Forward AS path selected by the routing substrate (enterprise first).
  const std::span<const bgp::AsIndex> path = forward_path;
  if (path.empty()) {
    // Unreachable destination: stars until the hop cap.
    while (static_cast<int>(result.hops.size()) < config_.max_hops) {
      result.hops.push_back(TracerouteHop{std::nullopt});
    }
    return result;
  }

  for (std::size_t i = 0; i < path.size(); ++i) {
    if (static_cast<int>(result.hops.size()) >= config_.max_hops) {
      return result;
    }
    const bgp::AsIndex as = path[i];
    const int which =
        static_cast<int>(rng::mix(config_.seed, as, dst_block) % 4);
    const bool answers =
        !filters_icmp(as) && respond(0x40b0 + as, config_.hop_response_prob);
    result.hops.push_back(
        TracerouteHop{answers ? std::optional(router_addr(as, which))
                              : std::nullopt});
  }

  // Destination host inside the final AS's /24.
  if (static_cast<int>(result.hops.size()) < config_.max_hops) {
    const bool answers = respond(0xd057, 0.7);
    if (answers) {
      result.hops.push_back(
          TracerouteHop{netbase::Ipv4Addr((dst_block << 8) | 1)});
      result.reached = true;
    } else {
      result.hops.push_back(TracerouteHop{std::nullopt});
    }
  }
  return result;
}

std::optional<bgp::AsIndex> TracerouteProbe::focus_catchment(
    const bgp::AsGraph& graph, const TracerouteResult& result, int focus_hop,
    int max_fill_distance) const {
  const auto owner_at = [&](int hop_index) -> std::optional<bgp::AsIndex> {
    if (hop_index < 1 ||
        hop_index > static_cast<int>(result.hops.size())) {
      return std::nullopt;
    }
    const auto& hop = result.hops[static_cast<std::size_t>(hop_index - 1)];
    if (!hop.addr) return std::nullopt;
    return hop_owner(graph, *hop.addr);
  };

  if (const auto direct = owner_at(focus_hop)) return direct;
  // Paper's spatial redundancy: borrow the nearest viable hop, preferring
  // the one closer to the enterprise on ties.
  for (int d = 1; d <= max_fill_distance; ++d) {
    if (const auto before = owner_at(focus_hop - d)) return before;
    if (const auto after = owner_at(focus_hop + d)) return after;
  }
  return std::nullopt;
}

}  // namespace fenrir::measure
