#include "measure/controlplane.h"

#include <stdexcept>

#include "measure/site_map.h"

namespace fenrir::measure {

ControlPlaneProbe::ControlPlaneProbe(
    const netbase::Hitlist* hitlist,
    std::unordered_map<std::uint32_t, std::uint32_t> origin_site)
    : hitlist_(hitlist), origin_site_(std::move(origin_site)) {
  if (hitlist_ == nullptr) {
    throw std::invalid_argument("ControlPlaneProbe: null hitlist");
  }
}

void ControlPlaneProbe::ingest(const bgp::CollectedUpdate& update) {
  const bgp::UpdateMessage msg = bgp::UpdateMessage::decode(update.wire);
  if (!msg.withdrawn.empty()) {
    peer_site_.erase(update.peer);
  }
  if (!msg.nlri.empty()) {
    const auto origin = msg.origin_asn();
    if (!origin) throw bgp::BgpError("announcement without AS path");
    const auto it = origin_site_.find(*origin);
    peer_site_[update.peer] = it == origin_site_.end() ? kNoSite : it->second;
  }
}

std::optional<std::uint32_t> ControlPlaneProbe::observed_site(
    bgp::AsIndex as) const {
  const auto it = peer_site_.find(as);
  if (it == peer_site_.end()) return std::nullopt;
  return it->second;
}

std::vector<core::SiteId> ControlPlaneProbe::estimate(
    const bgp::AsGraph& graph,
    const std::vector<core::SiteId>& site_to_core) const {
  std::vector<core::SiteId> out(hitlist_->size(), core::kUnknownSite);
  for (std::size_t i = 0; i < hitlist_->size(); ++i) {
    const auto as = graph.origin_of(hitlist_->target(i));
    if (!as) continue;

    // The stub itself, then its direct providers.
    std::optional<std::uint32_t> site = observed_site(*as);
    if (!site) {
      for (const auto& link : graph.node(*as).links) {
        if (!link.up || link.relation != bgp::Relation::kProvider) continue;
        site = observed_site(link.neighbor);
        if (site) break;
      }
    }
    if (!site) continue;
    out[i] = (*site == kNoSite) ? core::kOtherSite
                                : map_site(site_to_core, *site, "controlplane");
  }
  return out;
}

}  // namespace fenrir::measure
