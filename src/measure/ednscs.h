// fenrir::measure — EDNS Client-Subnet mapping of website front-ends.
//
// The Calder et al. technique the paper adopts: one observer issues DNS
// A queries for the site's hostname with an EDNS Client-Subnet option
// naming each prefix of interest; a CS-aware authoritative answers with
// the front-end it would hand a client in that prefix. Sweeping millions
// of prefixes maps the site's global catchments from a single host.
//
// The exchange runs on real wire bytes (dns::ClientSubnet build/parse).
// Server-side selection is pluggable:
//
//   * GeoNearestPolicy — pick the nearest active site (Wikipedia-style
//     geographic steering), with drain windows per site;
//   * ChurnPolicy — Google-style: each prefix has a pool of nearby
//     front-end clusters and is re-hashed onto one per remap epoch, with
//     daily micro-churn, over front-end "generations" that replace the
//     whole fleet between eras (the 2013-vs-2024 contrast).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/tables.h"
#include "core/time.h"
#include "dns/edns.h"
#include "geo/geo.h"
#include "netbase/ipv4.h"
#include "rng/rng.h"

namespace fenrir::measure {

struct FrontEnd {
  std::uint32_t site = 0;        // service site index (catchment label)
  netbase::Ipv4Addr addr;        // the A record handed out
  geo::Coord location;
  /// Fleet generation (ChurnPolicy only selects front-ends of the current
  /// generation; a generation switch replaces the whole serving fleet).
  std::uint32_t generation = 0;
};

/// Chooses a front-end for (client prefix, time). Implementations must be
/// deterministic in their inputs.
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;
  /// Index into the service's front-end table, or nullopt for SERVFAIL
  /// (e.g. every site drained).
  virtual std::optional<std::size_t> select(
      const netbase::Prefix& client, core::TimePoint time,
      const std::vector<FrontEnd>& front_ends) const = 0;
};

/// Nearest active site by great-circle distance, with the operational
/// wrinkles the Wikipedia study needs: per-site drain windows, per-site
/// distance-penalty windows (a site returning from maintenance at reduced
/// preference attracts only its closest clients back — the paper's "only
/// 30% of codfw's original clients return"), and a small flap fraction of
/// prefixes that oscillate between their two nearest sites day to day
/// (ordinary routing noise keeping intra-mode Φ below 1).
class GeoNearestPolicy : public SelectionPolicy {
 public:
  /// @p prefix_locator resolves a client prefix to coordinates (scenarios
  /// pass a lookup into the topology).
  using Locator = std::function<std::optional<geo::Coord>(
      const netbase::Prefix&)>;
  explicit GeoNearestPolicy(Locator prefix_locator, double flap_fraction = 0.0,
                            std::uint64_t seed = 0)
      : locator_(std::move(prefix_locator)),
        flap_fraction_(flap_fraction),
        seed_(seed) {}

  /// Drains @p site during [from, to).
  void add_drain_window(std::uint32_t site, core::TimePoint from,
                        core::TimePoint to);

  /// Multiplies @p site's effective distance by @p factor during
  /// [from, to) — models a post-maintenance return at reduced preference.
  void add_penalty_window(std::uint32_t site, core::TimePoint from,
                          core::TimePoint to, double factor);

  std::optional<std::size_t> select(
      const netbase::Prefix& client, core::TimePoint time,
      const std::vector<FrontEnd>& front_ends) const override;

 private:
  struct Drain {
    std::uint32_t site;
    core::TimePoint from, to;
  };
  struct Penalty {
    std::uint32_t site;
    core::TimePoint from, to;
    double factor;
  };
  bool drained(std::uint32_t site, core::TimePoint t) const;
  double penalty(std::uint32_t site, core::TimePoint t) const;
  Locator locator_;
  double flap_fraction_;
  std::uint64_t seed_;
  std::vector<Drain> drains_;
  std::vector<Penalty> penalties_;
};

/// Google-style aggressive churn.
class ChurnPolicy : public SelectionPolicy {
 public:
  struct Config {
    /// Pool: the prefix's k nearest front-ends are its candidates.
    std::size_t candidate_pool = 4;
    /// Remap epoch length (the paper's ~weekly cadence).
    core::TimePoint epoch = 7 * core::kDay;
    /// Fraction of prefixes re-hashed each day within an epoch.
    double daily_churn = 0.10;
    /// Generation boundaries: at each TimePoint in this list the fleet is
    /// considered replaced (selection re-salted and front-end subset
    /// switched), so vectors across a boundary share nothing.
    std::vector<core::TimePoint> generation_starts;
    std::uint64_t seed = 1;
  };
  using Locator = GeoNearestPolicy::Locator;

  ChurnPolicy(Locator prefix_locator, Config config)
      : locator_(std::move(prefix_locator)), config_(std::move(config)) {}

  std::optional<std::size_t> select(
      const netbase::Prefix& client, core::TimePoint time,
      const std::vector<FrontEnd>& front_ends) const override;

 private:
  std::uint64_t generation_of(core::TimePoint t) const;
  Locator locator_;
  Config config_;
};

/// The authoritative server: parses the wire query, applies the policy,
/// answers with the chosen front-end's A record and the client-subnet
/// option echoed with a /24 scope.
class WebsiteService {
 public:
  WebsiteService(std::string hostname, std::vector<FrontEnd> front_ends,
                 std::unique_ptr<SelectionPolicy> policy)
      : hostname_(std::move(hostname)),
        front_ends_(std::move(front_ends)),
        policy_(std::move(policy)) {}

  const std::string& hostname() const noexcept { return hostname_; }
  const std::vector<FrontEnd>& front_ends() const noexcept {
    return front_ends_;
  }

  /// Handles raw query bytes at @p time; returns response wire bytes.
  std::vector<std::uint8_t> handle(std::span<const std::uint8_t> query,
                                   core::TimePoint time) const;

  /// Service site index of the front-end owning @p addr (how the probe's
  /// operator maps returned A records to site labels), nullopt if alien.
  std::optional<std::uint32_t> site_of_addr(netbase::Ipv4Addr addr) const;

 private:
  std::string hostname_;
  std::vector<FrontEnd> front_ends_;
  std::unique_ptr<SelectionPolicy> policy_;
};

struct EdnsCsConfig {
  double query_loss = 0.005;
  std::uint64_t seed = 1;
};

/// The probe: sweeps a prefix list through the service.
class EdnsCsProbe {
 public:
  EdnsCsProbe(std::vector<netbase::Prefix> prefixes, EdnsCsConfig config)
      : prefixes_(std::move(prefixes)), config_(config) {}

  const std::vector<netbase::Prefix>& prefixes() const noexcept {
    return prefixes_;
  }

  /// One sweep: a core::SiteId per prefix. err on loss/SERVFAIL, other on
  /// an A record outside the known front-end set.
  std::vector<core::SiteId> measure(
      core::TimePoint time, const WebsiteService& service,
      const std::vector<core::SiteId>& site_to_core) const;

 private:
  std::vector<netbase::Prefix> prefixes_;
  EdnsCsConfig config_;
};

}  // namespace fenrir::measure
