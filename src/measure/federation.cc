#include "measure/federation.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "io/csv.h"
#include "obs/events.h"
#include "obs/journal.h"
#include "obs/lineage.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/metrics_window.h"
#include "obs/span.h"
#include "obs/status_board.h"

namespace fenrir::measure {

namespace {

constexpr const char* kMagic = "#fenrir-federation-checkpoint";
constexpr const char* kVersion = "v1";

/// Sentinel for "this member never answered this target".
constexpr std::size_t kNever = static_cast<std::size_t>(-1);

struct Metrics {
  obs::Counter& epochs;
  obs::Counter& member_sweeps;
  obs::Counter& stale_served;
  obs::Counter& aged_out;
  obs::Counter& deaths;
  obs::Counter& rejoins;
  obs::Counter& disagreements;
  obs::Counter& low_coverage;
  obs::Counter& resumes;
  obs::Gauge& coverage;
  obs::Gauge& floor;
  obs::Gauge& members_healthy;
  obs::Gauge& members_dead;
};

Metrics& metrics() {
  static Metrics m{
      obs::registry().counter("fenrir_federation_epochs_total",
                              "federation epochs merged"),
      obs::registry().counter("fenrir_federation_member_sweeps_total",
                              "member sweeps folded into the federation"),
      obs::registry().counter("fenrir_federation_stale_served_total",
                              "targets served from a stale member answer"),
      obs::registry().counter("fenrir_federation_aged_out_total",
                              "targets whose only answers aged out"),
      obs::registry().counter("fenrir_federation_deaths_total",
                              "members declared dead"),
      obs::registry().counter("fenrir_federation_rejoins_total",
                              "dead members that rejoined"),
      obs::registry().counter("fenrir_federation_disagreements_total",
                              "targets where fresh member votes conflicted"),
      obs::registry().counter("fenrir_federation_low_coverage_epochs_total",
                              "epochs emitted invalid: below adaptive floor"),
      obs::registry().counter("fenrir_federation_resumes_total",
                              "federations resumed from a checkpoint"),
      obs::registry().gauge("fenrir_federation_coverage",
                            "last epoch's served/targets"),
      obs::registry().gauge("fenrir_federation_adaptive_floor",
                            "floor the next epoch will be judged against"),
      obs::registry().gauge("fenrir_federation_members_healthy",
                            "members healthy or rejoined after last epoch"),
      obs::registry().gauge("fenrir_federation_members_dead",
                            "members dead after last epoch"),
  };
  return m;
}

std::uint64_t parse_u64_field(const std::string& text, const char* what) {
  std::uint64_t out = 0;
  std::size_t pos = 0;
  try {
    out = std::stoull(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (text.empty() || pos != text.size()) {
    throw FederationError(std::string("checkpoint: bad ") + what + ": " +
                          text);
  }
  return out;
}

/// A member's view: its slice of the global target list, probed through
/// its own clock (the member schedules in local time; the world answers
/// in true time).
class SubsetProber : public TargetProber {
 public:
  SubsetProber(const TargetProber& parent, const std::vector<std::size_t>& slice,
               chaos::ClockModel clock)
      : parent_(&parent), slice_(slice), clock_(clock) {}

  std::size_t target_count() const override { return slice_.size(); }
  std::uint64_t target_key(std::size_t index) const override {
    return parent_->target_key(slice_.at(index));
  }
  ProbeReply probe(std::size_t index, core::TimePoint when) const override {
    return parent_->probe(slice_[index], clock_.to_true(when));
  }

 private:
  const TargetProber* parent_;
  const std::vector<std::size_t>& slice_;
  chaos::ClockModel clock_;
};

/// Locks the member's sweep period to the federation epoch and anchors
/// its schedule in member-local time.
CampaignConfig derive_campaign_config(const FederationConfig& fed,
                                      const MemberConfig& m) {
  CampaignConfig c = m.campaign;
  if (c.packets_per_second <= 0) {
    throw FederationError("federation member '" + m.name +
                          "': packets_per_second must be > 0");
  }
  const auto active =
      static_cast<core::TimePoint>(static_cast<double>(m.targets.size()) /
                                   c.packets_per_second) +
      1;
  if (active > fed.epoch_length) {
    throw FederationError("federation member '" + m.name +
                          "': sweep does not fit in one epoch");
  }
  c.idle_gap = fed.epoch_length - active;  // SweepSchedule period == epoch
  c.start = m.clock.to_local(fed.start + m.start_offset);
  return c;
}

}  // namespace

const char* to_string(MemberHealth h) noexcept {
  switch (h) {
    case MemberHealth::kHealthy: return "healthy";
    case MemberHealth::kLagging: return "lagging";
    case MemberHealth::kDead: return "dead";
    case MemberHealth::kRejoined: return "rejoined";
  }
  return "?";
}

struct Federation::MemberState {
  MemberState(const TargetProber& parent, const FederationConfig& fed,
              MemberConfig cfg)
      : config(std::move(cfg)),
        prober(parent, config.targets, config.clock),
        campaign({&prober}, derive_campaign_config(fed, config)) {
    campaign.set_fault_plan(config.faults);
    reset_fold_state();
  }

  /// Clears everything the merge fold derives (kept out of the member
  /// campaign, which owns its own checkpoint).
  void reset_fold_state() {
    state = MemberHealth::kHealthy;
    lag = 0;
    last_site.assign(config.targets.size(), core::kUnknownSite);
    last_epoch.assign(config.targets.size(), kNever);
    AdaptiveFloor::Config wcfg;  // defaults: alpha .25, warmup 3
    wcfg.initial = 1.0;
    weight = AdaptiveFloor(wcfg);
  }

  MemberConfig config;
  SubsetProber prober;
  Campaign campaign;

  // Health machine.
  MemberHealth state = MemberHealth::kHealthy;
  int lag = 0;

  // Freshness tables, member-local index -> last known answer.
  std::vector<core::SiteId> last_site;
  std::vector<std::size_t> last_epoch;

  /// Coverage EWMA feeding this member's voting weight.
  AdaptiveFloor weight;
};

Federation::Federation(const TargetProber& prober, FederationConfig config,
                       std::vector<MemberConfig> members)
    : config_(config) {
  if (config_.global_targets == 0) {
    throw FederationError("Federation: global_targets must be > 0");
  }
  if (prober.target_count() < config_.global_targets) {
    throw FederationError("Federation: prober smaller than target universe");
  }
  if (config_.epoch_length <= 0) {
    throw FederationError("Federation: epoch_length must be > 0");
  }
  if (config_.dead_after < 1) {
    throw FederationError("Federation: dead_after must be >= 1");
  }
  if (members.empty()) throw FederationError("Federation: no members");
  for (const MemberConfig& m : members) {
    if (m.targets.empty()) {
      throw FederationError("federation member '" + m.name + "': no targets");
    }
    for (const std::size_t g : m.targets) {
      if (g >= config_.global_targets) {
        throw FederationError("federation member '" + m.name +
                              "': target index out of range");
      }
    }
    if (m.start_offset < 0 || m.start_offset >= config_.epoch_length) {
      throw FederationError("federation member '" + m.name +
                            "': start_offset must be in [0, epoch_length)");
    }
    if (m.clock.drift_ppm <= -1'000'000) {
      throw FederationError("federation member '" + m.name +
                            "': clock runs backwards (drift_ppm <= -1e6)");
    }
  }
  members_.reserve(members.size());
  for (MemberConfig& m : members) {
    members_.push_back(
        std::make_unique<MemberState>(prober, config_, std::move(m)));
  }
  AdaptiveFloor::Config fcfg = config_.floor_tuning;
  fcfg.initial = config_.coverage_floor;
  floor_ = AdaptiveFloor(fcfg);
}

Federation::~Federation() = default;

const Campaign& Federation::member(std::size_t i) const {
  return members_.at(i)->campaign;
}

MemberHealth Federation::member_health(std::size_t i) const {
  return members_.at(i)->state;
}

double Federation::member_weight(std::size_t i) const {
  const MemberState& m = *members_.at(i);
  if (m.weight.samples() < m.weight.config().warmup) return 1.0;
  return std::clamp(m.weight.mean(), 0.05, 1.0);
}

std::size_t Federation::epoch_of(core::TimePoint t) const noexcept {
  if (t <= config_.start) return 0;
  return static_cast<std::size_t>((t - config_.start) / config_.epoch_length);
}

void Federation::update_member_health(std::size_t index, std::size_t epoch,
                                      bool fresh) {
  MemberState& m = *members_[index];
  if (fresh) {
    m.lag = 0;
    switch (m.state) {
      case MemberHealth::kDead:
        m.state = MemberHealth::kRejoined;
        if (!replaying_) {
          metrics().rejoins.inc();
          obs::event_bus().emit(
              obs::Severity::kNotice, "prober_rejoined",
              "\"epoch\":" + std::to_string(epoch) +
                  ",\"member\":" + std::to_string(index) + ",\"name\":\"" +
                  m.config.name + "\"");
        }
        break;
      case MemberHealth::kRejoined:
      case MemberHealth::kLagging:
        m.state = MemberHealth::kHealthy;
        break;
      case MemberHealth::kHealthy:
        break;
    }
    return;
  }
  if (m.state == MemberHealth::kDead) return;
  ++m.lag;
  if (m.lag >= config_.dead_after) {
    m.state = MemberHealth::kDead;
    if (!replaying_) {
      metrics().deaths.inc();
      obs::event_bus().emit(
          obs::Severity::kWarn, "prober_dead",
          "\"epoch\":" + std::to_string(epoch) +
              ",\"member\":" + std::to_string(index) + ",\"name\":\"" +
              m.config.name + "\",\"lagging_epochs\":" + std::to_string(m.lag));
    }
  } else {
    m.state = MemberHealth::kLagging;
  }
}

std::string Federation::journal_entry(const EpochReport& r) {
  std::ostringstream os;
  os << "{\"type\":\"epoch\",\"epoch\":" << r.epoch << ",\"start\":" << r.start
     << ",\"end\":" << r.end << ",\"targets\":" << r.targets
     << ",\"fresh\":" << r.fresh << ",\"stale\":" << r.stale
     << ",\"aged_out\":" << r.aged_out << ",\"unserved\":" << r.unserved
     << ",\"disagreements\":" << r.disagreements
     << ",\"coverage\":" << obs::render_double(r.coverage())
     << ",\"floor\":" << obs::render_double(r.floor)
     << ",\"low_coverage\":" << (r.low_coverage ? "true" : "false")
     << ",\"members_healthy\":" << r.members_healthy
     << ",\"members_lagging\":" << r.members_lagging
     << ",\"members_dead\":" << r.members_dead << "}";
  return os.str();
}

void Federation::fold_epoch(std::size_t epoch) {
  const std::size_t n = config_.global_targets;
  EpochReport rep;
  rep.epoch = epoch;
  rep.start = config_.start +
              static_cast<core::TimePoint>(epoch) * config_.epoch_length;
  rep.end = rep.start + config_.epoch_length;
  rep.targets = n;
  rep.floor = floor_.floor();

  // 1. Ingest each member's sweep for this epoch: align its local start
  // to true time through the member's clock model, update the freshness
  // tables from valid sweeps, and drive the health machine. Member
  // order is index order — the whole fold is deterministic.
  for (std::size_t mi = 0; mi < members_.size(); ++mi) {
    MemberState& m = *members_[mi];
    const core::RoutingVector& v = m.campaign.series().at(epoch);
    const SweepReport& sweep = m.campaign.reports().at(epoch);
    const std::size_t aligned =
        epoch_of(m.config.clock.to_true(sweep.start));
    bool fresh = false;
    if (v.valid) {
      for (std::size_t j = 0; j < m.config.targets.size(); ++j) {
        const core::SiteId s = v.assignment[j];
        if (s == core::kUnknownSite) continue;
        if (m.last_epoch[j] == kNever || aligned >= m.last_epoch[j]) {
          m.last_site[j] = s;
          m.last_epoch[j] = aligned;
        }
      }
      // A drifted clock can land a sweep in the wrong epoch: the data
      // still merges (at its aligned staleness) but the member does not
      // count as fresh — drift shows up as lag, which is exactly how a
      // merge point experiences it.
      fresh = aligned == epoch;
      m.weight.observe(sweep.coverage());
    }
    update_member_health(mi, epoch, fresh);
    if (!replaying_) {
      metrics().member_sweeps.inc();
      if (journal_ != nullptr) {
        std::ostringstream os;
        os << "{\"type\":\"member\",\"epoch\":" << epoch
           << ",\"member\":" << mi << ",\"name\":\"" << m.config.name
           << "\",\"aligned_epoch\":" << aligned
           << ",\"fresh\":" << (fresh ? "true" : "false")
           << ",\"coverage\":" << obs::render_double(sweep.coverage())
           << ",\"weight\":" << obs::render_double(member_weight(mi))
           << ",\"state\":\"" << to_string(m.state) << "\"}";
        journal_->append(os.str());
      }
    }
  }

  // 2. Merge: per target, coverage-weighted vote among answers within
  // the staleness bound. Ties break to the smallest SiteId; provenance
  // credits the freshest (then smallest-index) member voting for the
  // winner.
  struct Vote {
    double weight;
    std::size_t member;
    std::size_t staleness;
    core::SiteId site;
  };
  std::vector<std::vector<Vote>> votes(n);
  std::vector<char> any_aged(n, 0);
  for (std::size_t mi = 0; mi < members_.size(); ++mi) {
    const MemberState& m = *members_[mi];
    const double w = member_weight(mi);
    for (std::size_t j = 0; j < m.config.targets.size(); ++j) {
      if (m.last_epoch[j] == kNever) continue;
      const std::size_t g = m.config.targets[j];
      // A drift-ahead answer (aligned epoch beyond the current one)
      // clamps to fresh rather than going negative.
      const std::size_t staleness =
          m.last_epoch[j] >= epoch ? 0 : epoch - m.last_epoch[j];
      if (staleness > config_.staleness_bound) {
        any_aged[g] = 1;
        continue;
      }
      votes[g].push_back(Vote{w, mi, staleness, m.last_site[j]});
    }
  }

  core::RoutingVector out;
  out.time = rep.start;
  out.assignment.assign(n, core::kUnknownSite);
  std::vector<TargetProvenance> prov(n);
  for (std::size_t g = 0; g < n; ++g) {
    if (votes[g].empty()) {
      ++rep.unserved;
      if (any_aged[g]) ++rep.aged_out;
      continue;
    }
    std::map<core::SiteId, double> sums;
    for (const Vote& v : votes[g]) sums[v.site] += v.weight;
    auto best = sums.begin();
    for (auto it = sums.begin(); it != sums.end(); ++it) {
      if (it->second > best->second) best = it;  // ties keep smaller SiteId
    }
    const core::SiteId winner = best->first;
    out.assignment[g] = winner;

    const Vote* credit = nullptr;
    std::map<core::SiteId, char> fresh_sites;
    for (const Vote& v : votes[g]) {
      if (v.staleness == 0) fresh_sites[v.site] = 1;
      if (v.site != winner) continue;
      if (credit == nullptr || v.staleness < credit->staleness ||
          (v.staleness == credit->staleness && v.member < credit->member)) {
        credit = &v;
      }
    }
    prov[g].member = credit->member;
    prov[g].staleness = credit->staleness;
    prov[g].disagreed = fresh_sites.size() > 1;
    if (prov[g].disagreed) ++rep.disagreements;
    if (prov[g].staleness == 0) {
      ++rep.fresh;
    } else {
      ++rep.stale;
    }
  }

  rep.low_coverage = rep.coverage() < rep.floor;
  out.valid = !rep.low_coverage;
  for (const auto& m : members_) {
    switch (m->state) {
      case MemberHealth::kHealthy:
      case MemberHealth::kRejoined:
        ++rep.members_healthy;
        break;
      case MemberHealth::kLagging:
        ++rep.members_lagging;
        break;
      case MemberHealth::kDead:
        ++rep.members_dead;
        break;
    }
  }

  if (!replaying_) {
    metrics().epochs.inc();
    metrics().stale_served.inc(rep.stale);
    metrics().aged_out.inc(rep.aged_out);
    metrics().disagreements.inc(rep.disagreements);
    metrics().coverage.set(rep.coverage());
    if (rep.stale > 0 || rep.aged_out > 0) {
      // Aged-out answers mean the merge is actively losing ground, not
      // just coasting on cache — that earns a warning.
      obs::event_bus().emit(
          rep.aged_out > 0 ? obs::Severity::kWarn : obs::Severity::kNotice,
          "provenance_stale",
          "\"epoch\":" + std::to_string(epoch) +
              ",\"stale\":" + std::to_string(rep.stale) +
              ",\"aged_out\":" + std::to_string(rep.aged_out));
    }
    if (rep.low_coverage) {
      metrics().low_coverage.inc();
      obs::event_bus().emit(
          obs::Severity::kWarn, "federation_low_coverage",
          "\"epoch\":" + std::to_string(epoch) +
              ",\"coverage\":" + obs::render_double(rep.coverage()) +
              ",\"floor\":" + obs::render_double(rep.floor));
    }
    if (journal_ != nullptr) journal_->append(journal_entry(rep));
    FENRIR_LOG(Debug)
            .field("epoch", epoch)
            .field("fresh", rep.fresh)
            .field("stale", rep.stale)
            .field("aged_out", rep.aged_out)
            .field("unserved", rep.unserved)
            .field("dead", rep.members_dead)
        << "federation epoch";
    {
      std::ostringstream os;
      os << "{\"epochs_completed\":" << (epoch + 1)
         << ",\"last_coverage\":" << obs::render_double(rep.coverage())
         << ",\"floor\":" << obs::render_double(rep.floor)
         << ",\"members_healthy\":" << rep.members_healthy
         << ",\"members_dead\":" << rep.members_dead
         << ",\"stale\":" << rep.stale << ",\"aged_out\":" << rep.aged_out
         << "}";
      obs::status_board().publish("federation", os.str());
    }
    obs::metrics_history().sample(false);
  }

  // The floor judging epoch e came from epochs < e; feed the EWMA only
  // afterwards, and never from a flagged epoch (same discipline as the
  // campaign floor — an outage must not normalize darkness).
  if (!rep.low_coverage) floor_.observe(rep.coverage());
  if (!replaying_) {
    metrics().floor.set(floor_.floor());
    metrics().members_healthy.set(static_cast<double>(rep.members_healthy));
    metrics().members_dead.set(static_cast<double>(rep.members_dead));
  }

  series_.push_back(std::move(out));
  reports_.push_back(rep);
  provenance_.push_back(std::move(prov));
}

bool Federation::step_epoch() {
  const std::size_t epoch = reports_.size();
  for (std::size_t mi = 0; mi < members_.size(); ++mi) {
    if (!members_[mi]->campaign.advance(epoch + 1)) {
      FENRIR_LOG(Warn)
              .field("epoch", epoch)
              .field("member", mi)
          << "federation member killed mid-sweep (fault plan)";
      return false;
    }
  }
  fold_epoch(epoch);
  return true;
}

FederationResult Federation::run(std::size_t epoch_count) {
  obs::Span span("federation/run");
  FederationResult out;
  while (reports_.size() < epoch_count) {
    if (!step_epoch()) {
      out.interrupted = true;
      break;
    }
  }
  out.series = series_;
  out.reports = reports_;
  out.provenance = provenance_;
  return out;
}

void Federation::save_checkpoint_dir(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw FederationError("cannot create checkpoint dir " + dir + ": " +
                          ec.message());
  }
  {
    const std::string path = dir + "/federation.csv";
    std::ofstream out(path);
    if (!out) throw FederationError("cannot open " + path + " for writing");
    io::CsvWriter csv(out);
    csv.row(kMagic, kVersion);
    csv.row("members", members_.size());
    csv.row("targets", config_.global_targets);
    csv.row("epochs", reports_.size());
    if (!out) throw FederationError("checkpoint write failed: " + path);
  }
  for (std::size_t mi = 0; mi < members_.size(); ++mi) {
    members_[mi]->campaign.save_checkpoint_file(dir + "/member_" +
                                                std::to_string(mi) + ".csv");
  }
}

void Federation::load_checkpoint_dir(const std::string& dir) {
  const std::string path = dir + "/federation.csv";
  std::ifstream in(path);
  if (!in) throw FederationError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto rows = io::parse_csv(buffer.str());
  if (rows.size() < 4 || rows[0].size() < 2 || rows[0][0] != kMagic) {
    throw FederationError("not a federation checkpoint (bad magic)");
  }
  if (rows[0][1] != kVersion) {
    throw FederationError("unsupported federation checkpoint version " +
                          rows[0][1]);
  }
  if (rows[1].size() != 2 || rows[1][0] != "members" ||
      parse_u64_field(rows[1][1], "member count") != members_.size()) {
    throw FederationError(
        "checkpoint member count does not match this federation");
  }
  if (rows[2].size() != 2 || rows[2][0] != "targets" ||
      parse_u64_field(rows[2][1], "target count") != config_.global_targets) {
    throw FederationError(
        "checkpoint target count does not match this federation");
  }
  if (rows[3].size() != 2 || rows[3][0] != "epochs") {
    throw FederationError("checkpoint: malformed epochs row");
  }
  const std::size_t epochs = parse_u64_field(rows[3][1], "epoch count");

  for (std::size_t mi = 0; mi < members_.size(); ++mi) {
    try {
      members_[mi]->campaign.load_checkpoint_file(
          dir + "/member_" + std::to_string(mi) + ".csv");
    } catch (const CampaignError& e) {
      throw FederationError("member " + std::to_string(mi) + ": " + e.what());
    }
    if (members_[mi]->campaign.series().size() < epochs) {
      throw FederationError("checkpoint: member " + std::to_string(mi) +
                            " has fewer sweeps than folded epochs");
    }
    members_[mi]->reset_fold_state();
  }

  // Rebuild the merge-side state by replaying the fold over the
  // restored member series, emission suppressed: the fold is a pure
  // function of those series, so the replay lands bit-identical to the
  // moment of the kill.
  AdaptiveFloor::Config fcfg = config_.floor_tuning;
  fcfg.initial = config_.coverage_floor;
  floor_ = AdaptiveFloor(fcfg);
  series_.clear();
  reports_.clear();
  provenance_.clear();
  replaying_ = true;
  for (std::size_t e = 0; e < epochs; ++e) fold_epoch(e);
  replaying_ = false;

  metrics().resumes.inc();
  obs::event_bus().emit(obs::Severity::kNotice, "federation_resumed",
                        "\"epochs\":" + std::to_string(epochs) +
                            ",\"members\":" + std::to_string(members_.size()));
  FENRIR_LOG(Info)
          .field("epochs", epochs)
          .field("members", members_.size())
      << "federation resumed from checkpoint";
}

ProvenanceSummary summarize_provenance(
    std::span<const TargetProvenance> epoch) {
  ProvenanceSummary out;
  std::map<std::size_t, std::size_t> served;  // member -> targets served
  for (const TargetProvenance& p : epoch) {
    if (p.disagreed) ++out.disagreements;
    if (p.member == kNoMember) continue;
    ++served[p.member];
    out.max_staleness = std::max(out.max_staleness, p.staleness);
  }
  std::size_t best = 0;
  for (const auto& [member, count] : served) {
    if (count > best) {  // strict: ties stay with the smaller index
      best = count;
      out.member = member;
    }
  }
  return out;
}

core::SimilarityMatrix fold_phi(std::span<const core::RoutingVector> series,
                                core::ModeBook& book,
                                std::span<const ProvenanceSummary> provenance,
                                core::UnknownPolicy policy,
                                std::vector<double> weights,
                                unsigned threads) {
  core::SimilarityMatrix m(policy, std::move(weights), threads);
  m.append_batch(series);
  obs::LineageStore& lin = obs::lineage();
  for (std::size_t r = 0; r < series.size(); ++r) {
    if (lin.enabled()) {
      const std::vector<std::size_t> chain = m.anchor_chain(r);
      lin.set_anchor_context(chain);
      if (r < provenance.size()) {
        const ProvenanceSummary& p = provenance[r];
        lin.set_provenance_context(p.member == kNoMember
                                       ? obs::kLineageNoMember
                                       : static_cast<std::uint64_t>(p.member),
                                   p.max_staleness, p.disagreements);
      }
    }
    book.observe(series[r]);
    // An invalid epoch never reaches record(); drop its context rather
    // than letting it ride on the next epoch's record.
    lin.clear_context();
  }
  return m;
}

}  // namespace fenrir::measure
