// fenrir::measure — adapters from concrete probers to Campaign's
// per-target view.
//
// The sweep probers return whole vectors; Campaign needs one probe at a
// time so it can retry, skip, and checkpoint between targets. The
// adapters here are thin: they hold pointers to the prober and its
// routing context (all must outlive the adapter) and translate the
// prober's outcome vocabulary into ProbeStatus.
#pragma once

#include <vector>

#include "bgp/routing.h"
#include "measure/campaign.h"
#include "measure/verfploeter.h"
#include "netbase/hitlist.h"

namespace fenrir::measure {

/// Per-target verfploeter probing against a fixed routing state. The
/// prober's kNoRoute collapses into kNoReply — on the wire both are a
/// missing reply, and Campaign's retry machinery should treat them the
/// same — while kUnrouted stays distinct because retrying unrouted
/// space is pointless and Campaign accounts it separately.
class VerfploeterTargetProber : public TargetProber {
 public:
  VerfploeterTargetProber(const VerfploeterProbe* probe,
                          const netbase::Hitlist* hitlist,
                          const bgp::AsGraph* graph,
                          const bgp::RoutingTable* routing,
                          const std::vector<core::SiteId>* site_to_core)
      : probe_(probe),
        hitlist_(hitlist),
        graph_(graph),
        routing_(routing),
        site_to_core_(site_to_core) {
    if (probe_ == nullptr || hitlist_ == nullptr || graph_ == nullptr ||
        routing_ == nullptr || site_to_core_ == nullptr) {
      throw CampaignError("VerfploeterTargetProber: null dependency");
    }
  }

  std::size_t target_count() const override { return hitlist_->size(); }
  std::uint64_t target_key(std::size_t index) const override {
    return hitlist_->block(index);
  }
  ProbeReply probe(std::size_t index, core::TimePoint when) const override {
    const VerfploeterReply r =
        probe_->measure_one(index, when, *graph_, *routing_, *site_to_core_);
    switch (r.outcome) {
      case VerfploeterOutcome::kAnswered:
        return {r.site, ProbeStatus::kAnswered};
      case VerfploeterOutcome::kUnrouted:
        return {core::kUnknownSite, ProbeStatus::kUnrouted};
      case VerfploeterOutcome::kNoReply:
      case VerfploeterOutcome::kNoRoute:
        return {core::kUnknownSite, ProbeStatus::kNoReply};
    }
    return {core::kUnknownSite, ProbeStatus::kNoReply};
  }

 private:
  const VerfploeterProbe* probe_;
  const netbase::Hitlist* hitlist_;
  const bgp::AsGraph* graph_;
  const bgp::RoutingTable* routing_;
  const std::vector<core::SiteId>* site_to_core_;
};

}  // namespace fenrir::measure
