#include "measure/ednscs.h"

#include <algorithm>
#include <unordered_map>

#include "dns/message.h"
#include "measure/site_map.h"

namespace fenrir::measure {

namespace {

std::uint64_t prefix_key(const netbase::Prefix& p) {
  return (std::uint64_t{p.base().value()} << 8) |
         static_cast<std::uint64_t>(p.length());
}

double unit_double(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

// --- GeoNearestPolicy ---

void GeoNearestPolicy::add_drain_window(std::uint32_t site,
                                        core::TimePoint from,
                                        core::TimePoint to) {
  drains_.push_back(Drain{site, from, to});
}

void GeoNearestPolicy::add_penalty_window(std::uint32_t site,
                                          core::TimePoint from,
                                          core::TimePoint to, double factor) {
  penalties_.push_back(Penalty{site, from, to, factor});
}

bool GeoNearestPolicy::drained(std::uint32_t site, core::TimePoint t) const {
  for (const Drain& d : drains_) {
    if (d.site == site && t >= d.from && t < d.to) return true;
  }
  return false;
}

double GeoNearestPolicy::penalty(std::uint32_t site, core::TimePoint t) const {
  double factor = 1.0;
  for (const Penalty& p : penalties_) {
    if (p.site == site && t >= p.from && t < p.to) factor *= p.factor;
  }
  return factor;
}

std::optional<std::size_t> GeoNearestPolicy::select(
    const netbase::Prefix& client, core::TimePoint time,
    const std::vector<FrontEnd>& front_ends) const {
  const auto loc = locator_(client);
  // Effective distance: geographic distance scaled by any active penalty.
  std::size_t best = front_ends.size(), second = front_ends.size();
  double best_km = 0.0, second_km = 0.0;
  for (std::size_t i = 0; i < front_ends.size(); ++i) {
    if (drained(front_ends[i].site, time)) continue;
    if (!loc) return i;  // unknown client location: first active site
    const double km = geo::haversine_km(*loc, front_ends[i].location) *
                      penalty(front_ends[i].site, time);
    if (best == front_ends.size() || km < best_km) {
      second = best;
      second_km = best_km;
      best = i;
      best_km = km;
    } else if (second == front_ends.size() || km < second_km) {
      second = i;
      second_km = km;
    }
  }
  if (best == front_ends.size()) return std::nullopt;

  // Flapping prefixes oscillate between their two nearest sites.
  if (flap_fraction_ > 0.0 && second != front_ends.size()) {
    const std::uint64_t key = prefix_key(client);
    if (unit_double(rng::mix(seed_, 0xf1a9ULL, key)) < flap_fraction_) {
      const std::uint64_t day =
          static_cast<std::uint64_t>(time / core::kDay);
      if (rng::mix(seed_, key, day) & 1) return second;
    }
  }
  return best;
}

// --- ChurnPolicy ---

std::uint64_t ChurnPolicy::generation_of(core::TimePoint t) const {
  std::uint64_t g = 0;
  for (const core::TimePoint start : config_.generation_starts) {
    if (t >= start) ++g;
  }
  return g;
}

std::optional<std::size_t> ChurnPolicy::select(
    const netbase::Prefix& client, core::TimePoint time,
    const std::vector<FrontEnd>& front_ends) const {
  const std::uint64_t gen = generation_of(time);

  // Candidate pool: the prefix's nearest front-ends of this generation.
  std::vector<std::size_t> pool;
  {
    const auto loc = locator_(client);
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < front_ends.size(); ++i) {
      if (front_ends[i].generation == gen) active.push_back(i);
    }
    if (active.empty()) return std::nullopt;
    if (loc) {
      std::sort(active.begin(), active.end(),
                [&](std::size_t a, std::size_t b) {
                  return geo::haversine_km(*loc, front_ends[a].location) <
                         geo::haversine_km(*loc, front_ends[b].location);
                });
    }
    if (active.size() > config_.candidate_pool) {
      active.resize(config_.candidate_pool);
    }
    pool = std::move(active);
  }

  const std::uint64_t key = prefix_key(client);
  const std::uint64_t epoch_index =
      static_cast<std::uint64_t>(time / config_.epoch);
  const std::uint64_t day =
      static_cast<std::uint64_t>(time / core::kDay);

  std::uint64_t salt = rng::mix(config_.seed, gen, epoch_index);
  // Daily micro-churn: a slice of prefixes gets a day-specific mapping.
  if (unit_double(rng::mix(config_.seed, key, day)) < config_.daily_churn) {
    salt = rng::mix(salt, day);
  }
  return pool[rng::mix(salt, key) % pool.size()];
}

// --- WebsiteService ---

std::vector<std::uint8_t> WebsiteService::handle(
    std::span<const std::uint8_t> query, core::TimePoint time) const {
  const dns::Message q = dns::Message::decode(query);
  dns::Message resp;
  resp.header = q.header;
  resp.header.qr = true;
  resp.header.aa = true;
  resp.questions = q.questions;

  const auto servfail = [&] {
    resp.header.rcode = dns::Rcode::kServFail;
    return resp.encode();
  };

  if (q.questions.size() != 1 ||
      dns::normalize_name(q.questions[0].name) !=
          dns::normalize_name(hostname_) ||
      q.questions[0].type != dns::RecordType::kA) {
    resp.header.rcode = dns::Rcode::kNxDomain;
    return resp.encode();
  }

  // Client subnet: default to 0/0 when absent (RFC 7871 resolver view).
  netbase::Prefix client;
  if (const auto edns = dns::get_edns(q)) {
    if (const auto* opt = edns->find(dns::kOptionClientSubnet)) {
      try {
        client = dns::ClientSubnet::decode(opt->data).prefix;
      } catch (const dns::DnsError&) {
        resp.header.rcode = dns::Rcode::kFormErr;
        return resp.encode();
      }
    }
  }

  const auto chosen = policy_->select(client, time, front_ends_);
  if (!chosen) return servfail();

  dns::ResourceRecord a;
  a.name = hostname_;
  a.type = dns::RecordType::kA;
  a.klass = static_cast<std::uint16_t>(dns::RecordClass::kIn);
  a.ttl = 60;
  a.rdata = dns::make_a_rdata(front_ends_.at(*chosen).addr.value());
  resp.answers.push_back(std::move(a));

  // Echo the client subnet with the answer's scope (we differentiate at
  // /24 granularity).
  dns::EdnsRecord edns_out;
  dns::ClientSubnet cs;
  cs.prefix = client;
  cs.scope_len = 24;
  edns_out.options.push_back(
      dns::EdnsOption{dns::kOptionClientSubnet, cs.encode()});
  dns::set_edns(resp, edns_out);
  return resp.encode();
}

std::optional<std::uint32_t> WebsiteService::site_of_addr(
    netbase::Ipv4Addr addr) const {
  for (const FrontEnd& fe : front_ends_) {
    if (fe.addr == addr) return fe.site;
  }
  return std::nullopt;
}

// --- EdnsCsProbe ---

std::vector<core::SiteId> EdnsCsProbe::measure(
    core::TimePoint time, const WebsiteService& service,
    const std::vector<core::SiteId>& site_to_core) const {
  std::vector<core::SiteId> out(prefixes_.size(), core::kErrorSite);
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    const std::uint64_t h = rng::mix(
        config_.seed,
        rng::mix(0xec5ULL, prefix_key(prefixes_[i]),
                 static_cast<std::uint64_t>(time)));
    if (unit_double(h) < config_.query_loss) continue;  // timeout -> err

    dns::Message q = dns::make_query(
        static_cast<std::uint16_t>(h),
        dns::Question{service.hostname(), dns::RecordType::kA,
                      dns::RecordClass::kIn});
    dns::set_edns(q, dns::make_client_subnet_request(prefixes_[i]));

    std::vector<std::uint8_t> response_bytes;
    try {
      response_bytes = service.handle(q.encode(), time);
    } catch (const dns::DnsError&) {
      continue;
    }
    dns::Message resp;
    try {
      resp = dns::Message::decode(response_bytes);
    } catch (const dns::DnsError&) {
      continue;
    }
    if (resp.header.rcode != dns::Rcode::kNoError) continue;

    std::optional<std::uint32_t> site;
    for (const auto& rr : resp.answers) {
      if (const auto addr = rr.a_addr()) {
        site = service.site_of_addr(netbase::Ipv4Addr(*addr));
        break;
      }
    }
    if (!site) {
      out[i] = core::kOtherSite;  // answered, but from an unknown fleet
      continue;
    }
    out[i] = map_site(site_to_core, *site, "ednscs");
  }
  return out;
}

}  // namespace fenrir::measure
