#include "measure/trinocular.h"

#include <cmath>
#include <stdexcept>

namespace fenrir::measure {

double path_rtt_ms(std::span<const bgp::AsIndex> path,
                   const bgp::AsGraph& graph, const geo::LatencyModel& model) {
  if (path.size() < 2) return model.base_ms;
  double km = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    km += geo::haversine_km(graph.node(path[i - 1]).location,
                            graph.node(path[i]).location);
  }
  constexpr double c_km_per_ms = 299.792458;
  const double one_way_ms =
      km * model.path_stretch / (c_km_per_ms * model.fiber_speed_fraction);
  return model.base_ms + 2.0 * one_way_ms;
}

TrinocularProbe::TrinocularProbe(const netbase::Hitlist* hitlist,
                                 const bgp::AsGraph* graph,
                                 TrinocularConfig config)
    : hitlist_(hitlist), graph_(graph), config_(config) {
  if (hitlist_ == nullptr || graph_ == nullptr) {
    throw std::invalid_argument("TrinocularProbe: null hitlist or graph");
  }
}

bool TrinocularProbe::block_is_dark(std::uint32_t block) const {
  const std::uint64_t h = rng::mix(config_.seed, 0xda2cULL, block);
  return static_cast<double>(h >> 11) * 0x1.0p-53 <
         config_.dark_block_fraction;
}

std::vector<double> TrinocularProbe::measure_rtt(
    core::TimePoint t,
    const std::function<const std::vector<bgp::AsIndex>*(
        std::uint32_t block)>& path_of,
    const geo::LatencyModel& model) const {
  std::vector<double> out(hitlist_->size(), -1.0);
  const std::uint64_t round_index =
      static_cast<std::uint64_t>(t / config_.round);
  // The quarterly list refresh reshuffles which addresses get probed.
  const std::uint64_t quarter =
      static_cast<std::uint64_t>(t / (91 * core::kDay));

  for (std::size_t i = 0; i < hitlist_->size(); ++i) {
    const std::uint32_t block = hitlist_->block(i);
    if (block_is_dark(block)) continue;
    const std::vector<bgp::AsIndex>* path = path_of(block);
    if (path == nullptr || path->empty()) continue;

    // 1..max targets per round; the round succeeds if any answers.
    const std::uint64_t h0 =
        rng::mix(config_.seed, rng::mix(quarter, block, round_index));
    const int targets =
        1 + static_cast<int>(h0 % static_cast<std::uint64_t>(
                                      config_.max_targets_per_block));
    const double p_any =
        1.0 - std::pow(1.0 - config_.target_response_prob, targets);
    const double draw =
        static_cast<double>(rng::mix(h0, 0x7a26e75ULL) >> 11) * 0x1.0p-53;
    if (draw >= p_any) continue;

    rng::Rng jitter(rng::mix(h0, 0x2177e2ULL));
    const double rtt = path_rtt_ms(*path, *graph_, model);
    out[i] = std::max(model.base_ms,
                      rtt * (1.0 + model.jitter_fraction * jitter.normal(0, 1)));
  }
  return out;
}

}  // namespace fenrir::measure
