#include "measure/campaign.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "io/csv.h"
#include "obs/events.h"
#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/metrics_window.h"
#include "obs/span.h"
#include "obs/status_board.h"

namespace fenrir::measure {

namespace {

// v2: report rows carry the floor each sweep was judged against, and an
// optional "floor" row serializes the adaptive EWMA state.
constexpr const char* kMagic = "#fenrir-campaign-checkpoint";
constexpr const char* kVersion = "v2";

struct Metrics {
  obs::Counter& sweeps;
  obs::Counter& probes;
  obs::Counter& retries;
  obs::Counter& retried_out;
  obs::Counter& breaker_trips;
  obs::Counter& breaker_skips;
  obs::Counter& low_coverage;
  obs::Counter& disagreements;
  obs::Counter& resumes;
  obs::Gauge& coverage;
  obs::Gauge& confidence;
};

Metrics& metrics() {
  static Metrics m{
      obs::registry().counter("fenrir_campaign_sweeps_total",
                              "campaign sweeps completed"),
      obs::registry().counter("fenrir_campaign_probes_total",
                              "campaign first-attempt probes"),
      obs::registry().counter("fenrir_campaign_retries_total",
                              "campaign retry probes"),
      obs::registry().counter("fenrir_campaign_retried_out_total",
                              "targets that exhausted their retry budget"),
      obs::registry().counter("fenrir_campaign_breaker_trips_total",
                              "circuit breakers opened"),
      obs::registry().counter("fenrir_campaign_breaker_skips_total",
                              "probes skipped because a breaker was open"),
      obs::registry().counter("fenrir_campaign_low_coverage_sweeps_total",
                              "sweeps emitted invalid: below coverage floor"),
      obs::registry().counter("fenrir_campaign_quorum_disagreements_total",
                              "targets where probers disagreed"),
      obs::registry().counter("fenrir_campaign_resumes_total",
                              "campaigns resumed from a checkpoint"),
      obs::registry().gauge("fenrir_campaign_coverage",
                            "last sweep's answered/targets"),
      obs::registry().gauge("fenrir_campaign_confidence",
                            "last sweep's quorum agreement"),
  };
  return m;
}

std::uint64_t parse_u64_field(const std::string& text, const char* what) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw CampaignError(std::string("checkpoint: bad ") + what + ": " + text);
  }
  return out;
}

std::int64_t parse_i64_field(const std::string& text, const char* what) {
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw CampaignError(std::string("checkpoint: bad ") + what + ": " + text);
  }
  return out;
}

// Doubles in checkpoints use C99 hexfloats: exact round-trip, so a
// resumed campaign's floor state is bit-identical to the saved one.
std::string render_hexdouble(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

double parse_hexdouble(const std::string& text, const char* what) {
  char* end = nullptr;
  const double out = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    throw CampaignError(std::string("checkpoint: bad ") + what + ": " + text);
  }
  return out;
}

}  // namespace

QuorumMerge merge_quorum(std::span<const core::RoutingVector> views) {
  if (views.empty()) throw CampaignError("merge_quorum: no views");
  const std::size_t n = views.front().assignment.size();
  for (const auto& v : views) {
    if (v.assignment.size() != n) {
      throw CampaignError("merge_quorum: views disagree on network count");
    }
  }
  QuorumMerge out;
  out.vector.time = views.front().time;
  out.vector.valid = views.front().valid;
  out.vector.assignment.assign(n, core::kUnknownSite);
  std::size_t with_votes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Majority among known labels; ties break to the smallest SiteId so
    // the merge is deterministic regardless of view order.
    std::map<core::SiteId, std::size_t> votes;
    for (const auto& v : views) {
      const core::SiteId s = v.assignment[i];
      if (s != core::kUnknownSite) ++votes[s];
    }
    if (votes.empty()) continue;
    ++with_votes;
    auto best = votes.begin();
    for (auto it = votes.begin(); it != votes.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    out.vector.assignment[i] = best->first;
    if (votes.size() > 1) ++out.disagreements;
  }
  // No network carried any known vote: agreement over an empty set is
  // undefined, and 1.0 would let a silent lone prober masquerade as
  // consensus. Report NaN explicitly (pinned in chaos_campaign_test).
  out.confidence =
      with_votes == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : 1.0 - static_cast<double>(out.disagreements) /
                                  static_cast<double>(with_votes);
  return out;
}

core::SimilarityMatrix fold_phi(std::span<const core::RoutingVector> series,
                                core::UnknownPolicy policy,
                                std::vector<double> weights,
                                unsigned threads) {
  core::SimilarityMatrix m(policy, std::move(weights), threads);
  m.append_batch(series);
  return m;
}

Campaign::Campaign(std::vector<const TargetProber*> probers,
                   CampaignConfig config)
    : probers_(std::move(probers)),
      config_(config),
      targets_(probers_.empty() ? 0 : probers_.front()->target_count()),
      schedule_([&]() -> SweepSchedule {
        if (probers_.empty() || probers_.front() == nullptr) {
          throw CampaignError("Campaign: no probers");
        }
        if (probers_.front()->target_count() == 0) {
          throw CampaignError("Campaign: prober has no targets");
        }
        if (config.packets_per_second <= 0) {
          throw CampaignError("Campaign: packets_per_second must be > 0");
        }
        if (config.retry.max_attempts < 1) {
          throw CampaignError("Campaign: retry.max_attempts must be >= 1");
        }
        return SweepSchedule(probers_.front()->target_count(),
                             config.packets_per_second, 1, config.start,
                             config.idle_gap);
      }()),
      clock_(config.start) {
  for (const TargetProber* p : probers_) {
    if (p == nullptr) throw CampaignError("Campaign: null prober");
    if (p->target_count() != targets_) {
      throw CampaignError("Campaign: probers disagree on target count (" +
                          std::to_string(p->target_count()) + " vs " +
                          std::to_string(targets_) + ")");
    }
  }
  health_.assign(targets_, TargetHealth{});
  outcome_.assign(targets_, Outcome::kPending);
  assignment_.assign(targets_, core::kUnknownSite);
  AdaptiveFloor::Config floor_config = config_.adaptive.config;
  floor_config.initial = config_.coverage_floor;
  floor_ = AdaptiveFloor(floor_config);
}

double Campaign::current_floor() const noexcept {
  return config_.adaptive.enabled ? floor_.floor() : config_.coverage_floor;
}

int Campaign::effective_open_after() const noexcept {
  const int base = config_.breaker.open_after;
  if (!config_.adaptive.enabled ||
      floor_.samples() < config_.adaptive.config.warmup) {
    return base;
  }
  // At ambient EWMA coverage c a healthy target still misses ~(1-c) of
  // its sweeps, so the dark-sweep budget scales as 1/c: a campaign at
  // half coverage needs twice the consecutive misses before one target
  // is singled out as persistently dark.
  const double c = std::clamp(floor_.mean(), 0.05, 1.0);
  const int scaled = static_cast<int>(std::ceil(static_cast<double>(base) / c));
  return std::max(base, scaled);
}

ProbeReply Campaign::probe_slot(std::size_t index, core::TimePoint when) {
  const std::uint64_t key = probers_.front()->target_key(index);
  if (plan_ != nullptr && plan_->probe_lost(key, when)) {
    // The injected loss swallows the probe before any prober sees it —
    // even an unrouted verdict needs a packet to come back.
    return ProbeReply{core::kUnknownSite, ProbeStatus::kNoReply};
  }
  std::size_t known = 0;
  bool any_unrouted = false;
  // Majority among probers that answered; ties break to the smallest
  // SiteId (map iteration order) so quorum is deterministic.
  std::map<core::SiteId, std::size_t> votes;
  for (const TargetProber* p : probers_) {
    const ProbeReply r = p->probe(index, when);
    switch (r.status) {
      case ProbeStatus::kAnswered:
        ++known;
        ++votes[r.site];
        break;
      case ProbeStatus::kUnrouted:
        any_unrouted = true;
        break;
      case ProbeStatus::kNoReply:
        break;
    }
  }
  if (known > 0) {
    auto best = votes.begin();
    for (auto it = votes.begin(); it != votes.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (votes.size() > 1) {
      ++tally_.disagreements;
      metrics().disagreements.inc();
    }
    return ProbeReply{best->first, ProbeStatus::kAnswered};
  }
  if (any_unrouted) {
    return ProbeReply{core::kUnknownSite, ProbeStatus::kUnrouted};
  }
  return ProbeReply{core::kUnknownSite, ProbeStatus::kNoReply};
}

void Campaign::begin_sweep() {
  outcome_.assign(targets_, Outcome::kPending);
  assignment_.assign(targets_, core::kUnknownSite);
  tally_ = SweepReport{};
  tally_.sweep = sweep_;
  tally_.targets = targets_;
  tally_.start = schedule_.probe_time(sweep_, 0);
  next_index_ = 0;
  in_sweep_ = true;
}

bool Campaign::run_current_sweep() {
  obs::Span span("campaign/sweep");
  clock_.advance_to(schedule_.probe_time(sweep_, next_index_ == targets_
                                                     ? targets_ - 1
                                                     : next_index_));
  for (; next_index_ < targets_; ++next_index_) {
    const std::size_t i = next_index_;
    if (plan_ != nullptr) {
      const auto kill = plan_->kill_index(sweep_, targets_, kills_fired_);
      if (kill && *kill == i) {
        ++kills_fired_;
        FENRIR_LOG(Warn)
                .field("sweep", sweep_)
                .field("index", i)
            << "campaign killed mid-sweep (fault plan)";
        return false;
      }
    }
    const core::TimePoint t = schedule_.probe_time(sweep_, i);
    clock_.advance_to(t);

    TargetHealth& h = health_[i];
    if (h.state == BreakerState::kOpen && sweep_ < h.reopen_sweep) {
      outcome_[i] = Outcome::kBroken;
      ++tally_.broken;
      metrics().breaker_skips.inc();
      continue;
    }
    // Closed, or open past cooldown: the latter is the half-open trial.
    metrics().probes.inc();
    const ProbeReply r = probe_slot(i, t);
    switch (r.status) {
      case ProbeStatus::kAnswered:
        outcome_[i] = Outcome::kAnswered;
        assignment_[i] = r.site;
        ++tally_.answered;
        break;
      case ProbeStatus::kUnrouted:
        outcome_[i] = Outcome::kUnrouted;
        ++tally_.unrouted;
        break;
      case ProbeStatus::kNoReply:
        outcome_[i] = Outcome::kRetrying;
        break;
    }
  }
  // A kill with fraction 1.0 lands here: after every first attempt but
  // before the retry waves.
  if (plan_ != nullptr) {
    const auto kill = plan_->kill_index(sweep_, targets_, kills_fired_);
    if (kill && *kill == targets_) {
      ++kills_fired_;
      FENRIR_LOG(Warn).field("sweep", sweep_)
          << "campaign killed between main pass and retries (fault plan)";
      return false;
    }
  }
  run_retry_waves();
  finish_sweep();
  return true;
}

void Campaign::run_retry_waves() {
  // Wave w starts backoff * multiplier^(w-1) after the previous pass
  // ends and probes the still-pending targets in index order at the
  // schedule's packet rate — retries consume simulated time exactly the
  // way first attempts do, they just spend the sweep's slack for it.
  core::TimePoint pass_end =
      tally_.start +
      static_cast<core::TimePoint>(schedule_.sweep_seconds()) + 1;
  double wait = static_cast<double>(config_.retry.backoff);
  for (int attempt = 1; attempt < config_.retry.max_attempts; ++attempt) {
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < targets_; ++i) {
      if (outcome_[i] == Outcome::kRetrying) pending.push_back(i);
    }
    if (pending.empty()) break;
    const core::TimePoint wave_start =
        pass_end + static_cast<core::TimePoint>(wait);
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const std::size_t i = pending[j];
      const core::TimePoint t =
          wave_start + static_cast<core::TimePoint>(
                           static_cast<double>(j) /
                           config_.packets_per_second);
      clock_.advance_to(t);
      ++tally_.retries;
      metrics().retries.inc();
      const ProbeReply r = probe_slot(i, t);
      switch (r.status) {
        case ProbeStatus::kAnswered:
          outcome_[i] = Outcome::kAnswered;
          assignment_[i] = r.site;
          ++tally_.answered;
          break;
        case ProbeStatus::kUnrouted:
          outcome_[i] = Outcome::kUnrouted;
          ++tally_.unrouted;
          break;
        case ProbeStatus::kNoReply:
          break;  // stays kRetrying for the next wave
      }
    }
    pass_end = wave_start +
               static_cast<core::TimePoint>(
                   static_cast<double>(pending.size()) /
                   config_.packets_per_second) +
               1;
    wait *= config_.retry.backoff_multiplier;
  }
  for (std::size_t i = 0; i < targets_; ++i) {
    if (outcome_[i] == Outcome::kRetrying) {
      outcome_[i] = Outcome::kRetriedOut;
      ++tally_.retried_out;
      metrics().retried_out.inc();
    }
  }
  clock_.advance_to(pass_end);
  tally_.end = pass_end;
}

std::string Campaign::journal_entry(const SweepReport& r, bool valid) {
  std::ostringstream os;
  os << "{\"type\":\"sweep\",\"sweep\":" << r.sweep << ",\"start\":" << r.start
     << ",\"end\":" << r.end << ",\"targets\":" << r.targets
     << ",\"answered\":" << r.answered << ",\"retried_out\":" << r.retried_out
     << ",\"broken\":" << r.broken << ",\"unrouted\":" << r.unrouted
     << ",\"retries\":" << r.retries
     << ",\"disagreements\":" << r.disagreements
     << ",\"coverage\":" << obs::render_double(r.coverage())
     << ",\"floor\":" << obs::render_double(r.floor)
     << ",\"confidence\":" << obs::render_double(r.confidence())
     << ",\"valid\":" << (valid ? "true" : "false")
     << ",\"low_coverage\":" << (r.low_coverage ? "true" : "false")
     << ",\"collector_gap\":" << (r.collector_gap ? "true" : "false") << "}";
  return os.str();
}

void Campaign::finish_sweep() {
  // The floor judging this sweep comes from the sweeps BEFORE it — the
  // adaptive EWMA is only fed afterwards (and never from a flagged
  // sweep), so an observation cannot move its own goalposts and an
  // outage cannot teach the floor that darkness is normal.
  tally_.floor = current_floor();
  tally_.low_coverage = tally_.coverage() < tally_.floor;
  tally_.collector_gap =
      plan_ != nullptr && plan_->collector_down(tally_.start);

  core::RoutingVector v;
  v.time = tally_.start;
  if (tally_.collector_gap) {
    // The probes ran; the archive did not survive. Keep the timeline
    // slot (the paper's blank-region semantics), lose the data.
    v.assignment.assign(targets_, core::kUnknownSite);
    v.valid = false;
  } else {
    v.assignment = assignment_;
    v.valid = !tally_.low_coverage;
  }
  if (tally_.low_coverage) {
    metrics().low_coverage.inc();
    obs::event_bus().emit(
        obs::Severity::kWarn, "coverage_floor_breach",
        "\"sweep\":" + std::to_string(tally_.sweep) +
            ",\"coverage\":" + obs::render_double(tally_.coverage()) +
            ",\"floor\":" + obs::render_double(tally_.floor));
  }

  update_health();
  if (config_.adaptive.enabled && !tally_.low_coverage) {
    floor_.observe(tally_.coverage());
  }

  metrics().sweeps.inc();
  metrics().coverage.set(tally_.coverage());
  metrics().confidence.set(tally_.confidence());
  FENRIR_LOG(Debug)
          .field("sweep", tally_.sweep)
          .field("answered", tally_.answered)
          .field("retried_out", tally_.retried_out)
          .field("broken", tally_.broken)
          .field("unrouted", tally_.unrouted)
          .field("retries", tally_.retries)
          .field("valid", v.valid)
      << "campaign sweep";

  // Journal order within a sweep: breaker transitions (written by
  // update_health above) first, then the sweep summary — deterministic,
  // so the chaos prefix property holds line-for-line. The event stream
  // follows the same order (breaker events above, sweep events here),
  // so an event JSONL has its own prefix property by type sequence.
  if (journal_ != nullptr) journal_->append(journal_entry(tally_, v.valid));

  if (!v.valid) {
    // The sweep still produced a timeline slot — salvaged, not lost; the
    // analysis skips it but the record stays whole.
    obs::event_bus().emit(
        obs::Severity::kNotice, "sweep_salvaged",
        "\"sweep\":" + std::to_string(tally_.sweep) + ",\"reason\":\"" +
            (tally_.collector_gap ? "collector_gap" : "low_coverage") +
            "\"");
  }

  std::size_t breakers_open = 0;
  for (const TargetHealth& h : health_) {
    if (h.state == BreakerState::kOpen) ++breakers_open;
  }
  {
    std::ostringstream os;
    os << "{\"sweeps_completed\":" << (sweep_ + 1)
       << ",\"last_coverage\":" << obs::render_double(tally_.coverage())
       << ",\"last_confidence\":" << obs::render_double(tally_.confidence())
       << ",\"last_valid\":" << (v.valid ? "true" : "false")
       << ",\"breakers_open\":" << breakers_open
       << ",\"retries\":" << tally_.retries << "}";
    obs::status_board().publish("campaign", os.str());
  }
  // One windowed-metrics snapshot per sweep — the campaign's natural
  // cadence (rate-limited inside, so rapid simulated sweeps cannot
  // flood the history ring).
  obs::metrics_history().sample(false);

  series_.push_back(std::move(v));
  reports_.push_back(tally_);
  in_sweep_ = false;
  next_index_ = 0;
  ++sweep_;
}

void Campaign::update_health() {
  // A sweep that lost nearly everything indicts the campaign (or the
  // collector), not the targets: skip health bookkeeping so a global
  // outage cannot trip every breaker at once.
  if (tally_.low_coverage) return;
  for (std::size_t i = 0; i < targets_; ++i) {
    TargetHealth& h = health_[i];
    switch (outcome_[i]) {
      case Outcome::kAnswered:
      case Outcome::kUnrouted:
        // Unrouted is a crisp verdict, not a miss: the probe pipeline
        // works, the address space is simply empty.
        h.consecutive_misses = 0;
        if (h.state == BreakerState::kOpen) {
          h.state = BreakerState::kClosed;
          h.reason = BreakReason::kNone;
          h.reopen_sweep = 0;
          if (journal_ != nullptr) {
            journal_->append("{\"type\":\"breaker\",\"sweep\":" +
                             std::to_string(sweep_) + ",\"target\":" +
                             std::to_string(i) + ",\"state\":\"closed\"}");
          }
          obs::event_bus().emit(obs::Severity::kNotice, "breaker_close",
                                "\"sweep\":" + std::to_string(sweep_) +
                                    ",\"target\":" + std::to_string(i));
        }
        break;
      case Outcome::kRetriedOut: {
        ++h.consecutive_misses;
        const bool failed_trial =
            h.state == BreakerState::kOpen && sweep_ >= h.reopen_sweep;
        if (failed_trial ||
            (h.state == BreakerState::kClosed &&
             h.consecutive_misses >=
                 static_cast<std::uint32_t>(effective_open_after()))) {
          h.state = BreakerState::kOpen;
          h.reason = BreakReason::kPersistentlyDark;
          h.reopen_sweep = static_cast<std::uint32_t>(
              sweep_ + 1 + config_.breaker.cooldown_sweeps);
          ++h.trips;
          metrics().breaker_trips.inc();
          if (journal_ != nullptr) {
            journal_->append(
                "{\"type\":\"breaker\",\"sweep\":" + std::to_string(sweep_) +
                ",\"target\":" + std::to_string(i) +
                ",\"state\":\"open\",\"reason\":\"persistently_dark\"}");
          }
          obs::event_bus().emit(
              obs::Severity::kWarn, "breaker_open",
              "\"sweep\":" + std::to_string(sweep_) +
                  ",\"target\":" + std::to_string(i) +
                  ",\"reason\":\"persistently_dark\"");
        }
        break;
      }
      case Outcome::kBroken:
      case Outcome::kPending:
      case Outcome::kRetrying:
        break;
    }
  }
}

bool Campaign::advance(std::size_t sweep_count) {
  obs::Span span("campaign/run");
  while (sweep_ < sweep_count || in_sweep_) {
    if (!in_sweep_) begin_sweep();
    if (!run_current_sweep()) return false;
  }
  return true;
}

CampaignResult Campaign::run(std::size_t sweep_count) {
  CampaignResult out;
  out.interrupted = !advance(sweep_count);
  out.series = series_;
  out.reports = reports_;
  return out;
}

void Campaign::save_checkpoint(std::ostream& out) const {
  io::CsvWriter csv(out);
  csv.row(kMagic, kVersion);
  csv.row("targets", targets_, "probers", probers_.size());
  csv.row("position", sweep_, next_index_, in_sweep_ ? 1 : 0, kills_fired_);
  if (config_.adaptive.enabled) {
    csv.row("floor", render_hexdouble(floor_.mean()),
            render_hexdouble(floor_.variance()), floor_.samples());
  }
  if (in_sweep_) {
    csv.row("tallies", tally_.start, tally_.answered, tally_.retried_out,
            tally_.broken, tally_.unrouted, tally_.retries,
            tally_.disagreements);
    {
      // Outcome codes, one char per target (see enum Outcome).
      std::string codes(targets_, '0');
      for (std::size_t i = 0; i < targets_; ++i) {
        codes[i] = static_cast<char>('0' + static_cast<int>(outcome_[i]));
      }
      csv.row("outcomes", codes);
    }
    {
      std::vector<std::string> row{"sites"};
      row.reserve(targets_ + 1);
      for (const core::SiteId s : assignment_) {
        row.push_back(std::to_string(s));
      }
      csv.write_row(row);
    }
  }
  for (std::size_t i = 0; i < targets_; ++i) {
    const TargetHealth& h = health_[i];
    if (h.is_default()) continue;
    csv.row("health", i, h.consecutive_misses,
            static_cast<int>(h.state), h.reopen_sweep,
            static_cast<int>(h.reason), h.trips);
  }
  for (std::size_t k = 0; k < series_.size(); ++k) {
    const core::RoutingVector& v = series_[k];
    std::vector<std::string> row{"vector", std::to_string(v.time),
                                 v.valid ? "1" : "0"};
    row.reserve(targets_ + 3);
    for (const core::SiteId s : v.assignment) row.push_back(std::to_string(s));
    csv.write_row(row);
    const SweepReport& r = reports_[k];
    csv.row("report", r.sweep, r.start, r.end, r.targets, r.answered,
            r.retried_out, r.broken, r.unrouted, r.retries, r.disagreements,
            render_hexdouble(r.floor), r.low_coverage ? 1 : 0,
            r.collector_gap ? 1 : 0);
  }
}

void Campaign::load_checkpoint(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto rows = io::parse_csv(buffer.str());
  if (rows.size() < 3 || rows[0].size() < 2 || rows[0][0] != kMagic) {
    throw CampaignError("not a campaign checkpoint (bad magic)");
  }
  if (rows[0][1] != kVersion) {
    throw CampaignError("unsupported checkpoint version " + rows[0][1]);
  }
  if (rows[1].size() < 2 || rows[1][0] != "targets" ||
      parse_u64_field(rows[1][1], "target count") != targets_) {
    throw CampaignError(
        "checkpoint target count does not match this campaign (" +
        (rows[1].size() > 1 ? rows[1][1] : std::string("?")) + " vs " +
        std::to_string(targets_) + ")");
  }
  if (rows[2].size() != 5 || rows[2][0] != "position") {
    throw CampaignError("checkpoint: malformed position row");
  }

  // Reset, then replay the rows.
  sweep_ = parse_u64_field(rows[2][1], "sweep");
  next_index_ = parse_u64_field(rows[2][2], "index");
  in_sweep_ = rows[2][3] == "1";
  kills_fired_ = parse_u64_field(rows[2][4], "kill count");
  health_.assign(targets_, TargetHealth{});
  outcome_.assign(targets_, Outcome::kPending);
  assignment_.assign(targets_, core::kUnknownSite);
  tally_ = SweepReport{};
  floor_.restore(0.0, 0.0, 0);
  series_.clear();
  reports_.clear();

  if (in_sweep_) {
    tally_.sweep = sweep_;
    tally_.targets = targets_;
  }
  for (std::size_t r = 3; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.empty()) continue;
    const std::string& kind = row[0];
    if (kind == "tallies") {
      if (row.size() != 8 || !in_sweep_) {
        throw CampaignError("checkpoint: malformed tallies row");
      }
      tally_.start = parse_i64_field(row[1], "tally start");
      tally_.answered = parse_u64_field(row[2], "answered");
      tally_.retried_out = parse_u64_field(row[3], "retried_out");
      tally_.broken = parse_u64_field(row[4], "broken");
      tally_.unrouted = parse_u64_field(row[5], "unrouted");
      tally_.retries = parse_u64_field(row[6], "retries");
      tally_.disagreements = parse_u64_field(row[7], "disagreements");
    } else if (kind == "outcomes") {
      if (row.size() != 2 || row[1].size() != targets_) {
        throw CampaignError("checkpoint: malformed outcomes row");
      }
      for (std::size_t i = 0; i < targets_; ++i) {
        const int code = row[1][i] - '0';
        if (code < 0 || code > 5) {
          throw CampaignError("checkpoint: bad outcome code");
        }
        outcome_[i] = static_cast<Outcome>(code);
      }
    } else if (kind == "sites") {
      if (row.size() != targets_ + 1) {
        throw CampaignError("checkpoint: malformed sites row");
      }
      for (std::size_t i = 0; i < targets_; ++i) {
        assignment_[i] = static_cast<core::SiteId>(
            parse_u64_field(row[i + 1], "site id"));
      }
    } else if (kind == "floor") {
      if (row.size() != 4) {
        throw CampaignError("checkpoint: malformed floor row");
      }
      floor_.restore(parse_hexdouble(row[1], "floor mean"),
                     parse_hexdouble(row[2], "floor variance"),
                     parse_u64_field(row[3], "floor samples"));
    } else if (kind == "health") {
      if (row.size() != 7) {
        throw CampaignError("checkpoint: malformed health row");
      }
      const std::size_t i = parse_u64_field(row[1], "health index");
      if (i >= targets_) throw CampaignError("checkpoint: health index range");
      TargetHealth& h = health_[i];
      h.consecutive_misses =
          static_cast<std::uint32_t>(parse_u64_field(row[2], "misses"));
      h.state = static_cast<BreakerState>(parse_u64_field(row[3], "state"));
      h.reopen_sweep =
          static_cast<std::uint32_t>(parse_u64_field(row[4], "reopen"));
      h.reason = static_cast<BreakReason>(parse_u64_field(row[5], "reason"));
      h.trips = static_cast<std::uint32_t>(parse_u64_field(row[6], "trips"));
    } else if (kind == "vector") {
      if (row.size() != targets_ + 3) {
        throw CampaignError("checkpoint: malformed vector row");
      }
      core::RoutingVector v;
      v.time = parse_i64_field(row[1], "vector time");
      v.valid = row[2] == "1";
      v.assignment.reserve(targets_);
      for (std::size_t i = 0; i < targets_; ++i) {
        v.assignment.push_back(static_cast<core::SiteId>(
            parse_u64_field(row[i + 3], "vector site")));
      }
      series_.push_back(std::move(v));
    } else if (kind == "report") {
      if (row.size() != 14) {
        throw CampaignError("checkpoint: malformed report row");
      }
      SweepReport rep;
      rep.sweep = parse_u64_field(row[1], "report sweep");
      rep.start = parse_i64_field(row[2], "report start");
      rep.end = parse_i64_field(row[3], "report end");
      rep.targets = parse_u64_field(row[4], "report targets");
      rep.answered = parse_u64_field(row[5], "report answered");
      rep.retried_out = parse_u64_field(row[6], "report retried_out");
      rep.broken = parse_u64_field(row[7], "report broken");
      rep.unrouted = parse_u64_field(row[8], "report unrouted");
      rep.retries = parse_u64_field(row[9], "report retries");
      rep.disagreements = parse_u64_field(row[10], "report disagreements");
      rep.floor = parse_hexdouble(row[11], "report floor");
      rep.low_coverage = row[12] == "1";
      rep.collector_gap = row[13] == "1";
      reports_.push_back(rep);
    } else {
      throw CampaignError("checkpoint: unknown row kind: " + kind);
    }
  }
  if (series_.size() != reports_.size()) {
    throw CampaignError("checkpoint: series/report count mismatch");
  }
  clock_.advance_to(in_sweep_ ? tally_.start
                              : (sweep_ == 0 ? config_.start
                                             : reports_.empty()
                                                   ? config_.start
                                                   : reports_.back().end));
  metrics().resumes.inc();
  obs::event_bus().emit(obs::Severity::kNotice, "campaign_resumed",
                        "\"sweep\":" + std::to_string(sweep_) +
                            ",\"index\":" + std::to_string(next_index_) +
                            ",\"completed\":" +
                            std::to_string(series_.size()));
  FENRIR_LOG(Info)
          .field("sweep", sweep_)
          .field("index", next_index_)
          .field("completed", series_.size())
      << "campaign resumed from checkpoint";
}

void Campaign::save_checkpoint_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw CampaignError("cannot open " + path + " for writing");
  }
  save_checkpoint(out);
  if (!out) throw CampaignError("checkpoint write failed: " + path);
}

void Campaign::load_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CampaignError("cannot open " + path);
  load_checkpoint(in);
}

}  // namespace fenrir::measure
