// fenrir::measure — Trinocular-style RTT measurement (paper §2.8.2).
//
// The paper sources enterprise latency from Trinocular, the outage
// detection system that probes ~5M /24 blocks with ICMP echo from a site
// inside USC: each block is probed every 11 minutes, 1..16 targets drawn
// from a pseudorandom list refreshed quarterly. This module reproduces
// that measurement discipline over the simulator, with one upgrade the
// enterprise study needs: RTT is computed along the *forward AS path*
// (great-circle length of the hop sequence), so a routing change that
// sends traffic through a farther upstream visibly changes latency —
// the "did our reconfiguration help?" question operators ask of Fenrir.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bgp/graph.h"
#include "core/time.h"
#include "geo/geo.h"
#include "netbase/hitlist.h"
#include "rng/rng.h"

namespace fenrir::measure {

struct TrinocularConfig {
  /// Probing round length (the paper's 11 minutes).
  core::TimePoint round = 11 * core::kMinute;
  /// Targets probed per block per round, 1..max.
  int max_targets_per_block = 16;
  /// Per-target response probability for an "up" block.
  double target_response_prob = 0.55;
  /// Fraction of blocks that are persistently dark to ICMP.
  double dark_block_fraction = 0.25;
  std::uint64_t seed = 1;
};

/// RTT along an AS-level forward path: great-circle hop lengths through
/// the path's AS locations, with the model's speed/stretch/base applied.
/// Returns the model's base RTT for an empty or single-hop path.
double path_rtt_ms(std::span<const bgp::AsIndex> path,
                   const bgp::AsGraph& graph, const geo::LatencyModel& model);

class TrinocularProbe {
 public:
  TrinocularProbe(const netbase::Hitlist* hitlist, const bgp::AsGraph* graph,
                  TrinocularConfig config);

  /// True if the block answers ICMP at all (stable per block).
  bool block_is_dark(std::uint32_t block) const;

  /// One probing round at time @p t. @p path_of supplies the forward AS
  /// path toward each block (nullptr = unrouted). Returns RTT in ms per
  /// hitlist position; -1 for dark blocks, unrouted blocks, and rounds
  /// where none of the drawn targets answered.
  std::vector<double> measure_rtt(
      core::TimePoint t,
      const std::function<const std::vector<bgp::AsIndex>*(
          std::uint32_t block)>& path_of,
      const geo::LatencyModel& model) const;

 private:
  const netbase::Hitlist* hitlist_;
  const bgp::AsGraph* graph_;
  TrinocularConfig config_;
};

}  // namespace fenrir::measure
