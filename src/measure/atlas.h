// fenrir::measure — RIPE-Atlas-style vantage-point probing of anycast DNS.
//
// Atlas VPs identify the anycast instance serving them with CHAOS TXT
// hostname.bind queries (and NSID). This simulator runs that exchange on
// real DNS wire bytes: the probe encodes the query, the simulated anycast
// server at the VP's catchment site decodes it and answers with its
// instance identity string, and the probe parses the response and maps
// the identity to a site the way Fan et al. 2013 map organization-
// specific identifiers.
//
// Outcomes per VP mirror the paper's vector states:
//   site   — identity parsed and mapped;
//   err    — no response (loss, or the VP's AS cannot reach the prefix);
//   other  — a response whose identity maps to no known site.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/routing.h"
#include "core/tables.h"
#include "core/time.h"
#include "dns/chaos.h"
#include "geo/geo.h"
#include "rng/rng.h"

namespace fenrir::measure {

/// Maps instance identity strings ("b1.lax.example") to service site
/// indices. Identities are matched by their site token: the second
/// dot-separated label. Unknown tokens yield nullopt (-> "other").
class ServerIdentityMap {
 public:
  /// Registers @p site_token (e.g. "lax") as service site @p site.
  void add(const std::string& site_token, std::uint32_t site);

  std::optional<std::uint32_t> site_of_identity(
      const std::string& identity) const;

  /// Builds the canonical identity a server instance reports.
  static std::string make_identity(std::uint32_t instance,
                                   const std::string& site_token);

 private:
  std::unordered_map<std::string, std::uint32_t> by_token_;
};

/// Server side: given the querying VP's catchment site, produce the wire
/// response a real anycast DNS node would. Identity strings come from the
/// per-site token table; @p mangle_identity lets scenarios inject the
/// malformed identities the cleaning stage must cope with.
class AnycastDnsServer {
 public:
  AnycastDnsServer(std::vector<std::string> site_tokens,
                   std::uint64_t seed = 0)
      : site_tokens_(std::move(site_tokens)), seed_(seed) {}

  /// Handles raw query bytes for a VP landing at @p site. Returns the
  /// response wire bytes. Throws dns::DnsError on malformed queries.
  std::vector<std::uint8_t> handle(std::span<const std::uint8_t> query,
                                   std::uint32_t site) const;

  /// When set, this fraction of responses carry a bogus identity string
  /// ("fw-207" style) that maps to no site — cleaning-stage fodder.
  void set_bogus_identity_fraction(double f) { bogus_fraction_ = f; }

 private:
  std::vector<std::string> site_tokens_;
  std::uint64_t seed_;
  double bogus_fraction_ = 0.0;
};

struct AtlasVantagePoint {
  std::uint32_t vp_id = 0;
  bgp::AsIndex as = bgp::kNoAs;
  geo::Coord location;
};

struct AtlasConfig {
  std::size_t vp_count = 2000;
  /// Transient per-query loss (-> err, like a real timeout).
  double query_loss = 0.01;
  std::uint64_t seed = 1;
};

class AtlasProbe {
 public:
  /// Samples a VP population over the graph's ASes (weighted toward
  /// stubs, like the real Atlas footprint).
  AtlasProbe(const bgp::AsGraph& graph, AtlasConfig config);

  const std::vector<AtlasVantagePoint>& vantage_points() const noexcept {
    return vps_;
  }

  /// One measurement round over the DNS wire: returns one core::SiteId
  /// per VP (order matches vantage_points()).
  ///
  /// @p identity_map maps parsed identities to service site indices;
  /// @p site_to_core maps service sites to dataset SiteIds.
  std::vector<core::SiteId> measure(
      core::TimePoint time, const bgp::RoutingTable& routing,
      const AnycastDnsServer& server, const ServerIdentityMap& identity_map,
      const std::vector<core::SiteId>& site_to_core) const;

  /// RTT in ms from each VP to its current site for latency studies;
  /// negative = no measurement (err/unreachable). @p site_coords indexed
  /// by service site.
  std::vector<double> measure_rtt(core::TimePoint time,
                                  const bgp::RoutingTable& routing,
                                  const std::vector<geo::Coord>& site_coords,
                                  const geo::LatencyModel& model) const;

  /// Address-count weighting inputs (paper §2.5): how many announced /24
  /// blocks each VP stands for — its AS's announced block count divided
  /// among the co-located VPs (at least 1). "If we have only one Atlas VP
  /// from a /16 prefix, we can count that as 256 /24 blocks rather than
  /// just one." @p blocks_of maps AS index -> announced /24 count.
  std::vector<std::uint32_t> represented_blocks(
      const std::unordered_map<bgp::AsIndex, std::uint32_t>& blocks_of)
      const;

 private:
  const bgp::AsGraph* graph_;
  AtlasConfig config_;
  std::vector<AtlasVantagePoint> vps_;
};

}  // namespace fenrir::measure
