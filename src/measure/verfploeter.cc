#include "measure/verfploeter.h"

#include <stdexcept>

#include "measure/site_map.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace fenrir::measure {

VerfploeterProbe::VerfploeterProbe(const netbase::Hitlist* hitlist,
                                   VerfploeterConfig config)
    : hitlist_(hitlist), config_(config) {
  if (hitlist_ == nullptr) {
    throw std::invalid_argument("VerfploeterProbe: null hitlist");
  }
}

VerfploeterReply VerfploeterProbe::measure_one(
    std::size_t index, core::TimePoint time, const bgp::AsGraph& graph,
    const bgp::RoutingTable& routing,
    const std::vector<core::SiteId>& site_to_core) const {
  const std::uint32_t block = hitlist_->block(index);
  const std::uint64_t round_key = static_cast<std::uint64_t>(time);

  // Does the representative answer this round?
  const std::uint64_t draw =
      rng::mix(config_.seed, rng::mix(0xec40ULL, block, round_key));
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  if (u >= propensity(block) * (1.0 - config_.transient_loss)) {
    return {core::kUnknownSite, VerfploeterOutcome::kNoReply};
  }

  // The reply routes from the block's AS into the anycast system.
  const auto as = graph.origin_of(hitlist_->target(index));
  if (!as) {
    return {core::kUnknownSite, VerfploeterOutcome::kUnrouted};
  }
  const auto site = routing.catchment(*as);
  if (!site) {
    return {core::kUnknownSite, VerfploeterOutcome::kNoRoute};
  }
  return {map_site(site_to_core, *site, "verfploeter"),
          VerfploeterOutcome::kAnswered};
}

double VerfploeterProbe::propensity(std::uint32_t block) const {
  // Stable per-block membership in the responsive or flaky population.
  const std::uint64_t h = rng::mix(config_.seed, 0xb10cULL, block);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.stable_fraction ? config_.stable_prob
                                     : config_.flaky_prob;
}

std::vector<core::SiteId> VerfploeterProbe::measure(
    core::TimePoint time, const bgp::AsGraph& graph,
    const bgp::RoutingTable& routing,
    const std::vector<core::SiteId>& site_to_core) const {
  obs::Span span("measure/verfploeter_sweep");
  // Per-sweep tallies, folded into cumulative counters at the end so the
  // hot loop touches plain integers only. All three loss modes look the
  // same to the prober (no reply), but the simulator knows why.
  std::uint64_t lost_no_reply = 0;   // dark block or transient loss
  std::uint64_t lost_unrouted = 0;   // target address in unrouted space
  std::uint64_t lost_no_route = 0;   // block's AS cannot reach the prefix
  std::uint64_t answered = 0;

  std::vector<core::SiteId> out(hitlist_->size(), core::kUnknownSite);
  for (std::size_t i = 0; i < hitlist_->size(); ++i) {
    const VerfploeterReply r =
        measure_one(i, time, graph, routing, site_to_core);
    switch (r.outcome) {
      case VerfploeterOutcome::kAnswered:
        out[i] = r.site;
        ++answered;
        break;
      case VerfploeterOutcome::kNoReply:
        ++lost_no_reply;
        break;
      case VerfploeterOutcome::kUnrouted:
        ++lost_unrouted;
        break;
      case VerfploeterOutcome::kNoRoute:
        ++lost_no_route;
        break;
    }
  }

  static obs::Counter& sent = obs::registry().counter(
      "fenrir_probes_sent_total", "verfploeter probes sent");
  static obs::Counter& got = obs::registry().counter(
      "fenrir_probes_answered_total", "verfploeter probes answered");
  static obs::Counter& no_reply = obs::registry().counter(
      "fenrir_probes_lost_total",
      "verfploeter probes lost to dark blocks or transient loss");
  static obs::Counter& unrouted = obs::registry().counter(
      "fenrir_probes_unrouted_total",
      "verfploeter probes into unrouted address space");
  static obs::Counter& unreachable = obs::registry().counter(
      "fenrir_probes_unreachable_total",
      "verfploeter replies lost to missing anycast routes");
  sent.inc(hitlist_->size());
  got.inc(answered);
  no_reply.inc(lost_no_reply);
  unrouted.inc(lost_unrouted);
  unreachable.inc(lost_no_route);
  FENRIR_LOG(Debug).field("sent", hitlist_->size())
          .field("answered", answered)
          .field("lost", lost_no_reply)
          .field("unrouted", lost_unrouted)
          .field("unreachable", lost_no_route)
      << "verfploeter sweep";
  return out;
}

}  // namespace fenrir::measure
