#include "measure/verfploeter.h"

#include <stdexcept>

namespace fenrir::measure {

VerfploeterProbe::VerfploeterProbe(const netbase::Hitlist* hitlist,
                                   VerfploeterConfig config)
    : hitlist_(hitlist), config_(config) {
  if (hitlist_ == nullptr) {
    throw std::invalid_argument("VerfploeterProbe: null hitlist");
  }
}

double VerfploeterProbe::propensity(std::uint32_t block) const {
  // Stable per-block membership in the responsive or flaky population.
  const std::uint64_t h = rng::mix(config_.seed, 0xb10cULL, block);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.stable_fraction ? config_.stable_prob
                                     : config_.flaky_prob;
}

std::vector<core::SiteId> VerfploeterProbe::measure(
    core::TimePoint time, const bgp::AsGraph& graph,
    const bgp::RoutingTable& routing,
    const std::vector<core::SiteId>& site_to_core) const {
  std::vector<core::SiteId> out(hitlist_->size(), core::kUnknownSite);
  const std::uint64_t round_key = static_cast<std::uint64_t>(time);
  for (std::size_t i = 0; i < hitlist_->size(); ++i) {
    const std::uint32_t block = hitlist_->block(i);

    // Does the representative answer this round?
    const std::uint64_t draw =
        rng::mix(config_.seed, rng::mix(0xec40ULL, block, round_key));
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u >= propensity(block) * (1.0 - config_.transient_loss)) continue;

    // The reply routes from the block's AS into the anycast system.
    const auto as = graph.origin_of(hitlist_->target(i));
    if (!as) continue;  // unrouted space: probe never reaches it
    const auto site = routing.catchment(*as);
    if (!site) continue;  // no route to the anycast prefix: reply lost
    out[i] = site_to_core.at(*site);
  }
  return out;
}

}  // namespace fenrir::measure
