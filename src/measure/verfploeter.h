// fenrir::measure — Verfploeter-style anycast catchment mapping.
//
// Verfploeter (de Vries et al. 2017) pings millions of /24 blocks *from*
// the anycast prefix; the reply enters the anycast system and lands at
// whichever site the sender's network routes to — that site is the
// block's catchment. Coverage is broad but incomplete: a block only
// yields data if its representative address answers ICMP, and with
// dynamic addressing that is probabilistic. The paper reports roughly
// half of B-Root's 5M targets unknown per snapshot, which is why
// pessimistic Φ plateaus at 0.5–0.6 for a stable service.
//
// The simulator reproduces exactly that pipeline: per-block responsiveness
// is a stable per-block propensity (some blocks are reliably up, some
// reliably dark, many in between), sampled independently each round.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/routing.h"
#include "core/tables.h"
#include "core/time.h"
#include "netbase/hitlist.h"
#include "rng/rng.h"

namespace fenrir::measure {

/// Why a single verfploeter probe did (not) produce a catchment label.
/// kNoReply and kNoRoute are indistinguishable on the wire (no reply
/// either way) but the simulator knows, and Campaign's retry logic only
/// benefits from retrying the transient kinds.
enum class VerfploeterOutcome : std::uint8_t {
  kAnswered,  // reply arrived; site holds the catchment
  kNoReply,   // dark block or transient loss — retryable
  kUnrouted,  // target in unrouted space — retry will never help
  kNoRoute,   // block's AS has no route to the anycast prefix
};

struct VerfploeterReply {
  core::SiteId site = core::kUnknownSite;
  VerfploeterOutcome outcome = VerfploeterOutcome::kNoReply;
};

struct VerfploeterConfig {
  /// Responsiveness is bimodal, matching what ping studies of the IPv4
  /// space see: a stable population that nearly always answers (server
  /// blocks, static assignment) and a flaky one that rarely does
  /// (dynamic pools, firewalled space). With the defaults the known
  /// fraction per round is ~0.5 and — because a block must answer in
  /// BOTH rounds to count as a match — pessimistic Φ for a perfectly
  /// stable service sits in the paper's 0.5–0.6 band.
  double stable_fraction = 0.55;
  double stable_prob = 0.96;
  double flaky_prob = 0.08;
  /// Additional per-probe transient loss.
  double transient_loss = 0.02;
  std::uint64_t seed = 1;
};

/// Maps each hitlist block to a core::SiteId for one measurement round.
///
/// @p routing       routing toward the anycast prefix (current topology).
/// @p graph         the AS graph (resolves block -> origin AS).
/// @p site_to_core  service site index -> core SiteId.
///
/// Blocks that do not respond (dark block or transient loss) and blocks
/// whose AS cannot reach the anycast prefix at all are kUnknownSite: in
/// both cases the reply never arrives, indistinguishable to the prober.
class VerfploeterProbe {
 public:
  VerfploeterProbe(const netbase::Hitlist* hitlist, VerfploeterConfig config);

  std::vector<core::SiteId> measure(
      core::TimePoint time, const bgp::AsGraph& graph,
      const bgp::RoutingTable& routing,
      const std::vector<core::SiteId>& site_to_core) const;

  /// One probe of hitlist block @p index at @p time. Deterministic in
  /// (index, time) — measure() is exactly this, looped, at a single
  /// instant, and measure::Campaign probes through it one target at a
  /// time so retries at later instants get fresh responsiveness draws.
  VerfploeterReply measure_one(
      std::size_t index, core::TimePoint time, const bgp::AsGraph& graph,
      const bgp::RoutingTable& routing,
      const std::vector<core::SiteId>& site_to_core) const;

  /// A block's stable responsiveness propensity (exposed for tests).
  double propensity(std::uint32_t block) const;

 private:
  const netbase::Hitlist* hitlist_;
  VerfploeterConfig config_;
};

}  // namespace fenrir::measure
