// fenrir::measure — scamper-style traceroute out of an enterprise.
//
// The USC study maps enterprise egress catchments by tracerouting the
// first 10 hops toward every routable /24 and asking, at a "focus" hop
// (hop 3 in the paper's Figure 2), which network carries the traffic.
// This simulator walks the forward AS path the BGP substrate selects,
// expands it to router-level hops (internal enterprise hops on RFC 1918
// addresses, then one or two addressable routers per transit AS), and
// applies the realities the paper's cleaning stage exists for: ICMP-
// filtering ASes, per-probe loss, and the 10-hop cap.
//
// focus_catchment() reproduces the paper's spatial fill: a silent focus
// hop borrows the nearest responsive hop's network.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/graph.h"
#include "bgp/routing.h"
#include "core/time.h"
#include "netbase/ipv4.h"
#include "rng/rng.h"

namespace fenrir::measure {

struct TracerouteConfig {
  int max_hops = 10;
  int attempts_per_hop = 2;
  /// Per-attempt response probability of a cooperating router.
  double hop_response_prob = 0.9;
  /// Fraction of ASes whose routers never answer ICMP.
  double filtering_as_fraction = 0.1;
  /// Router hops contributed inside the enterprise (private addresses).
  int enterprise_internal_hops = 2;
  std::uint64_t seed = 1;
};

struct TracerouteHop {
  /// Responding address, or nullopt for "*" (no reply).
  std::optional<netbase::Ipv4Addr> addr;
};

struct TracerouteResult {
  std::vector<TracerouteHop> hops;  // up to max_hops
  bool reached = false;             // destination answered within the cap
};

class TracerouteProbe {
 public:
  /// @p graph must outlive the probe. Router infrastructure addresses are
  /// allocated per AS out of @p infra_base (one /24 per AS) and announced
  /// in the graph so hop addresses resolve back to their AS — how real
  /// traceroute analysis attributes hops.
  TracerouteProbe(bgp::AsGraph& graph, bgp::AsIndex enterprise,
                  TracerouteConfig config,
                  netbase::Ipv4Addr infra_base = netbase::Ipv4Addr(198, 18, 0,
                                                                   0));

  bgp::AsIndex enterprise() const noexcept { return enterprise_; }

  /// Traces toward @p dst_block's representative address along
  /// @p forward_path — the AS-level path from the enterprise to the
  /// destination (enterprise first), as selected by the routing substrate.
  /// An empty path means the destination is unreachable (stars to the cap).
  TracerouteResult trace(core::TimePoint time, std::uint32_t dst_block,
                         std::span<const bgp::AsIndex> forward_path) const;

  /// Convenience: extracts the forward path from the routing table for
  /// the destination's prefix.
  TracerouteResult trace(core::TimePoint time, std::uint32_t dst_block,
                         const bgp::RoutingTable& routing) const {
    const auto path = routing.as_path(enterprise_);
    return trace(time, dst_block,
                 std::span<const bgp::AsIndex>(path.data(), path.size()));
  }

  /// Router address of @p as (instance @p which within its infra /24).
  netbase::Ipv4Addr router_addr(bgp::AsIndex as, int which) const;

  /// The AS owning a hop address, if attributable (infra space announced
  /// in the graph; private addresses are not).
  std::optional<bgp::AsIndex> hop_owner(const bgp::AsGraph& graph,
                                        netbase::Ipv4Addr addr) const;

  /// Catchment at @p focus_hop (1-based index into the result), applying
  /// the paper's nearest-viable-hop spatial fill within
  /// @p max_fill_distance hops. nullopt if nothing viable is in range.
  std::optional<bgp::AsIndex> focus_catchment(const bgp::AsGraph& graph,
                                              const TracerouteResult& result,
                                              int focus_hop,
                                              int max_fill_distance = 2) const;

  /// Whether an AS filters ICMP (stable, derived from the seed, unless
  /// overridden).
  bool filters_icmp(bgp::AsIndex as) const;

  /// Pins an AS's filtering behaviour regardless of the seed draw —
  /// scenarios use this for well-known transit networks whose routers
  /// are reliably traceable.
  void set_filter_override(bgp::AsIndex as, bool filters) {
    filter_override_[as] = filters;
  }

 private:
  bgp::AsGraph* graph_;
  bgp::AsIndex enterprise_;
  TracerouteConfig config_;
  std::uint32_t infra_base_block_;
  std::unordered_map<bgp::AsIndex, bool> filter_override_;
};

}  // namespace fenrir::measure
