// fenrir::measure — shared service-site → core::SiteId mapping.
//
// Every prober finishes the same way: a routing verdict names a service
// site index, and the caller-provided site_to_core table turns it into a
// core::SiteId. A table that is too short used to surface as a bare
// std::out_of_range from std::vector::at — "vector::_M_range_check" with
// no hint of which prober, which site, or how big the table was. This
// helper throws the message a 2 a.m. operator actually needs.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/tables.h"

namespace fenrir::measure {

/// Maps service site index @p site through @p site_to_core. Throws
/// std::runtime_error naming @p prober, the offending index, and the
/// table size when the table does not cover the site — which means the
/// caller built site_to_core for a different (smaller) service topology.
inline core::SiteId map_site(const std::vector<core::SiteId>& site_to_core,
                             std::size_t site, const char* prober) {
  if (site >= site_to_core.size()) {
    throw std::runtime_error(
        std::string(prober) + ": routing answered service site " +
        std::to_string(site) + " but site_to_core maps only " +
        std::to_string(site_to_core.size()) +
        " sites — was the mapping built for a different topology?");
  }
  return site_to_core[site];
}

}  // namespace fenrir::measure
