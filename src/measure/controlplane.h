// fenrir::measure — catchments from control-plane data (the paper's
// stated future work: "in principle, our approach could use control-plane
// information as a data source").
//
// A ControlPlaneProbe consumes the wire-format UPDATE stream of a
// RouteCollector (bgp/collector.h), maintains each peer's current origin
// site (the AS path's last ASN mapped through the service's origin
// table), and estimates a routing vector: a network inherits the observed
// catchment of the nearest AS on its upstream chain that holds a
// collector session — itself, or one of its providers.
//
// This is deliberately coarser than the data-plane probes: collectors
// hear from tens-to-hundreds of peers, not millions of targets, so
// coverage is partial and inherited catchments can be wrong when a stub's
// policy differs from its provider's. The ext_control_plane bench
// quantifies both effects against Verfploeter ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/collector.h"
#include "core/tables.h"
#include "netbase/hitlist.h"

namespace fenrir::measure {

class ControlPlaneProbe {
 public:
  /// @p origin_site maps origin ASN -> service site index (the
  /// service's announcement table, which an analyst knows).
  ControlPlaneProbe(const netbase::Hitlist* hitlist,
                    std::unordered_map<std::uint32_t, std::uint32_t>
                        origin_site);

  /// Ingests one collected UPDATE (wire bytes are decoded here — the
  /// full codec path runs on every message). Malformed messages throw
  /// bgp::BgpError; unknown origin ASNs mark the peer as "other".
  void ingest(const bgp::CollectedUpdate& update);

  /// Number of peers currently holding a route.
  std::size_t peers_with_routes() const noexcept { return peer_site_.size(); }

  /// Estimates the catchment vector over the hitlist: each network gets
  /// the observed site of the nearest session-holding AS on its upstream
  /// chain (itself, then its direct providers), else unknown.
  std::vector<core::SiteId> estimate(
      const bgp::AsGraph& graph,
      const std::vector<core::SiteId>& site_to_core) const;

 private:
  /// Observed site of an AS if it holds a session and a route.
  /// kNoSite = session but route maps to no known origin ("other").
  static constexpr std::uint32_t kNoSite = ~std::uint32_t{0};
  std::optional<std::uint32_t> observed_site(bgp::AsIndex as) const;

  const netbase::Hitlist* hitlist_;
  std::unordered_map<std::uint32_t, std::uint32_t> origin_site_;
  std::unordered_map<bgp::AsIndex, std::uint32_t> peer_site_;
};

}  // namespace fenrir::measure
