#include "stats/stats.h"

namespace fenrir::stats {

double percentile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 100.0) {
    throw std::invalid_argument("percentile: q out of [0,100]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = (q / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean: empty sample");
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

Summary summarize(std::span<const double> values) {
  Summary out;
  out.count = values.size();
  if (values.empty()) return out;
  out.min = *std::min_element(values.begin(), values.end());
  out.max = *std::max_element(values.begin(), values.end());
  out.mean = mean(values);
  out.p50 = percentile(values, 50);
  out.p90 = percentile(values, 90);
  out.p99 = percentile(values, 99);
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;
  }
  ++counts_[i];
  ++total_;
}

}  // namespace fenrir::stats
