// fenrir::stats — summary statistics used across the analysis pipeline.
//
// Percentiles (the paper reports p90 latency), online mean/variance for
// baselining change-detection, and simple fixed-bin histograms.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace fenrir::stats {

/// Percentile with linear interpolation between order statistics
/// (the "linear" / R-7 method). @p q in [0, 100]. Throws on empty input.
double percentile(std::span<const double> values, double q);

/// Convenience: p50 / p90 / p99.
inline double median(std::span<const double> v) { return percentile(v, 50); }
inline double p90(std::span<const double> v) { return percentile(v, 90); }
inline double p99(std::span<const double> v) { return percentile(v, 99); }

double mean(std::span<const double> values);
double stddev(std::span<const double> values);  // sample (n-1) stddev

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0, max = 0, mean = 0, p50 = 0, p90 = 0, p99 = 0;
};
Summary summarize(std::span<const double> values);

/// Welford online mean/variance accumulator. Supports windowless streaming
/// baselines for event detection.
class Online {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); values outside clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_low(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fenrir::stats
